//! End-to-end wiring tests: the paper's car schema must lint clean, and
//! the two lint gates (schema manager commit gate, analyzer load gate)
//! must block exactly when armed.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use gom_analyzer::car_schema::CAR_SCHEMA_SRC;
use gom_analyzer::lower::{AnalyzeError, Analyzer};
use gom_core::SchemaManager;
use gom_lint::{render_report, Severity};
use gom_model::MetaModel;

#[test]
fn car_schema_lints_clean() {
    let mut mgr = SchemaManager::new().unwrap();
    mgr.define_schema(CAR_SCHEMA_SRC).unwrap();
    let report = mgr.lint();
    assert!(
        report.is_clean(),
        "car schema should lint clean:\n{}",
        render_report(&report, None, "<schema base>")
    );
}

#[test]
fn manager_gate_blocks_commit_and_leaves_session_open() {
    let mut mgr = SchemaManager::new().unwrap();
    mgr.define_schema(CAR_SCHEMA_SRC).unwrap();
    mgr.set_lint_gate(Some(Severity::Note));

    mgr.begin_evolution().unwrap();
    // A predicate nothing references and nothing populates: lints as
    // L0303 (note), which the gate at `note` must refuse to commit.
    mgr.meta.db.declare_base("ScratchPad", 1).unwrap();
    let err = mgr.end_evolution().expect_err("gate should trip");
    assert!(
        err.to_string().contains("lint gate (note)"),
        "unexpected error: {err}"
    );
    assert!(mgr.in_evolution(), "session must stay open after gate trip");

    // Disarm the gate: the same session now commits.
    mgr.set_lint_gate(None);
    let outcome = mgr.end_evolution().unwrap();
    assert!(outcome.is_consistent());
}

#[test]
fn manager_gate_passes_clean_sessions() {
    let mut mgr = SchemaManager::new().unwrap();
    mgr.define_schema(CAR_SCHEMA_SRC).unwrap();
    mgr.set_lint_gate(Some(Severity::Warn));

    let sid = mgr.meta.schema_by_name("CarSchema").unwrap();
    let car = mgr.meta.type_by_name(sid, "Car").unwrap();
    let string = mgr.meta.builtins.string;
    mgr.begin_evolution().unwrap();
    mgr.meta.add_attr(car, "fuelType", string).unwrap();
    let outcome = mgr.end_evolution().unwrap();
    assert!(outcome.is_consistent());
    assert!(!mgr.in_evolution());
}

#[test]
fn analyzer_gate_rejects_shadowed_attribute() {
    // `x` on the subtype shadows `x` on the supertype -> L0502 (warn).
    let src = "\
schema ShadowSchema is
  type A is
    [ x : string; ]
  end type A;
  type B supertype A is
    [ x : string; ]
  end type B;
end schema ShadowSchema;
";
    // Without a gate the schema loads (shadowing is legal GOM, just lint-worthy).
    let mut m = MetaModel::new().unwrap();
    let mut az = Analyzer::new();
    az.lower_source(&mut m, src).unwrap();

    // With the gate armed at `warn`, the same source is refused.
    let mut m2 = MetaModel::new().unwrap();
    let mut az2 = Analyzer::new();
    az2.set_lint_gate(Some(Severity::Warn));
    let err = az2
        .lower_source(&mut m2, src)
        .expect_err("gate should trip");
    assert!(matches!(err, AnalyzeError::Lint(_)), "unexpected: {err}");
    assert!(err.to_string().contains("L0502"), "unexpected: {err}");

    // The gate at `error` lets the warning-level finding through.
    let mut m3 = MetaModel::new().unwrap();
    let mut az3 = Analyzer::new();
    az3.set_lint_gate(Some(Severity::Error));
    az3.lower_source(&mut m3, src).unwrap();
}
