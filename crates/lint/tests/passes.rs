//! One trigger and one non-trigger fixture per diagnostic code, plus a
//! snapshot of the rendered output.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use gom_deductive::ast::{Atom, Term, Var};
use gom_deductive::{Constraint, Database, Formula};
use gom_lint::{lint_source, render_report, LintConfig, LintReport, Severity};

fn lint(src: &str) -> LintReport {
    let mut db = Database::new();
    lint_source(&mut db, src, &LintConfig::default())
}

fn has(r: &LintReport, code: &str) -> bool {
    r.diags.iter().any(|d| d.code == code)
}

#[test]
fn l0001_syntax_error() {
    let r = lint("base N(x");
    assert!(has(&r, "L0001"), "{r:?}");
    assert!(!has(&lint("base N(x)."), "L0001"));
}

#[test]
fn l0002_unknown_predicate() {
    let r = lint("base N(x). Foo(X) :- N(X).");
    assert!(has(&r, "L0002"), "{r:?}");
    assert!(!has(
        &lint("base N(x). derived Foo(x). Foo(X) :- N(X)."),
        "L0002"
    ));
}

#[test]
fn l0101_unsafe_rule() {
    let r = lint("base N(x). derived U(x). U(X) :- N(Y).");
    assert!(has(&r, "L0101"), "{r:?}");
    assert!(!has(
        &lint("base N(x). derived U(x). U(X) :- N(X)."),
        "L0101"
    ));
}

#[test]
fn l0102_unsafe_constraint_outer_var() {
    let src = "base N(x). base M(x).\nconstraint c: forall X: !N(X) -> M(X).";
    let r = lint(src);
    assert!(has(&r, "L0102"), "{r:?}");
    let ok = "base N(x). base M(x).\nconstraint c: forall X: N(X) -> M(X).";
    assert!(!has(&lint(ok), "L0102"));
}

#[test]
fn l0103_open_formula_via_api() {
    let mut db = Database::new();
    let n = db.declare_base("N", 1).unwrap();
    // `N(X)` with X unquantified — the parser refuses to build this, but
    // the API can, and the linter must flag it.
    db.add_constraint(Constraint::new(
        "open",
        vec!["X".into()],
        Formula::Atom(Atom::new(n, vec![Term::Var(Var(0))])),
    ));
    let r = gom_lint::lint_database(&mut db, &LintConfig::default());
    assert!(has(&r, "L0103"), "{r:?}");

    let mut db2 = Database::new();
    let n2 = db2.declare_base("N", 1).unwrap();
    db2.add_constraint(Constraint::new(
        "closed",
        vec!["X".into()],
        Formula::Forall(
            vec![Var(0)],
            Box::new(Formula::Not(Box::new(Formula::Atom(Atom::new(
                n2,
                vec![Term::Var(Var(0))],
            ))))),
        ),
    ));
    let r2 = gom_lint::lint_database(&mut db2, &LintConfig::default());
    assert!(!has(&r2, "L0103"), "{r2:?}");
}

#[test]
fn l0201_negation_cycle_with_minimal_witness() {
    let src = "base N(x). derived Foo(x). derived Bar(x).\n\
               Foo(X) :- N(X), not Bar(X).\n\
               Bar(X) :- N(X), not Foo(X).";
    let r = lint(src);
    assert!(has(&r, "L0201"), "{r:?}");
    let witness = r
        .diags
        .iter()
        .find(|d| d.code == "L0201")
        .and_then(|d| d.notes.iter().find(|n| n.contains("minimal cycle")))
        .cloned();
    assert_eq!(
        witness.as_deref(),
        Some("minimal cycle: Foo -> not Bar -> Foo")
    );
    // Stratified negation is fine.
    let ok = "base N(x). derived Foo(x). derived Bar(x).\n\
              Bar(X) :- N(X).\nFoo(X) :- N(X), not Bar(X).";
    assert!(!has(&lint(ok), "L0201"));
}

#[test]
fn l0301_undefined_derived_predicate() {
    // D is referenced (negatively, so the rule can still fire) but no rule
    // defines it.
    let src = "base N(x). derived D(x). derived E(x). E(X) :- N(X), not D(X).";
    let r = lint(src);
    assert!(has(&r, "L0301"), "{r:?}");
    let ok = "base N(x). derived D(x). derived E(x).\n\
              D(X) :- N(X). E(X) :- N(X), not D(X).";
    assert!(!has(&lint(ok), "L0301"));
}

#[test]
fn l0302_arity_mismatch() {
    let r = lint("base N(x). derived F(x). F(X) :- N(X, X).");
    assert!(has(&r, "L0302"), "{r:?}");
    assert!(!has(
        &lint("base N(x). derived F(x). F(X) :- N(X)."),
        "L0302"
    ));
}

#[test]
fn l0303_unused_predicate() {
    let src = "base Unused(x). base N(x). derived D(x). D(X) :- N(X).";
    let r = lint(src);
    assert!(has(&r, "L0303"), "{r:?}");
    // A base predicate that stores facts is not "unused".
    let ok = "base Unused(x). base N(x). derived D(x). D(X) :- N(X). Unused('a').";
    assert!(!has(&lint(ok), "L0303"));
}

#[test]
fn l0304_unreachable_rule() {
    let src = "base N(x). derived D(x). derived E(x). E(X) :- N(X), D(X).";
    let r = lint(src);
    assert!(has(&r, "L0304"), "{r:?}");
    let ok = "base N(x). derived D(x). derived E(x). D(X) :- N(X). E(X) :- N(X), D(X).";
    assert!(!has(&lint(ok), "L0304"));
}

#[test]
fn l0305_never_firing_constraint() {
    let src = "base N(x). derived D(x).\nconstraint c: forall X: D(X) -> N(X).";
    let r = lint(src);
    assert!(has(&r, "L0305"), "{r:?}");
    let ok = "base N(x). derived D(x). D(X) :- N(X).\n\
              constraint c: forall X: D(X) -> N(X).";
    assert!(!has(&lint(ok), "L0305"));
}

#[test]
fn l0401_cartesian_product() {
    let r = lint("base N(x). derived Cart(x, y). Cart(X, Y) :- N(X), N(Y).");
    assert!(has(&r, "L0401"), "{r:?}");
    let ok = "base E(x, y). derived J(x, y). J(X, Y) :- E(X, Z), E(Z, Y).";
    assert!(!has(&lint(ok), "L0401"));
}

#[test]
fn l0402_non_linear_recursion() {
    let src = "base E(x, y). derived P(x, y).\n\
               P(X, Y) :- E(X, Y).\nP(X, Y) :- P(X, Z), P(Z, Y).";
    let r = lint(src);
    assert!(has(&r, "L0402"), "{r:?}");
    let linear = "base E(x, y). derived P(x, y).\n\
                  P(X, Y) :- E(X, Y).\nP(X, Y) :- E(X, Z), P(Z, Y).";
    assert!(!has(&lint(linear), "L0402"));
}

#[test]
fn l0403_wide_join() {
    let src = "base E(x, y). base N(x).\n\
               constraint c: forall X, Y: E(X, Y) -> N(X).";
    let mut db = Database::new();
    let cfg = LintConfig {
        max_join_width: 0,
        ..LintConfig::default()
    };
    let r = lint_source(&mut db, src, &cfg);
    assert!(has(&r, "L0403"), "{r:?}");
    // Same program under the default budget is fine.
    assert!(!has(&lint(src), "L0403"));
}

#[test]
fn l0501_dangling_type_reference() {
    let src = "base Type(tid, name, sid). base Attr(tid, attr, domain).\n\
               Type('t1', 'T1', 's1'). Attr('t1', 'x', 't_missing').";
    let r = lint(src);
    assert!(has(&r, "L0501"), "{r:?}");
    let ok = "base Type(tid, name, sid). base Attr(tid, attr, domain).\n\
              Type('t1', 'T1', 's1'). Type('t2', 'T2', 's1'). Attr('t1', 'x', 't2').";
    assert!(!has(&lint(ok), "L0501"));
}

#[test]
fn l0502_shadowed_inherited_attribute() {
    let src =
        "base Type(tid, name, sid). base Attr(tid, attr, domain). base SubTypRel(sub, super).\n\
               Type('t1', 'A', 's'). Type('t2', 'B', 's'). Type('ts', 'Str', 's').\n\
               SubTypRel('t2', 't1'). Attr('t1', 'x', 'ts'). Attr('t2', 'x', 'ts').";
    let r = lint(src);
    assert!(has(&r, "L0502"), "{r:?}");
    let ok =
        "base Type(tid, name, sid). base Attr(tid, attr, domain). base SubTypRel(sub, super).\n\
              Type('t1', 'A', 's'). Type('t2', 'B', 's'). Type('ts', 'Str', 's').\n\
              SubTypRel('t2', 't1'). Attr('t1', 'x', 'ts'). Attr('t2', 'y', 'ts').";
    assert!(!has(&lint(ok), "L0502"));
}

#[test]
fn l0503_version_graph_cycle() {
    let src = "base Schema(sid, name). base evolves_to_S(from, to).\n\
               Schema('s1', 'A'). Schema('s2', 'B').\n\
               evolves_to_S('s1', 's2'). evolves_to_S('s2', 's1').";
    let r = lint(src);
    assert!(has(&r, "L0503"), "{r:?}");
    let ok = "base Schema(sid, name). base evolves_to_S(from, to).\n\
              Schema('s1', 'A'). Schema('s2', 'B').\nevolves_to_S('s1', 's2').";
    assert!(!has(&lint(ok), "L0503"));
}

#[test]
fn clean_program_is_clean() {
    let src = "base E(x, y). derived Path(x, y).\n\
               Path(X, Y) :- E(X, Y).\nPath(X, Z) :- E(X, Y), Path(Y, Z).\n\
               constraint acyclic: forall X: !Path(X, X).\n\
               E('a', 'b'). E('b', 'c').";
    let r = lint(src);
    assert!(r.is_clean(), "{}", render_report(&r, Some(src), "<t>"));
}

#[test]
fn severity_ordering_drives_deny_levels() {
    let r = lint("base Unused(x)."); // a single note
    assert!(!r.is_clean());
    assert!(r.denies(Severity::Note));
    assert!(!r.denies(Severity::Warn));
    assert!(!r.denies(Severity::Error));
}

#[test]
fn rendered_output_snapshot() {
    let src = "base N(x).\nderived Cart(x, y).\nCart(X, Y) :- N(X), N(Y).\n";
    let mut db = Database::new();
    let r = lint_source(&mut db, src, &LintConfig::default());
    let rendered = render_report(&r, Some(src), "fixture.cdl");
    let expected = "\
warn[L0401]: rule for `Cart` computes a cartesian product
 --> fixture.cdl:3:1
  |
3 | Cart(X, Y) :- N(X), N(Y).
  | ^
  = note: its positive literals form 2 join-disconnected groups
  = help: share a variable between the groups, or split the rule

0 error(s), 1 warning(s), 0 note(s)
";
    assert_eq!(rendered, expected);
}
