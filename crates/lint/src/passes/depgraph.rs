//! Dependency-graph lints — `L03xx`.
//!
//! * `L0301` — a derived predicate is referenced but no rule defines it.
//! * `L0302` — an atom uses a predicate with the wrong arity (API-built
//!   programs; parsed programs are rejected at load and mapped by
//!   [`crate::lint_source`]).
//! * `L0303` — a predicate is never used anywhere (and stores no facts).
//! * `L0304` — a rule can never fire: a positive body literal reads an
//!   undefined derived predicate.
//! * `L0305` — a constraint is vacuously satisfied: its premise reads an
//!   undefined derived predicate.

use super::{constraint_span, formula_atoms, rule_span};
use crate::diag::{Diagnostic, LintReport, Severity, Span};
use crate::LintConfig;
use gom_deductive::ast::{Atom, Literal};
use gom_deductive::{Database, Formula, PredKind};

pub(crate) fn run(db: &Database, cfg: &LintConfig, report: &mut LintReport) {
    let n = db.pred_count();
    let mut defined = vec![false; n]; // has at least one defining rule
    let mut referenced = vec![false; n]; // appears in any rule or constraint
    for rule in db.rules() {
        defined[rule.head.pred.index()] = true;
        referenced[rule.head.pred.index()] = true;
        for lit in &rule.body {
            if let Literal::Pos(a) | Literal::Neg(a) = lit {
                referenced[a.pred.index()] = true;
            }
        }
    }
    let mut catoms = Vec::new();
    for c in db.constraints() {
        formula_atoms(&c.formula, &mut catoms);
    }
    for a in &catoms {
        referenced[a.pred.index()] = true;
    }

    let arity_diag = |a: &Atom, span: Option<Span>, whom: String| -> Option<Diagnostic> {
        let d = db.pred_decl(a.pred);
        (d.arity != a.args.len()).then(|| {
            Diagnostic::new(
                "L0302",
                Severity::Error,
                format!(
                    "predicate `{}` declared with arity {} but used with arity {}",
                    db.pred_name(a.pred),
                    d.arity,
                    a.args.len()
                ),
            )
            .with_span(span)
            .with_note(whom)
        })
    };

    // Rule-level findings.
    for (i, rule) in db.rules().iter().enumerate().skip(cfg.baseline.rules) {
        let span = rule_span(db, i);
        let head_name = db.pred_name(rule.head.pred);
        report.extend(arity_diag(
            &rule.head,
            span,
            format!("in the head of a rule for `{head_name}`"),
        ));
        for lit in &rule.body {
            let (Literal::Pos(a) | Literal::Neg(a)) = lit else {
                continue;
            };
            report.extend(arity_diag(
                a,
                span,
                format!("in the body of a rule for `{head_name}`"),
            ));
            let undefined =
                db.pred_decl(a.pred).kind == PredKind::Derived && !defined[a.pred.index()];
            if undefined && lit.is_positive() {
                report.diags.push(
                    Diagnostic::new(
                        "L0304",
                        Severity::Warn,
                        format!("rule for `{head_name}` can never fire"),
                    )
                    .with_span(span)
                    .with_note(format!(
                        "positive body literal `{}` is a derived predicate with no defining rules",
                        db.pred_name(a.pred)
                    ))
                    .with_fix(format!(
                        "define `{}` or remove the literal",
                        db.pred_name(a.pred)
                    )),
                );
            }
        }
    }

    // Constraint-level findings.
    for (i, c) in db
        .constraints()
        .iter()
        .enumerate()
        .skip(cfg.baseline.constraints)
    {
        let span = constraint_span(db, i);
        let mut atoms = Vec::new();
        formula_atoms(&c.formula, &mut atoms);
        for a in &atoms {
            report.extend(arity_diag(a, span, format!("in constraint `{}`", c.name)));
        }
        if let Formula::Forall(_, body) = &c.formula {
            if let Formula::Implies(premise, _) = body.as_ref() {
                let mut patoms = Vec::new();
                formula_atoms(premise, &mut patoms);
                for a in patoms {
                    if db.pred_decl(a.pred).kind == PredKind::Derived && !defined[a.pred.index()] {
                        report.diags.push(
                            Diagnostic::new(
                                "L0305",
                                Severity::Warn,
                                format!("constraint `{}` can never be violated", c.name),
                            )
                            .with_span(span)
                            .with_note(format!(
                                "its premise reads `{}`, a derived predicate with no \
                                 defining rules, so the premise is always empty",
                                db.pred_name(a.pred)
                            )),
                        );
                    }
                }
            }
        }
    }

    // Predicate-level findings: undefined-but-referenced and unused.
    for p in db.pred_ids().skip(cfg.baseline.preds) {
        let name = db.pred_name(p);
        if name.starts_with("__") {
            continue; // compiler-generated auxiliaries
        }
        let decl = db.pred_decl(p);
        let i = p.index();
        if decl.kind == PredKind::Derived && referenced[i] && !defined[i] {
            report.diags.push(
                Diagnostic::new(
                    "L0301",
                    Severity::Warn,
                    format!("derived predicate `{name}` has no defining rules"),
                )
                .with_note("its extension is always empty")
                .with_fix(format!(
                    "add a rule with head `{name}` or drop the references"
                )),
            );
        }
        let has_facts = decl.is_base() && !db.relation(p).is_empty();
        if !referenced[i] && !has_facts {
            report.diags.push(
                Diagnostic::new(
                    "L0303",
                    Severity::Note,
                    format!("predicate `{name}` is never used"),
                )
                .with_note("it appears in no rule, no constraint, and stores no facts"),
            );
        }
    }
}
