//! Schema-level lints over the catalog facts — `L05xx`.
//!
//! These passes read the *extension* of the Database Model's catalog
//! predicates (paper §3.2/§3.4) rather than the rule text, so they apply
//! equally to schemas defined through the GOM analyzer and to facts
//! asserted by hand. Each sub-lint runs only when the predicates it needs
//! exist with the catalog's shape, so the pass is inert on databases that
//! are not schema bases.
//!
//! * `L0501` — a catalog fact references a type id that no `Type` fact
//!   declares (dangling type reference).
//! * `L0502` — a type re-declares an attribute that one of its (transitive)
//!   supertypes already declares (shadowed inherited attribute).
//! * `L0503` — the `evolves_to` version graph (schema- or type-level) has a
//!   cycle.

use crate::diag::{Diagnostic, LintReport, Severity};
use crate::LintConfig;
use gom_deductive::{Const, Database, FxHashMap, FxHashSet, PredId, PredKind, Tuple};

pub(crate) fn run(db: &Database, _cfg: &LintConfig, report: &mut LintReport) {
    let pred = |name: &str, arity: usize| -> Option<PredId> {
        let p = db.pred_id(name)?;
        let d = db.pred_decl(p);
        (d.arity == arity && d.kind == PredKind::Base).then_some(p)
    };

    let type_p = pred("Type", 3);
    let show = |c: Const| c.display(db.interner()).to_string();

    // Names for friendly rendering: tid -> type name, sid -> schema name.
    let mut type_name: FxHashMap<Const, Const> = FxHashMap::default();
    let mut declared_tids: FxHashSet<Const> = FxHashSet::default();
    if let Some(tp) = type_p {
        for t in db.relation(tp).iter() {
            declared_tids.insert(t.get(0));
            type_name.insert(t.get(0), t.get(1));
        }
    }
    let mut schema_name: FxHashMap<Const, Const> = FxHashMap::default();
    if let Some(sp) = pred("Schema", 2) {
        for t in db.relation(sp).iter() {
            schema_name.insert(t.get(0), t.get(1));
        }
    }
    let tid_label = |c: Const| match type_name.get(&c) {
        Some(&n) => format!("{} ({})", show(c), show(n)),
        None => show(c),
    };

    // ----- L0501: dangling type references --------------------------------
    if type_p.is_some() {
        // (predicate, arity, tid column positions)
        let refs: &[(&str, usize, &[usize])] = &[
            ("Attr", 3, &[0, 2]),
            ("SubTypRel", 2, &[0, 1]),
            ("Decl", 4, &[1, 3]),
            ("ArgDecl", 3, &[2]),
            ("PhRep", 2, &[1]),
        ];
        for &(pname, arity, cols) in refs {
            let Some(p) = pred(pname, arity) else {
                continue;
            };
            let mut reported: FxHashSet<(usize, Const)> = FxHashSet::default();
            for t in sorted(db, p) {
                for &col in cols {
                    let v = t.get(col);
                    if !declared_tids.contains(&v) && reported.insert((col, v)) {
                        report.diags.push(
                            Diagnostic::new(
                                "L0501",
                                Severity::Error,
                                format!(
                                    "`{pname}` fact references undeclared type id `{}`",
                                    show(v)
                                ),
                            )
                            .with_note(format!(
                                "no `Type` fact declares `{}` (column {col} of {pname}{})",
                                show(v),
                                t.display(db.interner())
                            ))
                            .with_fix("declare the type or correct the reference"),
                        );
                    }
                }
            }
        }
    }

    // ----- L0502: shadowed inherited attributes ----------------------------
    if let (Some(attr_p), Some(sub_p)) = (pred("Attr", 3), pred("SubTypRel", 2)) {
        let mut supers: FxHashMap<Const, Vec<Const>> = FxHashMap::default();
        for t in db.relation(sub_p).iter() {
            supers.entry(t.get(0)).or_default().push(t.get(1));
        }
        let mut attrs: FxHashMap<Const, Vec<Const>> = FxHashMap::default();
        for t in db.relation(attr_p).iter() {
            attrs.entry(t.get(0)).or_default().push(t.get(1));
        }
        for t in sorted(db, attr_p) {
            let (tid, attr) = (t.get(0), t.get(1));
            // Walk all transitive supertypes of `tid`.
            let mut seen: FxHashSet<Const> = FxHashSet::default();
            let mut stack: Vec<Const> = supers.get(&tid).cloned().unwrap_or_default();
            while let Some(s) = stack.pop() {
                if !seen.insert(s) {
                    continue;
                }
                if attrs.get(&s).is_some_and(|asup| asup.contains(&attr)) {
                    report.diags.push(
                        Diagnostic::new(
                            "L0502",
                            Severity::Warn,
                            format!(
                                "attribute `{}` on type {} shadows the same attribute \
                                 inherited from {}",
                                show(attr),
                                tid_label(tid),
                                tid_label(s)
                            ),
                        )
                        .with_note(
                            "GOM semantics resolve the subtype's declaration; \
                             the inherited one becomes unreachable",
                        )
                        .with_fix("rename one of the attributes or remove the redeclaration"),
                    );
                }
                stack.extend(supers.get(&s).cloned().unwrap_or_default());
            }
        }
    }

    // ----- L0503: evolves_to version-graph cycles --------------------------
    for (pname, label, names) in [
        ("evolves_to_S", "schema", &schema_name),
        ("evolves_to_T", "type", &type_name),
    ] {
        let Some(p) = pred(pname, 2) else {
            continue;
        };
        let mut succ: FxHashMap<Const, Vec<Const>> = FxHashMap::default();
        let mut nodes: Vec<Const> = Vec::new();
        for t in sorted(db, p) {
            succ.entry(t.get(0)).or_default().push(t.get(1));
            nodes.push(t.get(0));
        }
        if let Some(cycle) = find_cycle(&nodes, &succ) {
            let label_of = |c: Const| match names.get(&c) {
                Some(&n) => format!("{} ({})", show(c), show(n)),
                None => show(c),
            };
            let path: Vec<String> = cycle.iter().map(|&c| label_of(c)).collect();
            report.diags.push(
                Diagnostic::new(
                    "L0503",
                    Severity::Error,
                    format!("`{pname}` version graph has a cycle at the {label} level"),
                )
                .with_note(format!("cycle: {}", path.join(" -> ")))
                .with_fix("version evolution must form a DAG; remove one edge"),
            );
        }
    }
}

/// Facts of `p` in deterministic order.
fn sorted(db: &Database, p: PredId) -> Vec<Tuple> {
    db.facts_sorted(p)
}

/// First cycle found by coloured DFS; returned as `[n0, …, nk, n0]`.
fn find_cycle(nodes: &[Const], succ: &FxHashMap<Const, Vec<Const>>) -> Option<Vec<Const>> {
    let mut state: FxHashMap<Const, u8> = FxHashMap::default(); // 1 = on stack, 2 = done
    let mut path: Vec<Const> = Vec::new();

    fn dfs(
        u: Const,
        succ: &FxHashMap<Const, Vec<Const>>,
        state: &mut FxHashMap<Const, u8>,
        path: &mut Vec<Const>,
    ) -> Option<Vec<Const>> {
        state.insert(u, 1);
        path.push(u);
        for &v in succ.get(&u).into_iter().flatten() {
            match state.get(&v).copied() {
                Some(1) => {
                    let start = path.iter().position(|&x| x == v).unwrap_or(0);
                    let mut cycle = path[start..].to_vec();
                    cycle.push(v);
                    return Some(cycle);
                }
                Some(_) => {}
                None => {
                    if let Some(c) = dfs(v, succ, state, path) {
                        return Some(c);
                    }
                }
            }
        }
        path.pop();
        state.insert(u, 2);
        None
    }

    for &n in nodes {
        if !state.contains_key(&n) {
            if let Some(c) = dfs(n, succ, &mut state, &mut path) {
                return Some(c);
            }
        }
    }
    None
}
