//! The lint pass families and their shared infrastructure.
//!
//! Each pass walks the database read-only (the performance pass compiles
//! lazily, hence `&mut`) and appends [`crate::Diagnostic`]s to the shared
//! report. Passes never fail: anything that prevents an analysis (e.g. a
//! program that does not compile) is either already reported by an earlier
//! pass or silently skipped.

pub(crate) mod depgraph;
pub(crate) mod perf;
pub(crate) mod safety;
pub(crate) mod schema;
pub(crate) mod strat;

use crate::diag::Span;
use gom_deductive::ast::Literal;
use gom_deductive::{Database, Formula};

/// Span of rule `i`, when it was parsed from text.
pub(crate) fn rule_span(db: &Database, i: usize) -> Option<Span> {
    db.rule_info(i).pos.map(|(l, c)| Span::point(l, c))
}

/// Span of constraint `i`, when it was parsed from text.
pub(crate) fn constraint_span(db: &Database, i: usize) -> Option<Span> {
    db.constraint_info(i).pos.map(|(l, c)| Span::point(l, c))
}

/// The predicate dependency graph of the *user* rules: one edge per body
/// literal, `head -> body-pred`, labelled with polarity and the rule it
/// came from.
pub(crate) struct PredGraph {
    /// Adjacency per predicate index: `(target, is_negative, rule index)`.
    pub edges: Vec<Vec<(usize, bool, usize)>>,
}

impl PredGraph {
    pub(crate) fn build(db: &Database) -> PredGraph {
        let mut edges = vec![Vec::new(); db.pred_count()];
        for (ri, rule) in db.rules().iter().enumerate() {
            let h = rule.head.pred.index();
            for lit in &rule.body {
                match lit {
                    Literal::Pos(a) => edges[h].push((a.pred.index(), false, ri)),
                    Literal::Neg(a) => edges[h].push((a.pred.index(), true, ri)),
                    Literal::Cmp(..) => {}
                }
            }
        }
        PredGraph { edges }
    }

    /// Strongly connected components (Kosaraju); returns the component id
    /// of every node.
    pub(crate) fn sccs(&self) -> Vec<usize> {
        let n = self.edges.len();
        let mut visited = vec![false; n];
        let mut order = Vec::with_capacity(n);
        for s in 0..n {
            if visited[s] {
                continue;
            }
            visited[s] = true;
            let mut stack = vec![(s, 0usize)];
            while let Some(frame) = stack.last_mut() {
                let (u, i) = *frame;
                if i < self.edges[u].len() {
                    frame.1 += 1;
                    let v = self.edges[u][i].0;
                    if !visited[v] {
                        visited[v] = true;
                        stack.push((v, 0));
                    }
                } else {
                    order.push(u);
                    stack.pop();
                }
            }
        }
        let mut radj = vec![Vec::new(); n];
        for (u, outs) in self.edges.iter().enumerate() {
            for &(v, _, _) in outs {
                radj[v].push(u);
            }
        }
        let mut comp = vec![usize::MAX; n];
        let mut c = 0;
        for &s in order.iter().rev() {
            if comp[s] != usize::MAX {
                continue;
            }
            comp[s] = c;
            let mut st = vec![s];
            while let Some(u) = st.pop() {
                for &v in &radj[u] {
                    if comp[v] == usize::MAX {
                        comp[v] = c;
                        st.push(v);
                    }
                }
            }
            c += 1;
        }
        comp
    }
}

/// Collect every atom mentioned anywhere in a formula.
pub(crate) fn formula_atoms<'a>(f: &'a Formula, out: &mut Vec<&'a gom_deductive::ast::Atom>) {
    match f {
        Formula::True | Formula::False | Formula::Cmp(..) => {}
        Formula::Atom(a) => out.push(a),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().for_each(|g| formula_atoms(g, out)),
        Formula::Not(g) => formula_atoms(g, out),
        Formula::Implies(p, c) => {
            formula_atoms(p, out);
            formula_atoms(c, out);
        }
        Formula::Forall(_, g) | Formula::Exists(_, g) => formula_atoms(g, out),
    }
}
