//! Stratification lint — `L0201`.
//!
//! Where the engine's fixpoint stratifier only names one predicate that
//! "depends negatively on itself", this pass finds the actual negation
//! cycle and reports a minimal witness path, anchored at the rule that
//! introduces the offending negation.

use super::{rule_span, PredGraph};
use crate::diag::{Diagnostic, LintReport, Severity};
use crate::LintConfig;
use gom_deductive::Database;

pub(crate) fn run(db: &Database, _cfg: &LintConfig, report: &mut LintReport) {
    let graph = PredGraph::build(db);
    let comp = graph.sccs();
    let names: Vec<String> = db.pred_ids().map(|p| db.pred_name(p).to_string()).collect();

    // Per component, keep only the shortest witness cycle:
    // (cycle length, path [v, …, u], rule introducing the negation).
    let mut best: Vec<Option<(usize, Vec<usize>, usize)>> = vec![None; graph.edges.len()];
    for (u, outs) in graph.edges.iter().enumerate() {
        for &(v, neg, ri) in outs {
            if !neg || comp[u] != comp[v] {
                continue;
            }
            // Shortest path v ->* u inside the component closes the cycle
            // u -not-> v -> … -> u.
            let Some(path) = shortest_path(&graph, &comp, v, u) else {
                continue;
            };
            let slot = &mut best[comp[u]];
            if slot.as_ref().is_none_or(|(l, _, _)| path.len() < *l) {
                *slot = Some((path.len(), path, ri));
            }
        }
    }

    for (_, path, ri) in best.into_iter().flatten() {
        // path = [v, …, u]; render the cycle as u -> not v -> … -> u.
        let Some(&u) = path.last() else { continue };
        let mut text = names[u].clone();
        for (i, &p) in path.iter().enumerate() {
            if i == 0 {
                text.push_str(&format!(" -> not {}", names[p]));
            } else {
                text.push_str(&format!(" -> {}", names[p]));
            }
        }
        report.diags.push(
            Diagnostic::new(
                "L0201",
                Severity::Error,
                "program is not stratifiable: negation occurs in a recursive cycle",
            )
            .with_span(rule_span(db, ri))
            .with_note(format!("minimal cycle: {text}"))
            .with_fix("break the cycle: remove one negation or split the recursion"),
        );
    }
}

/// BFS shortest path from `from` to `to` restricted to `from`'s component.
/// Returns the node sequence `[from, …, to]`.
fn shortest_path(graph: &PredGraph, comp: &[usize], from: usize, to: usize) -> Option<Vec<usize>> {
    let n = graph.edges.len();
    let mut prev = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    prev[from] = from;
    queue.push_back(from);
    while let Some(u) = queue.pop_front() {
        if u == to {
            let mut path = vec![to];
            let mut cur = to;
            while cur != from {
                cur = prev[cur];
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
        for &(v, _, _) in &graph.edges[u] {
            if comp[v] == comp[from] && prev[v] == usize::MAX {
                prev[v] = u;
                queue.push_back(v);
            }
        }
    }
    None
}
