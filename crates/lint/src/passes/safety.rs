//! Safety (range-restriction) lints — `L01xx`.
//!
//! * `L0101` — a rule is not range-restricted (defense in depth; the engine
//!   rejects these at load, so this fires mainly for API-built programs).
//! * `L0102` — a constraint's outer universally quantified variable is not
//!   bound by a positive premise literal, so the compiled violation rule
//!   cannot be range-restricted.
//! * `L0103` — a constraint formula is not closed.

use super::{constraint_span, rule_span};
use crate::diag::{Diagnostic, LintReport, Severity};
use crate::LintConfig;
use gom_deductive::ast::Var;
use gom_deductive::{Database, Formula, FxHashSet};

pub(crate) fn run(db: &Database, cfg: &LintConfig, report: &mut LintReport) {
    for (i, rule) in db.rules().iter().enumerate().skip(cfg.baseline.rules) {
        if let Err(v) = rule.check_safety() {
            let info = db.rule_info(i);
            let var = info
                .var_names
                .get(v.index())
                .cloned()
                .unwrap_or_else(|| format!("#{}", v.0));
            report.diags.push(
                Diagnostic::new(
                    "L0101",
                    Severity::Error,
                    format!(
                        "rule for `{}` is not range-restricted",
                        db.pred_name(rule.head.pred)
                    ),
                )
                .with_span(rule_span(db, i))
                .with_note(format!(
                    "variable `{var}` does not occur in any positive body literal"
                ))
                .with_fix(format!(
                    "bind `{var}` with a positive literal, or drop it from the rule"
                )),
            );
        }
    }

    for (i, c) in db
        .constraints()
        .iter()
        .enumerate()
        .skip(cfg.baseline.constraints)
    {
        let free = c.formula.free_vars();
        if !free.is_empty() {
            let mut vars: Vec<&str> = free.iter().map(|&v| c.var_name(v)).collect();
            vars.sort_unstable();
            report.diags.push(
                Diagnostic::new(
                    "L0103",
                    Severity::Error,
                    format!("constraint `{}` is not a closed formula", c.name),
                )
                .with_span(constraint_span(db, i))
                .with_note(format!("free variable(s): {}", vars.join(", ")))
                .with_fix("quantify every variable (forall/exists)"),
            );
            continue;
        }
        if let Formula::Forall(outer, body) = &c.formula {
            if let Formula::Implies(premise, _) = body.as_ref() {
                let bound = positive_bound_vars(premise);
                for &v in outer {
                    if !bound.contains(&v) {
                        report.diags.push(
                            Diagnostic::new(
                                "L0102",
                                Severity::Error,
                                format!("constraint `{}` is not range-restricted", c.name),
                            )
                            .with_span(constraint_span(db, i))
                            .with_note(format!(
                                "outer variable `{}` is not bound by a positive premise literal",
                                c.var_name(v)
                            ))
                            .with_fix(format!(
                                "add a positive premise atom mentioning `{}`",
                                c.var_name(v)
                            )),
                        );
                    }
                }
            }
        }
    }
}

/// Variables guaranteed bound by the positive part of a premise: atoms bind
/// their variables, conjunction unions, disjunction intersects, existential
/// bodies pass through, everything else (negation, comparisons) binds
/// nothing.
fn positive_bound_vars(f: &Formula) -> FxHashSet<Var> {
    match f {
        Formula::Atom(a) => a.vars().collect(),
        Formula::And(fs) => {
            let mut acc = FxHashSet::default();
            for g in fs {
                acc.extend(positive_bound_vars(g));
            }
            acc
        }
        Formula::Or(fs) => {
            let mut it = fs.iter().map(positive_bound_vars);
            let Some(first) = it.next() else {
                return FxHashSet::default();
            };
            it.fold(first, |acc, s| acc.intersection(&s).copied().collect())
        }
        Formula::Exists(_, g) => positive_bound_vars(g),
        _ => FxHashSet::default(),
    }
}
