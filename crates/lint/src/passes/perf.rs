//! Performance lints — `L04xx`.
//!
//! * `L0401` — a rule body contains a cartesian product: its positive
//!   literals split into join-disconnected groups.
//! * `L0402` — non-linear recursion: a rule joins two or more literals from
//!   its own recursive component (quadratic semi-naive deltas).
//! * `L0403` — a constraint compiles into a violation program whose widest
//!   rule joins more than `max_join_width` positive literals.

use super::{constraint_span, rule_span, PredGraph};
use crate::diag::{Diagnostic, LintReport, Severity};
use crate::LintConfig;
use gom_deductive::ast::{Literal, Rule};
use gom_deductive::Database;

pub(crate) fn run(db: &mut Database, cfg: &LintConfig, report: &mut LintReport) {
    let graph = PredGraph::build(db);
    let comp = graph.sccs();

    for (i, rule) in db.rules().iter().enumerate().skip(cfg.baseline.rules) {
        let span = rule_span(db, i);
        let head_name = db.pred_name(rule.head.pred).to_string();

        // L0401 — connected components of positive literals under shared
        // variables. Ground atoms join nothing and are exempt (they act as
        // guards, not as product factors).
        let atoms: Vec<&gom_deductive::ast::Atom> = rule
            .body
            .iter()
            .filter_map(|l| match l {
                Literal::Pos(a) if a.vars().next().is_some() => Some(a),
                _ => None,
            })
            .collect();
        if atoms.len() > 1 {
            let mut group: Vec<usize> = (0..atoms.len()).collect();
            fn find(g: &mut [usize], x: usize) -> usize {
                if g[x] == x {
                    x
                } else {
                    let r = find(g, g[x]);
                    g[x] = r;
                    r
                }
            }
            for a in 0..atoms.len() {
                for b in a + 1..atoms.len() {
                    let shares = atoms[a].vars().any(|v| atoms[b].vars().any(|w| w == v));
                    if shares {
                        let (ra, rb) = (find(&mut group, a), find(&mut group, b));
                        group[ra] = rb;
                    }
                }
            }
            let mut roots: Vec<usize> = (0..atoms.len()).map(|x| find(&mut group, x)).collect();
            roots.sort_unstable();
            roots.dedup();
            if roots.len() > 1 {
                report.diags.push(
                    Diagnostic::new(
                        "L0401",
                        Severity::Warn,
                        format!("rule for `{head_name}` computes a cartesian product"),
                    )
                    .with_span(span)
                    .with_note(format!(
                        "its positive literals form {} join-disconnected groups",
                        roots.len()
                    ))
                    .with_fix("share a variable between the groups, or split the rule"),
                );
            }
        }

        // L0402 — two or more positive literals from the head's own
        // recursive component.
        let h = rule.head.pred.index();
        let recursive_lits = rule
            .body
            .iter()
            .filter(|l| match l {
                Literal::Pos(a) => comp[a.pred.index()] == comp[h],
                _ => false,
            })
            .count();
        if recursive_lits >= 2 {
            report.diags.push(
                Diagnostic::new(
                    "L0402",
                    Severity::Warn,
                    format!("rule for `{head_name}` uses non-linear recursion"),
                )
                .with_span(span)
                .with_note(format!(
                    "{recursive_lits} positive body literals are mutually recursive with the head"
                ))
                .with_fix("rewrite with a single recursive literal (linear recursion) if possible"),
            );
        }
    }

    // L0403 — wide joins in compiled constraints. Needs the compiled
    // program; when compilation fails the stratification/safety lints have
    // already reported why, so skip silently.
    let Ok(view) = db.program_view() else {
        return;
    };
    let n_preds: usize = view
        .rules
        .iter()
        .map(|r| r.head.pred.index() + 1)
        .max()
        .unwrap_or(0);
    let mut by_head: Vec<Vec<usize>> = vec![Vec::new(); n_preds];
    for (i, r) in view.rules.iter().enumerate() {
        by_head[r.head.pred.index()].push(i);
    }
    let mut findings = Vec::new();
    for &(ci, viol) in &view.constraint_viols {
        if ci < cfg.baseline.constraints {
            continue;
        }
        let width = max_join_width(view.rules, &by_head, viol.index());
        if width > cfg.max_join_width {
            findings.push((ci, width));
        }
    }
    for (ci, width) in findings {
        let c = &db.constraints()[ci];
        report.diags.push(
            Diagnostic::new(
                "L0403",
                Severity::Warn,
                format!(
                    "constraint `{}` compiles into a join of {} relations (limit {})",
                    c.name, width, cfg.max_join_width
                ),
            )
            .with_span(constraint_span(db, ci))
            .with_note("checking this constraint may be expensive on large bases")
            .with_fix("factor shared premises into named derived predicates"),
        );
    }
}

/// Maximum positive-literal count over all rules reachable from `start`'s
/// defining rules (following both positive and negative dependencies).
fn max_join_width(rules: &[Rule], by_head: &[Vec<usize>], start: usize) -> usize {
    let mut seen = vec![false; by_head.len()];
    let mut stack = vec![start];
    seen[start] = true;
    let mut width = 0;
    while let Some(p) = stack.pop() {
        for &ri in &by_head[p] {
            let rule = &rules[ri];
            let positives = rule.body.iter().filter(|l| l.is_positive()).count();
            width = width.max(positives);
            for lit in &rule.body {
                if let Literal::Pos(a) | Literal::Neg(a) = lit {
                    let q = a.pred.index();
                    if q < seen.len() && !seen[q] {
                        seen[q] = true;
                        stack.push(q);
                    }
                }
            }
        }
    }
    width
}
