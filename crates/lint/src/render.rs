//! Human-readable (rustc-style) rendering of a [`LintReport`]:
//!
//! ```text
//! error[L0201]: program is not stratifiable: negation cycle
//!  --> schema.cdl:3:1
//!   |
//! 3 | Foo(X) :- N(X), not Bar(X).
//!   | ^
//!   = note: minimal cycle: Foo -> not Bar -> Foo
//! ```

use crate::diag::{Diagnostic, LintReport, Severity};

/// Render one diagnostic. `source` (when given) supplies the snippet for
/// caret spans; `origin` names the document (file path or `<input>`).
pub fn render_diagnostic(d: &Diagnostic, source: Option<&str>, origin: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("{}[{}]: {}\n", d.severity, d.code, d.message));
    if let Some(span) = d.span {
        out.push_str(&format!(" --> {origin}:{}:{}\n", span.line, span.col));
        if let Some(line_text) = source.and_then(|s| s.lines().nth(span.line.saturating_sub(1))) {
            let lno = span.line.to_string();
            let gutter = " ".repeat(lno.len());
            out.push_str(&format!("{gutter} |\n"));
            out.push_str(&format!("{lno} | {line_text}\n"));
            let pad = " ".repeat(span.col.saturating_sub(1));
            let carets = "^".repeat(span.len.max(1));
            out.push_str(&format!("{gutter} | {pad}{carets}\n"));
        }
    }
    for note in &d.notes {
        out.push_str(&format!("  = note: {note}\n"));
    }
    if let Some(fix) = &d.fix {
        out.push_str(&format!("  = help: {fix}\n"));
    }
    out
}

/// Render a whole report plus a summary line.
pub fn render_report(report: &LintReport, source: Option<&str>, origin: &str) -> String {
    let mut out = String::new();
    for d in &report.diags {
        out.push_str(&render_diagnostic(d, source, origin));
        out.push('\n');
    }
    let (e, w, n) = (
        report.count(Severity::Error),
        report.count(Severity::Warn),
        report.count(Severity::Note),
    );
    if report.is_clean() {
        out.push_str("clean: no diagnostics\n");
    } else {
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} note(s)\n",
            e, w, n
        ));
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::diag::Span;

    #[test]
    fn caret_lands_under_the_offending_column() {
        let src = "base N(x).\nFoo(X) :- N(Y).\n";
        let d = Diagnostic::new("L0101", Severity::Error, "rule is not range-restricted")
            .with_span(Some(Span::point(2, 1)))
            .with_note("variable `X` is unbound");
        let r = render_diagnostic(&d, Some(src), "t.cdl");
        assert!(r.contains("error[L0101]"), "{r}");
        assert!(r.contains("--> t.cdl:2:1"), "{r}");
        assert!(r.contains("2 | Foo(X) :- N(Y)."), "{r}");
        assert!(r.contains("  | ^"), "{r}");
        assert!(r.contains("= note: variable `X` is unbound"), "{r}");
    }

    #[test]
    fn spanless_diagnostic_renders_without_snippet() {
        let d = Diagnostic::new("L0503", Severity::Error, "version graph has a cycle");
        let r = render_diagnostic(&d, None, "<db>");
        assert!(!r.contains("-->"), "{r}");
        assert!(r.contains("error[L0503]"), "{r}");
    }
}
