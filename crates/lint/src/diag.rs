//! The structured diagnostic type and the report container.
//!
//! Every lint pass emits [`Diagnostic`]s: a stable code (`L0102`), a
//! severity, an optional source span, a primary message, labelled notes,
//! and an optional suggested fix. Reports know their worst severity and
//! whether they trip a deny level.

use std::fmt;

/// Diagnostic severity, ordered `Note < Warn < Error`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Informational; style or hygiene.
    Note,
    /// Probably a mistake; the program still evaluates.
    Warn,
    /// The program is ill-formed (will not compile or cannot behave as
    /// written).
    Error,
}

impl Severity {
    /// Lower-case name (`"error"`, `"warn"`, `"note"`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Parse from the names accepted by `--deny`.
    pub fn parse(s: &str) -> Option<Severity> {
        Some(match s {
            "note" => Severity::Note,
            "warn" | "warning" => Severity::Warn,
            "error" => Severity::Error,
            _ => return None,
        })
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A 1-based source position with an optional highlight length.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Span {
    /// Line (1-based).
    pub line: usize,
    /// Column (1-based).
    pub col: usize,
    /// Characters to highlight (at least 1).
    pub len: usize,
}

impl Span {
    /// A single-character span.
    pub fn point(line: usize, col: usize) -> Span {
        Span { line, col, len: 1 }
    }
}

/// One finding of the analyzer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Stable code, e.g. `"L0201"`. Code ranges group the passes:
    /// `L00xx` syntax, `L01xx` safety, `L02xx` stratification, `L03xx`
    /// dependency graph, `L04xx` performance, `L05xx` schema.
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Primary message (one line, no trailing period).
    pub message: String,
    /// Source span, when the finding maps to a position in the linted
    /// document.
    pub span: Option<Span>,
    /// Secondary notes (witness paths, definitions involved, …).
    pub notes: Vec<String>,
    /// A suggested fix, when one is mechanical.
    pub fix: Option<String>,
}

impl Diagnostic {
    /// Build a diagnostic with no span, notes, or fix.
    pub fn new(code: &'static str, severity: Severity, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            span: None,
            notes: Vec::new(),
            fix: None,
        }
    }

    /// Attach a span.
    pub fn with_span(mut self, span: Option<Span>) -> Diagnostic {
        self.span = span;
        self
    }

    /// Append a note.
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// Attach a suggested fix.
    pub fn with_fix(mut self, fix: impl Into<String>) -> Diagnostic {
        self.fix = Some(fix.into());
        self
    }
}

/// The result of a lint run: all diagnostics, sorted by position then code.
#[derive(Clone, Default, Debug)]
pub struct LintReport {
    /// The findings.
    pub diags: Vec<Diagnostic>,
}

impl LintReport {
    /// No findings at all?
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == severity).count()
    }

    /// The worst severity present.
    pub fn worst(&self) -> Option<Severity> {
        self.diags.iter().map(|d| d.severity).max()
    }

    /// True when any finding is at `level` or worse — the `--deny` check.
    pub fn denies(&self, level: Severity) -> bool {
        self.worst().is_some_and(|w| w >= level)
    }

    /// Sort by (line, column, code, severity, message, …) with span-less
    /// findings last, then drop exact duplicates. The full-field key makes
    /// render and JSON output deterministic across runs and eval-thread
    /// counts, so golden files and CI diffs are reproducible.
    pub fn sort(&mut self) {
        fn pos(d: &Diagnostic) -> (usize, usize) {
            d.span.map_or((usize::MAX, usize::MAX), |s| (s.line, s.col))
        }
        self.diags.sort_by(|a, b| {
            pos(a)
                .cmp(&pos(b))
                .then_with(|| a.code.cmp(b.code))
                .then_with(|| a.severity.cmp(&b.severity))
                .then_with(|| a.message.cmp(&b.message))
                .then_with(|| a.notes.cmp(&b.notes))
                .then_with(|| a.fix.cmp(&b.fix))
        });
        self.diags.dedup();
    }

    /// Extend with another pass's findings.
    pub fn extend(&mut self, diags: impl IntoIterator<Item = Diagnostic>) {
        self.diags.extend(diags);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn sort_is_total_and_dedups() {
        let mut r = LintReport::default();
        let d = Diagnostic::new("L0401", Severity::Warn, "dup").with_span(Some(Span::point(1, 1)));
        r.diags.push(d.clone());
        r.diags.push(
            Diagnostic::new("L0401", Severity::Warn, "other").with_span(Some(Span::point(1, 1))),
        );
        r.diags.push(d);
        r.sort();
        assert_eq!(r.diags.len(), 2, "exact duplicate removed");
        assert_eq!(r.diags[0].message, "dup");
        assert_eq!(r.diags[1].message, "other");
    }

    #[test]
    fn severity_orders_and_parses() {
        assert!(Severity::Error > Severity::Warn);
        assert!(Severity::Warn > Severity::Note);
        assert_eq!(Severity::parse("warning"), Some(Severity::Warn));
        assert_eq!(Severity::parse("fatal"), None);
    }

    #[test]
    fn deny_level_respects_ordering() {
        let mut r = LintReport::default();
        r.diags.push(Diagnostic::new("L0401", Severity::Warn, "x"));
        assert!(!r.denies(Severity::Error));
        assert!(r.denies(Severity::Warn));
        assert!(r.denies(Severity::Note));
        assert_eq!(r.count(Severity::Warn), 1);
    }

    #[test]
    fn sort_puts_spanless_last() {
        let mut r = LintReport::default();
        r.diags
            .push(Diagnostic::new("L0503", Severity::Error, "no span"));
        r.diags.push(
            Diagnostic::new("L0101", Severity::Error, "spanned").with_span(Some(Span::point(2, 1))),
        );
        r.sort();
        assert_eq!(r.diags[0].code, "L0101");
    }
}
