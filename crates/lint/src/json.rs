//! Machine-readable emission: a hand-rolled JSON serializer and a minimal
//! parser, so reports round-trip with zero external crates.

use crate::diag::{Diagnostic, LintReport, Severity, Span};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value (strings, i64 numbers, and the usual composites — all a
/// diagnostic needs).
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// `null`
    Null,
    /// `true`/`false`
    Bool(bool),
    /// Integer number.
    Int(i64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object with deterministic (sorted) key order.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }
}

/// Serialize a value to compact JSON.
pub fn emit(v: &Value) -> String {
    let mut s = String::new();
    emit_into(v, &mut s);
    s
}

fn emit_into(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Str(s) => emit_str(s, out),
        Value::Arr(xs) => {
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_into(x, out);
            }
            out.push(']');
        }
        Value::Obj(m) => {
            out.push('{');
            for (i, (k, x)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_str(k, out);
                out.push(':');
                emit_into(x, out);
            }
            out.push('}');
        }
    }
}

fn emit_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = P {
        src: text.as_bytes(),
        pos: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.pos != p.src.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct P<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> P<'a> {
    fn ws(&mut self) {
        while self
            .src
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.src.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.src[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.src.get(self.pos) {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut xs = Vec::new();
                self.ws();
                if self.src.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(xs));
                }
                loop {
                    self.ws();
                    xs.push(self.value()?);
                    self.ws();
                    match self.src.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(xs));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut m = BTreeMap::new();
                self.ws();
                if self.src.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(m));
                }
                loop {
                    self.ws();
                    let k = self.string()?;
                    self.ws();
                    self.eat(b':')?;
                    self.ws();
                    m.insert(k, self.value()?);
                    self.ws();
                    match self.src.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(m));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                    }
                }
            }
            Some(b) if b.is_ascii_digit() || *b == b'-' => {
                let start = self.pos;
                if self.src.get(self.pos) == Some(&b'-') {
                    self.pos += 1;
                }
                while self.src.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
                std::str::from_utf8(&self.src[start..self.pos])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .map(Value::Int)
                    .ok_or_else(|| format!("bad number at byte {start}"))
            }
            _ => Err(format!("unexpected byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = Vec::new();
        loop {
            match self.src.get(self.pos).copied() {
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(s).map_err(|e| e.to_string());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.src.get(self.pos).copied() {
                        Some(b'"') => s.push(b'"'),
                        Some(b'\\') => s.push(b'\\'),
                        Some(b'/') => s.push(b'/'),
                        Some(b'n') => s.push(b'\n'),
                        Some(b'r') => s.push(b'\r'),
                        Some(b't') => s.push(b'\t'),
                        Some(b'u') => {
                            let hex = self
                                .src
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let mut buf = [0u8; 4];
                            s.extend_from_slice(hex.encode_utf8(&mut buf).as_bytes());
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    s.push(b);
                    self.pos += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }
}

// ----- report <-> JSON ------------------------------------------------------

fn diag_to_value(d: &Diagnostic) -> Value {
    let mut m = BTreeMap::new();
    m.insert("code".into(), Value::Str(d.code.into()));
    m.insert("severity".into(), Value::Str(d.severity.name().into()));
    m.insert("message".into(), Value::Str(d.message.clone()));
    match d.span {
        Some(s) => {
            m.insert("line".into(), Value::Int(s.line as i64));
            m.insert("col".into(), Value::Int(s.col as i64));
            m.insert("len".into(), Value::Int(s.len as i64));
        }
        None => {
            m.insert("line".into(), Value::Null);
            m.insert("col".into(), Value::Null);
            m.insert("len".into(), Value::Null);
        }
    }
    m.insert(
        "notes".into(),
        Value::Arr(d.notes.iter().map(|n| Value::Str(n.clone())).collect()),
    );
    m.insert("fix".into(), d.fix.clone().map_or(Value::Null, Value::Str));
    Value::Obj(m)
}

/// The known codes, for interning `&'static str` codes on deserialization.
const CODES: &[&str] = &[
    "L0001", "L0002", "L0101", "L0102", "L0103", "L0201", "L0301", "L0302", "L0303", "L0304",
    "L0305", "L0401", "L0402", "L0403", "L0501", "L0502", "L0503", "L0601", "L0602", "L0603",
];

fn diag_from_value(v: &Value) -> Result<Diagnostic, String> {
    let Value::Obj(m) = v else {
        return Err("diagnostic must be an object".into());
    };
    let get = |k: &str| m.get(k).ok_or_else(|| format!("missing key `{k}`"));
    let code_s = get("code")?.as_str().ok_or("code must be a string")?;
    let code = CODES
        .iter()
        .find(|c| **c == code_s)
        .copied()
        .ok_or_else(|| format!("unknown diagnostic code `{code_s}`"))?;
    let severity = get("severity")?
        .as_str()
        .and_then(Severity::parse)
        .ok_or("bad severity")?;
    let message = get("message")?.as_str().ok_or("bad message")?.to_string();
    let span = match (get("line")?, get("col")?, get("len")?) {
        (Value::Null, ..) => None,
        (l, c, n) => Some(Span {
            line: l.as_int().ok_or("bad line")? as usize,
            col: c.as_int().ok_or("bad col")? as usize,
            len: n.as_int().ok_or("bad len")? as usize,
        }),
    };
    let notes = match get("notes")? {
        Value::Arr(xs) => xs
            .iter()
            .map(|x| x.as_str().map(String::from).ok_or("bad note"))
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err("notes must be an array".into()),
    };
    let fix = match get("fix")? {
        Value::Null => None,
        Value::Str(s) => Some(s.clone()),
        _ => return Err("fix must be a string or null".into()),
    };
    Ok(Diagnostic {
        code,
        severity,
        message,
        span,
        notes,
        fix,
    })
}

impl LintReport {
    /// Serialize to a JSON array of diagnostic objects.
    pub fn to_json(&self) -> String {
        emit(&Value::Arr(self.diags.iter().map(diag_to_value).collect()))
    }

    /// Parse a report back from [`Self::to_json`] output.
    pub fn from_json(text: &str) -> Result<LintReport, String> {
        let Value::Arr(xs) = parse(text)? else {
            return Err("report must be a JSON array".into());
        };
        Ok(LintReport {
            diags: xs
                .iter()
                .map(diag_from_value)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_through_json() {
        let mut r = LintReport::default();
        r.diags.push(
            Diagnostic::new("L0201", Severity::Error, "negation cycle \"weird\"\nname")
                .with_span(Some(Span::point(3, 7)))
                .with_note("minimal cycle: Foo -> not Bar -> Foo")
                .with_fix("remove one negation"),
        );
        r.diags
            .push(Diagnostic::new("L0503", Severity::Warn, "spanless"));
        let json = r.to_json();
        let back = LintReport::from_json(&json).unwrap();
        assert_eq!(back.diags, r.diags);
        // …and the round trip is a fixpoint.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("[] trailing").is_err());
        assert!(LintReport::from_json("{\"not\":\"an array\"}").is_err());
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Value::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(parse(&emit(&v)).unwrap(), v);
    }
}
