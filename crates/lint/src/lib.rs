//! # gom-lint — static analysis and diagnostics for schema bases
//!
//! A multi-pass static analyzer over the deductive program (EDB/IDB/CDB),
//! the GOM schema base, and the evolution spec. Where the engine stops at
//! the first load error, the linter recovers per statement, keeps going,
//! and reports *everything* it finds as structured [`Diagnostic`]s with
//! stable codes, source spans, notes, and suggested fixes — renderable
//! rustc-style ([`render_report`]) or as JSON ([`LintReport::to_json`]).
//!
//! ## Pass families and code ranges
//!
//! | range   | pass             | examples |
//! |---------|------------------|----------|
//! | `L00xx` | syntax           | `L0001` parse error, `L0002` unknown predicate |
//! | `L01xx` | safety           | `L0101` unsafe rule, `L0102` unsafe constraint, `L0103` open formula |
//! | `L02xx` | stratification   | `L0201` negation cycle (with minimal witness path) |
//! | `L03xx` | dependency graph | `L0301` undefined derived pred, `L0302` arity mismatch, `L0303` unused pred, `L0304` unreachable rule, `L0305` never-firing constraint |
//! | `L04xx` | performance      | `L0401` cartesian product, `L0402` non-linear recursion, `L0403` wide join |
//! | `L05xx` | schema           | `L0501` dangling type ref, `L0502` shadowed attribute, `L0503` version-graph cycle |
//! | `L06xx` | impact (emitted by `gom-impact`) | `L0601` breaking change without migration, `L0602` constraint unaffected by any primitive, `L0603` impact footprint exceeds threshold |
//!
//! ## Baselines
//!
//! A schema manager installs system predicates, rules, and constraints of
//! its own before any user definitions arrive. Capturing a [`Baseline`]
//! after that setup exempts the system items from user-facing lints:
//!
//! ```
//! use gom_deductive::Database;
//! use gom_lint::{lint_source, Baseline, LintConfig, Severity};
//!
//! let mut db = Database::new();
//! db.load("base N(x). derived Ok(x). Ok(X) :- N(X).").unwrap(); // "system"
//! let cfg = LintConfig {
//!     baseline: Baseline::current(&db),
//!     ..LintConfig::default()
//! };
//! let report = lint_source(&mut db, "Nope(X) :- N(Y).", &cfg);
//! assert!(report.denies(Severity::Error));
//! ```

#![warn(missing_docs)]

pub mod diag;
pub mod json;
mod passes;
pub mod render;

pub use diag::{Diagnostic, LintReport, Severity, Span};
pub use render::{render_diagnostic, render_report};

use gom_deductive::{parse_program_lenient, Database, Error};

/// Counts of predicates, rules, and constraints present *before* the
/// material being linted was loaded. Items below the baseline are treated
/// as system-installed and exempted from user-facing lints.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct Baseline {
    /// Predicates declared before the baseline.
    pub preds: usize,
    /// Rules added before the baseline.
    pub rules: usize,
    /// Constraints added before the baseline.
    pub constraints: usize,
}

impl Baseline {
    /// An empty baseline: lint everything.
    pub fn empty() -> Baseline {
        Baseline::default()
    }

    /// Snapshot the database's current definition counts. Compiler-generated
    /// auxiliary predicates (named `__…`) are not counted — they come and go
    /// with compilation and are skipped by every pass anyway.
    pub fn current(db: &Database) -> Baseline {
        Baseline {
            preds: db
                .pred_ids()
                .filter(|&p| !db.pred_name(p).starts_with("__"))
                .count(),
            rules: db.rules().len(),
            constraints: db.constraints().len(),
        }
    }
}

/// Configuration for a lint run.
#[derive(Clone, Debug)]
pub struct LintConfig {
    /// `L0403` fires when a constraint's compiled violation program joins
    /// more than this many relations in one rule.
    pub max_join_width: usize,
    /// Definitions to exempt (system-installed material).
    pub baseline: Baseline,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            max_join_width: 8,
            baseline: Baseline::empty(),
        }
    }
}

/// Run all database-level passes over the definitions already loaded.
///
/// Takes `&mut` only because the performance pass compiles the constraint
/// program lazily; no definitions or facts are changed.
pub fn lint_database(db: &mut Database, cfg: &LintConfig) -> LintReport {
    let mut report = LintReport::default();
    passes::safety::run(db, cfg, &mut report);
    passes::strat::run(db, cfg, &mut report);
    passes::depgraph::run(db, cfg, &mut report);
    passes::schema::run(db, cfg, &mut report);
    passes::perf::run(db, cfg, &mut report);
    report.sort();
    report
}

/// Load `text` leniently into `db` (recovering at statement boundaries),
/// convert every load error into a positioned diagnostic, then run the
/// database-level passes over whatever did load.
///
/// Statements that fail to load are dropped; everything else takes effect
/// exactly as a plain `Database::load` would.
pub fn lint_source(db: &mut Database, text: &str, cfg: &LintConfig) -> LintReport {
    let loaded = parse_program_lenient(db, text);
    let mut report = LintReport::default();
    for e in &loaded.errors {
        report.diags.push(error_to_diag(e));
    }
    report.extend(lint_database(db, cfg).diags);
    report.sort();
    report
}

/// Map a load-time [`gom_deductive::Error`] onto the diagnostic space.
pub fn error_to_diag(e: &Error) -> Diagnostic {
    let span = e.position().map(|(l, c)| Span::point(l, c));
    let root = e.root();
    let d = match root {
        Error::UnknownPredicate(p) => {
            Diagnostic::new("L0002", Severity::Error, format!("unknown predicate `{p}`"))
                .with_fix(format!("declare `{p}` with `base` or `derived` before use"))
        }
        Error::Parse { msg, .. } => {
            if let Some(p) = msg
                .strip_prefix("unknown predicate `")
                .and_then(|r| r.split('`').next())
            {
                Diagnostic::new("L0002", Severity::Error, format!("unknown predicate `{p}`"))
                    .with_fix(format!("declare `{p}` with `base` or `derived` before use"))
            } else {
                Diagnostic::new("L0001", Severity::Error, format!("syntax error: {msg}"))
            }
        }
        Error::ArityMismatch {
            pred,
            declared,
            used,
        } => Diagnostic::new(
            "L0302",
            Severity::Error,
            format!("predicate `{pred}` declared with arity {declared} but used with arity {used}"),
        ),
        Error::UnsafeRule { rule, var } => Diagnostic::new(
            "L0101",
            Severity::Error,
            format!("rule `{rule}` is not range-restricted"),
        )
        .with_note(format!(
            "variable {var} does not occur in any positive body literal"
        )),
        Error::NotStratifiable(p) => Diagnostic::new(
            "L0201",
            Severity::Error,
            format!("program is not stratifiable: `{p}` depends negatively on itself"),
        ),
        Error::BadConstraint { name, msg } => Diagnostic::new(
            "L0103",
            Severity::Error,
            format!("constraint `{name}` cannot be compiled: {msg}"),
        ),
        other => Diagnostic::new("L0001", Severity::Error, other.to_string()),
    };
    d.with_span(span)
}
