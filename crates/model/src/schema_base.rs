//! A typed facade over the deductive database's schema-base extensions.
//!
//! The `MetaModel` bundles the [`Database`], the predicate [`Catalog`], the
//! [`Builtins`] and an [`IdGen`], and offers statically typed accessors so
//! the Analyzer, Runtime System, and evolution operators never build raw
//! tuples by hand. All mutations go through `Database::insert`/`remove` and
//! are therefore journalled when an evolution session is active.

use crate::builtins::Builtins;
use crate::catalog::Catalog;
use crate::ids::{CodeId, DeclId, IdGen, PhRepId, SchemaId, TypeId};
use gom_deductive::{Const, Database, PredId, Result, Symbol, Tuple};

/// A user-written type reference that does not resolve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeRefError {
    /// No type, built-in, or at-notation match.
    Unknown(String),
    /// A bare name that exists in more than one schema.
    Ambiguous(String),
}

impl std::fmt::Display for TypeRefError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TypeRefError::Unknown(r) => write!(f, "unknown type `{r}` (use Name@Schema)"),
            TypeRefError::Ambiguous(r) => write!(f, "ambiguous type `{r}` (use Name@Schema)"),
        }
    }
}

impl std::error::Error for TypeRefError {}

/// The Database Model of the paper's architecture: schema base + object base
/// model, with typed access.
pub struct MetaModel {
    /// The underlying deductive database (rules and constraints are
    /// installed by the consistency-control layer).
    pub db: Database,
    /// Resolved predicate ids.
    pub cat: Catalog,
    /// Built-in sorts.
    pub builtins: Builtins,
    /// Identifier generator.
    pub ids: IdGen,
}

impl MetaModel {
    /// Create a fresh meta model with catalog and built-ins installed.
    pub fn new() -> Result<Self> {
        let mut db = Database::new();
        let cat = Catalog::install(&mut db)?;
        let builtins = Builtins::install(&mut db, &cat)?;
        Ok(MetaModel {
            db,
            cat,
            builtins,
            ids: IdGen::new(),
        })
    }

    // ----- creation -----------------------------------------------------------

    /// Create a schema with a fresh id.
    pub fn new_schema(&mut self, name: &str) -> Result<SchemaId> {
        let sid = self.ids.schema(self.db.interner_mut());
        let n = self.db.constant(name);
        self.db.insert(self.cat.schema, vec![sid.constant(), n])?;
        Ok(sid)
    }

    /// Create a type with a fresh id in `schema`.
    pub fn new_type(&mut self, schema: SchemaId, name: &str) -> Result<TypeId> {
        let tid = self.ids.ty(self.db.interner_mut());
        let n = self.db.constant(name);
        self.db
            .insert(self.cat.ty, vec![tid.constant(), n, schema.constant()])?;
        Ok(tid)
    }

    /// Add an attribute `name : domain` to `ty`.
    pub fn add_attr(&mut self, ty: TypeId, name: &str, domain: TypeId) -> Result<()> {
        let n = self.db.constant(name);
        self.db
            .insert(self.cat.attr, vec![ty.constant(), n, domain.constant()])?;
        Ok(())
    }

    /// Remove the attribute `name` from `ty` (looking up its domain).
    pub fn remove_attr(&mut self, ty: TypeId, name: &str) -> Result<bool> {
        let Some(n) = self.db.sym(name) else {
            return Ok(false);
        };
        let hits: Vec<Tuple> = self
            .db
            .relation(self.cat.attr)
            .select(&[(0, ty.constant()), (1, Const::Sym(n))])
            .cloned()
            .collect();
        let mut removed = false;
        for t in hits {
            removed |= self.db.remove(self.cat.attr, &t)?;
        }
        Ok(removed)
    }

    /// Declare an operation `op : … -> result` on receiver `ty`.
    pub fn new_decl(&mut self, ty: TypeId, op: &str, result: TypeId) -> Result<DeclId> {
        let did = self.ids.decl(self.db.interner_mut());
        let o = self.db.constant(op);
        self.db.insert(
            self.cat.decl,
            vec![did.constant(), ty.constant(), o, result.constant()],
        )?;
        Ok(did)
    }

    /// Declare argument `n` (1-based, left to right) of `decl` to have type
    /// `ty`.
    pub fn add_argdecl(&mut self, decl: DeclId, n: i64, ty: TypeId) -> Result<()> {
        self.db.insert(
            self.cat.argdecl,
            vec![decl.constant(), Const::Int(n), ty.constant()],
        )?;
        Ok(())
    }

    /// Attach an implementation to `decl`.
    pub fn new_code(&mut self, decl: DeclId, text: &str) -> Result<CodeId> {
        let cid = self.ids.code(self.db.interner_mut());
        let t = self.db.constant(text);
        self.db
            .insert(self.cat.code, vec![cid.constant(), t, decl.constant()])?;
        Ok(cid)
    }

    /// Record a direct subtype edge `sub <: sup`.
    pub fn add_subtype(&mut self, sub: TypeId, sup: TypeId) -> Result<()> {
        self.db
            .insert(self.cat.subtyp, vec![sub.constant(), sup.constant()])?;
        Ok(())
    }

    /// Record that `refining` refines `refined`.
    pub fn add_refinement(&mut self, refining: DeclId, refined: DeclId) -> Result<()> {
        self.db.insert(
            self.cat.declref,
            vec![refining.constant(), refined.constant()],
        )?;
        Ok(())
    }

    /// Record that code `c` calls declaration `d`.
    pub fn add_codereq_decl(&mut self, c: CodeId, d: DeclId) -> Result<()> {
        self.db
            .insert(self.cat.codereq_decl, vec![c.constant(), d.constant()])?;
        Ok(())
    }

    /// Record that code `c` accesses attribute `attr` of type `t`.
    pub fn add_codereq_attr(&mut self, c: CodeId, t: TypeId, attr: &str) -> Result<()> {
        let a = self.db.constant(attr);
        self.db
            .insert(self.cat.codereq_attr, vec![c.constant(), t.constant(), a])?;
        Ok(())
    }

    /// Create the physical representation for `ty` (Runtime System's
    /// responsibility — called when the first instance appears).
    pub fn new_phrep(&mut self, ty: TypeId) -> Result<PhRepId> {
        let clid = self.ids.phrep(self.db.interner_mut());
        self.db
            .insert(self.cat.phrep, vec![clid.constant(), ty.constant()])?;
        Ok(clid)
    }

    /// Record a slot of a physical representation.
    pub fn add_slot(&mut self, clid: PhRepId, attr: &str, val: PhRepId) -> Result<()> {
        let a = self.db.constant(attr);
        self.db
            .insert(self.cat.slot, vec![clid.constant(), a, val.constant()])?;
        Ok(())
    }

    /// Remove a slot.
    pub fn remove_slot(&mut self, clid: PhRepId, attr: &str) -> Result<bool> {
        let Some(a) = self.db.sym(attr) else {
            return Ok(false);
        };
        let hits: Vec<Tuple> = self
            .db
            .relation(self.cat.slot)
            .select(&[(0, clid.constant()), (1, Const::Sym(a))])
            .cloned()
            .collect();
        let mut removed = false;
        for t in hits {
            removed |= self.db.remove(self.cat.slot, &t)?;
        }
        Ok(removed)
    }

    /// Share the meta model for publication as a read snapshot: the
    /// database is shared copy-on-write via [`Database::snapshot_clone`]
    /// (definitional + extensional state only — tuple pages and the
    /// string table are `Arc`-bumped, not copied; no caches or indexes),
    /// and the catalog, built-ins, and id generator are carried over so
    /// the clone resolves the same predicates and never re-issues an
    /// already-used id.
    pub fn snapshot_clone(&self) -> MetaModel {
        MetaModel {
            db: self.db.snapshot_clone(),
            cat: self.cat,
            builtins: self.builtins,
            ids: self.ids.clone(),
        }
    }

    // ----- lookup ---------------------------------------------------------------

    fn sym_of(&self, c: Const) -> Symbol {
        c.as_sym().expect("id columns hold symbols")
    }

    /// Schema id by user name.
    pub fn schema_by_name(&self, name: &str) -> Option<SchemaId> {
        let n = self.db.sym(name)?;
        self.db
            .relation(self.cat.schema)
            .select(&[(1, Const::Sym(n))])
            .next()
            .map(|t| SchemaId(self.sym_of(t.get(0))))
    }

    /// Type id by schema and user name (unique per §3.3).
    pub fn type_by_name(&self, schema: SchemaId, name: &str) -> Option<TypeId> {
        let n = self.db.sym(name)?;
        self.db
            .relation(self.cat.ty)
            .select(&[(1, Const::Sym(n)), (2, schema.constant())])
            .next()
            .map(|t| TypeId(self.sym_of(t.get(0))))
    }

    /// Resolve the paper's at-notation `TypeName@SchemaName`.
    pub fn type_at(&self, at: &str) -> Option<TypeId> {
        let (ty, schema) = at.split_once('@')?;
        self.type_by_name(self.schema_by_name(schema)?, ty)
    }

    /// Resolve a user-written type reference: at-notation
    /// `TypeName@SchemaName`, a built-in sort name, or a bare type name
    /// that is unique across all schemas. Returns a typed error for
    /// unknown and ambiguous references so callers (the shell, the
    /// server) can report without panicking.
    pub fn resolve_type_ref(&self, r: &str) -> std::result::Result<TypeId, TypeRefError> {
        if let Some(t) = self.type_at(r) {
            return Ok(t);
        }
        if let Some(t) = self.builtins.by_name(r) {
            return Ok(t);
        }
        // A bare name resolves iff it is unique across schemas.
        let sids: Vec<SchemaId> = self
            .db
            .relation(self.cat.schema)
            .sorted()
            .iter()
            .filter_map(|t| t.get(0).as_sym().map(SchemaId))
            .collect();
        let mut hits = Vec::new();
        for sid in sids {
            if let Some(t) = self.type_by_name(sid, r) {
                hits.push(t);
            }
        }
        match hits.len() {
            1 => Ok(hits[0]),
            0 => Err(TypeRefError::Unknown(r.to_string())),
            _ => Err(TypeRefError::Ambiguous(r.to_string())),
        }
    }

    /// User name of a type.
    pub fn type_name(&self, ty: TypeId) -> Option<String> {
        self.db
            .relation(self.cat.ty)
            .select(&[(0, ty.constant())])
            .next()
            .map(|t| self.db.resolve(self.sym_of(t.get(1))).to_string())
    }

    /// Schema a type belongs to.
    pub fn schema_of(&self, ty: TypeId) -> Option<SchemaId> {
        self.db
            .relation(self.cat.ty)
            .select(&[(0, ty.constant())])
            .next()
            .map(|t| SchemaId(self.sym_of(t.get(2))))
    }

    /// All types of a schema, sorted by name.
    pub fn types_of_schema(&self, schema: SchemaId) -> Vec<TypeId> {
        let mut v: Vec<(String, TypeId)> = self
            .db
            .relation(self.cat.ty)
            .select(&[(2, schema.constant())])
            .map(|t| {
                (
                    self.db.resolve(self.sym_of(t.get(1))).to_string(),
                    TypeId(self.sym_of(t.get(0))),
                )
            })
            .collect();
        v.sort();
        v.into_iter().map(|(_, t)| t).collect()
    }

    /// Directly declared attributes of `ty`, sorted by name.
    pub fn attrs_of(&self, ty: TypeId) -> Vec<(String, TypeId)> {
        let mut v: Vec<(String, TypeId)> = self
            .db
            .relation(self.cat.attr)
            .select(&[(0, ty.constant())])
            .map(|t| {
                (
                    self.db.resolve(self.sym_of(t.get(1))).to_string(),
                    TypeId(self.sym_of(t.get(2))),
                )
            })
            .collect();
        v.sort();
        v
    }

    /// Direct supertypes.
    pub fn supertypes(&self, ty: TypeId) -> Vec<TypeId> {
        let mut v: Vec<TypeId> = self
            .db
            .relation(self.cat.subtyp)
            .select(&[(0, ty.constant())])
            .map(|t| TypeId(self.sym_of(t.get(1))))
            .collect();
        v.sort();
        v
    }

    /// Direct subtypes.
    pub fn subtypes(&self, ty: TypeId) -> Vec<TypeId> {
        let mut v: Vec<TypeId> = self
            .db
            .relation(self.cat.subtyp)
            .select(&[(1, ty.constant())])
            .map(|t| TypeId(self.sym_of(t.get(0))))
            .collect();
        v.sort();
        v
    }

    /// All (strict) supertypes, transitively, in BFS order.
    pub fn supertypes_transitive(&self, ty: TypeId) -> Vec<TypeId> {
        let mut seen: Vec<TypeId> = Vec::new();
        let mut queue: std::collections::VecDeque<TypeId> = self.supertypes(ty).into();
        while let Some(t) = queue.pop_front() {
            if seen.contains(&t) {
                continue;
            }
            seen.push(t);
            queue.extend(self.supertypes(t));
        }
        seen
    }

    /// Attributes including inherited ones (paper's `Attr^i`), sorted by
    /// name; an attribute declared in a subtype shadows nothing — GOM
    /// requires inherited duplicates to agree on the domain, which the
    /// consistency layer enforces.
    pub fn attrs_inherited(&self, ty: TypeId) -> Vec<(String, TypeId)> {
        let mut v = self.attrs_of(ty);
        for sup in self.supertypes_transitive(ty) {
            for (a, d) in self.attrs_of(sup) {
                if !v.iter().any(|(n, dd)| *n == a && *dd == d) {
                    v.push((a, d));
                }
            }
        }
        v.sort();
        v.dedup();
        v
    }

    /// Operation declarations directly on `ty`, sorted by name.
    pub fn decls_of(&self, ty: TypeId) -> Vec<(DeclId, String, TypeId)> {
        let mut v: Vec<(String, DeclId, TypeId)> = self
            .db
            .relation(self.cat.decl)
            .select(&[(1, ty.constant())])
            .map(|t| {
                (
                    self.db.resolve(self.sym_of(t.get(2))).to_string(),
                    DeclId(self.sym_of(t.get(0))),
                    TypeId(self.sym_of(t.get(3))),
                )
            })
            .collect();
        v.sort();
        v.into_iter().map(|(op, d, r)| (d, op, r)).collect()
    }

    /// The receiver, name, and result of a declaration.
    pub fn decl_info(&self, d: DeclId) -> Option<(TypeId, String, TypeId)> {
        self.db
            .relation(self.cat.decl)
            .select(&[(0, d.constant())])
            .next()
            .map(|t| {
                (
                    TypeId(self.sym_of(t.get(1))),
                    self.db.resolve(self.sym_of(t.get(2))).to_string(),
                    TypeId(self.sym_of(t.get(3))),
                )
            })
    }

    /// Argument declarations of `d`, ordered by position.
    pub fn args_of(&self, d: DeclId) -> Vec<(i64, TypeId)> {
        let mut v: Vec<(i64, TypeId)> = self
            .db
            .relation(self.cat.argdecl)
            .select(&[(0, d.constant())])
            .map(|t| {
                (
                    t.get(1).as_int().expect("argno is an int"),
                    TypeId(self.sym_of(t.get(2))),
                )
            })
            .collect();
        v.sort();
        v
    }

    /// The code implementing `d`, if any.
    pub fn code_of(&self, d: DeclId) -> Option<(CodeId, String)> {
        self.db
            .relation(self.cat.code)
            .select(&[(2, d.constant())])
            .next()
            .map(|t| {
                (
                    CodeId(self.sym_of(t.get(0))),
                    self.db.resolve(self.sym_of(t.get(1))).to_string(),
                )
            })
    }

    /// Declarations that `refining` refines (direct).
    pub fn refined_by(&self, refining: DeclId) -> Vec<DeclId> {
        self.db
            .relation(self.cat.declref)
            .select(&[(0, refining.constant())])
            .map(|t| DeclId(self.sym_of(t.get(1))))
            .collect()
    }

    /// Declarations refining `refined` (direct).
    pub fn refinements_of(&self, refined: DeclId) -> Vec<DeclId> {
        self.db
            .relation(self.cat.declref)
            .select(&[(1, refined.constant())])
            .map(|t| DeclId(self.sym_of(t.get(0))))
            .collect()
    }

    /// Physical representation of a type, if instances exist.
    pub fn phrep_of(&self, ty: TypeId) -> Option<PhRepId> {
        if let Some(p) = self.builtins.phrep_of(ty) {
            return Some(p);
        }
        self.db
            .relation(self.cat.phrep)
            .select(&[(1, ty.constant())])
            .next()
            .map(|t| PhRepId(self.sym_of(t.get(0))))
    }

    /// Slots of a physical representation, sorted by attribute name.
    pub fn slots_of(&self, clid: PhRepId) -> Vec<(String, PhRepId)> {
        let mut v: Vec<(String, PhRepId)> = self
            .db
            .relation(self.cat.slot)
            .select(&[(0, clid.constant())])
            .map(|t| {
                (
                    self.db.resolve(self.sym_of(t.get(1))).to_string(),
                    PhRepId(self.sym_of(t.get(2))),
                )
            })
            .collect();
        v.sort();
        v
    }

    // ----- rendering -------------------------------------------------------------

    /// Render the sorted extension of a predicate as aligned text rows —
    /// used to regenerate the paper's Figure 2 style tables.
    pub fn render_relation(&self, pred: PredId) -> String {
        let rows: Vec<Vec<String>> = self
            .db
            .facts_sorted(pred)
            .iter()
            .map(|t: &Tuple| {
                t.iter()
                    .map(|c| {
                        let s = c.display(self.db.interner()).to_string();
                        // Long cells (stored code text) render as `…` like
                        // the paper's Figure 2.
                        if s.len() > 24 || s.contains('\n') {
                            "…".to_string()
                        } else {
                            s
                        }
                    })
                    .collect()
            })
            .collect();
        let name = self.db.pred_name(pred).to_string();
        if rows.is_empty() {
            return format!("{name}: (empty)\n");
        }
        let ncols = rows[0].len();
        let mut widths = vec![0usize; ncols];
        for r in &rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        for (ri, r) in rows.iter().enumerate() {
            if ri == 0 {
                out.push_str(&format!("{name:<16}"));
            } else {
                out.push_str(&" ".repeat(16));
            }
            for (i, c) in r.iter().enumerate() {
                out.push_str(&format!("{c:<width$}  ", width = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Debug for MetaModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetaModel").field("db", &self.db).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MetaModel {
        MetaModel::new().unwrap()
    }

    #[test]
    fn create_and_look_up_types() {
        let mut m = model();
        let s = m.new_schema("CarSchema").unwrap();
        let person = m.new_type(s, "Person").unwrap();
        assert_eq!(m.schema_by_name("CarSchema"), Some(s));
        assert_eq!(m.type_by_name(s, "Person"), Some(person));
        assert_eq!(m.type_at("Person@CarSchema"), Some(person));
        assert_eq!(m.type_name(person).as_deref(), Some("Person"));
        assert_eq!(m.schema_of(person), Some(s));
    }

    #[test]
    fn attrs_and_inheritance() {
        let mut m = model();
        let s = m.new_schema("S").unwrap();
        let loc = m.new_type(s, "Location").unwrap();
        let city = m.new_type(s, "City").unwrap();
        m.add_attr(loc, "longi", m.builtins.float).unwrap();
        m.add_attr(loc, "lati", m.builtins.float).unwrap();
        m.add_attr(city, "name", m.builtins.string).unwrap();
        m.add_subtype(city, loc).unwrap();
        assert_eq!(m.attrs_of(city).len(), 1);
        let inh = m.attrs_inherited(city);
        assert_eq!(inh.len(), 3);
        assert!(inh.iter().any(|(n, _)| n == "longi"));
    }

    #[test]
    fn decls_args_code_roundtrip() {
        let mut m = model();
        let s = m.new_schema("S").unwrap();
        let loc = m.new_type(s, "Location").unwrap();
        let d = m.new_decl(loc, "distance", m.builtins.float).unwrap();
        m.add_argdecl(d, 1, loc).unwrap();
        let c = m.new_code(d, "return 0.0;").unwrap();
        assert_eq!(m.decl_info(d).unwrap().1, "distance");
        assert_eq!(m.args_of(d), vec![(1, loc)]);
        assert_eq!(m.code_of(d).unwrap().0, c);
        assert_eq!(m.decls_of(loc).len(), 1);
    }

    #[test]
    fn transitive_supertypes_bfs() {
        let mut m = model();
        let s = m.new_schema("S").unwrap();
        let a = m.new_type(s, "A").unwrap();
        let b = m.new_type(s, "B").unwrap();
        let c = m.new_type(s, "C").unwrap();
        m.add_subtype(c, b).unwrap();
        m.add_subtype(b, a).unwrap();
        m.add_subtype(a, m.builtins.any).unwrap();
        let sup = m.supertypes_transitive(c);
        assert_eq!(sup, vec![b, a, m.builtins.any]);
    }

    #[test]
    fn remove_attr_by_name() {
        let mut m = model();
        let s = m.new_schema("S").unwrap();
        let t = m.new_type(s, "T").unwrap();
        m.add_attr(t, "x", m.builtins.int).unwrap();
        assert!(m.remove_attr(t, "x").unwrap());
        assert!(!m.remove_attr(t, "x").unwrap());
        assert!(m.attrs_of(t).is_empty());
    }

    #[test]
    fn phrep_and_slots() {
        let mut m = model();
        let s = m.new_schema("S").unwrap();
        let t = m.new_type(s, "T").unwrap();
        let clid = m.new_phrep(t).unwrap();
        m.add_slot(clid, "x", m.builtins.phrep_int).unwrap();
        assert_eq!(m.phrep_of(t), Some(clid));
        assert_eq!(m.slots_of(clid).len(), 1);
        assert!(m.remove_slot(clid, "x").unwrap());
        assert!(m.slots_of(clid).is_empty());
    }

    #[test]
    fn builtin_phrep_is_implicit() {
        let m = model();
        assert_eq!(m.phrep_of(m.builtins.string), Some(m.builtins.phrep_string));
    }

    #[test]
    fn render_relation_is_aligned_and_sorted() {
        let mut m = model();
        let s = m.new_schema("CarSchema").unwrap();
        m.new_type(s, "Person").unwrap();
        let out = m.render_relation(m.cat.schema);
        assert!(out.contains("Schema"), "{out}");
        assert!(out.contains("CarSchema"), "{out}");
    }
}
