//! # gom-model — the GOM meta-model
//!
//! The *Database Model* of the paper's generic architecture (§2.2): typed
//! identifiers, the base-predicate catalog for the Schema Base (§3.2) and
//! the Object Base Model (§3.4), built-in sorts, and a statically typed
//! facade ([`MetaModel`]) over the deductive database's extensions.
//!
//! The consistency definition itself (rules + constraints) lives in
//! `gom-core`; this crate only knows the *vocabulary*.

#![warn(missing_docs)]

pub mod builtins;
pub mod catalog;
pub mod ids;
pub mod schema_base;

pub use builtins::Builtins;
pub use catalog::{Catalog, SCHEMA_BASE_DECLS};
pub use ids::{CodeId, DeclId, IdGen, Oid, PhRepId, SchemaId, TypeId};
pub use schema_base::{MetaModel, TypeRefError};
