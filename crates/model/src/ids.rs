//! Typed identifiers for schema-base entities.
//!
//! Every entity of the meta level — schemas, types, declarations, code
//! fragments, physical representations, objects — is identified by an
//! interned symbol (`sid1`, `tid4`, `did2`, `cid3`, `clid4`, `oid17`, …).
//! The newtypes below keep the kinds apart at the Rust type level while the
//! deductive database sees plain symbols.

use gom_deductive::{Const, Interner, Symbol};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
        pub struct $name(pub Symbol);

        impl $name {
            /// The underlying interned symbol.
            #[inline]
            pub fn sym(self) -> Symbol {
                self.0
            }

            /// As a deductive-database constant.
            #[inline]
            pub fn constant(self) -> Const {
                Const::Sym(self.0)
            }

            /// Resolve against an interner.
            pub fn resolve(self, interner: &Interner) -> &str {
                interner.resolve(self.0)
            }
        }

        impl From<$name> for Const {
            fn from(id: $name) -> Const {
                Const::Sym(id.0)
            }
        }
    };
}

define_id! {
    /// Identifier of a schema (`sid…`).
    SchemaId
}
define_id! {
    /// Identifier of a type (`tid…`).
    TypeId
}
define_id! {
    /// Identifier of an operation declaration (`did…`).
    DeclId
}
define_id! {
    /// Identifier of a code fragment (`cid…`).
    CodeId
}
define_id! {
    /// Identifier of a physical representation (`clid…`).
    PhRepId
}
define_id! {
    /// Identifier of an object instance (`oid…`).
    Oid
}

/// Generates fresh, readable identifiers (`sid1`, `tid1`, …) matching the
/// paper's notation.
#[derive(Clone, Default, Debug)]
pub struct IdGen {
    sid: u32,
    tid: u32,
    did: u32,
    cid: u32,
    clid: u32,
    oid: u32,
}

impl IdGen {
    /// New generator starting at 1 for every kind.
    pub fn new() -> Self {
        Self::default()
    }

    fn next(counter: &mut u32, prefix: &str, interner: &mut Interner) -> Symbol {
        loop {
            *counter += 1;
            let name = format!("{prefix}{counter}");
            // Skip names that were interned as ids before (e.g. after
            // loading a dump); collisions with non-id symbols are harmless
            // only if the id is genuinely unused, so always move forward.
            if interner.get(&name).is_none() {
                return interner.intern(&name);
            }
        }
    }

    /// Fresh schema id.
    pub fn schema(&mut self, interner: &mut Interner) -> SchemaId {
        SchemaId(Self::next(&mut self.sid, "sid", interner))
    }

    /// Fresh type id.
    pub fn ty(&mut self, interner: &mut Interner) -> TypeId {
        TypeId(Self::next(&mut self.tid, "tid", interner))
    }

    /// Fresh declaration id.
    pub fn decl(&mut self, interner: &mut Interner) -> DeclId {
        DeclId(Self::next(&mut self.did, "did", interner))
    }

    /// Fresh code id.
    pub fn code(&mut self, interner: &mut Interner) -> CodeId {
        CodeId(Self::next(&mut self.cid, "cid", interner))
    }

    /// Fresh physical-representation id.
    pub fn phrep(&mut self, interner: &mut Interner) -> PhRepId {
        PhRepId(Self::next(&mut self.clid, "clid", interner))
    }

    /// Fresh object id.
    pub fn oid(&mut self, interner: &mut Interner) -> Oid {
        Oid(Self::next(&mut self.oid, "oid", interner))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_readable_and_sequential() {
        let mut interner = Interner::new();
        let mut gen = IdGen::new();
        let s1 = gen.schema(&mut interner);
        let s2 = gen.schema(&mut interner);
        assert_eq!(s1.resolve(&interner), "sid1");
        assert_eq!(s2.resolve(&interner), "sid2");
        let t1 = gen.ty(&mut interner);
        assert_eq!(t1.resolve(&interner), "tid1");
    }

    #[test]
    fn idgen_skips_taken_names() {
        let mut interner = Interner::new();
        interner.intern("tid1");
        let mut gen = IdGen::new();
        let t = gen.ty(&mut interner);
        assert_eq!(t.resolve(&interner), "tid2");
    }

    #[test]
    fn id_converts_to_const() {
        let mut interner = Interner::new();
        let mut gen = IdGen::new();
        let t = gen.ty(&mut interner);
        let c: Const = t.into();
        assert_eq!(c, Const::Sym(t.sym()));
    }
}
