//! Built-in sorts.
//!
//! The paper assumes "the existence of types for the built-in sorts — like
//! integer, float, string and so on" and "the implicit existence of physical
//! representations of built-in sorts" (§3.2, §3.4). We make both explicit:
//! a distinguished `__builtin` schema holds the sort types, each a subtype
//! of the unique root `ANY` (required by GOM's root constraint), each with a
//! physical representation.

use crate::catalog::Catalog;
use crate::ids::{PhRepId, SchemaId, TypeId};
use gom_deductive::{Const, Database, Result};

/// Handles to the built-in sorts.
#[derive(Clone, Copy, Debug)]
pub struct Builtins {
    /// The `__builtin` schema containing the sorts.
    pub schema: SchemaId,
    /// The unique root type `ANY` (paper §3.3).
    pub any: TypeId,
    /// `int`
    pub int: TypeId,
    /// `float`
    pub float: TypeId,
    /// `string`
    pub string: TypeId,
    /// `bool`
    pub bool_: TypeId,
    /// `date` (needed by the §4.1 `birthday` example)
    pub date: TypeId,
    /// `void` (result type of operations without one)
    pub void: TypeId,
    /// Physical representations, parallel to the sort types.
    pub phrep_int: PhRepId,
    /// Physical representation of `float`.
    pub phrep_float: PhRepId,
    /// Physical representation of `string`.
    pub phrep_string: PhRepId,
    /// Physical representation of `bool`.
    pub phrep_bool: PhRepId,
    /// Physical representation of `date`.
    pub phrep_date: PhRepId,
}

/// The names of the built-in sorts (excluding `ANY` and `void`).
pub const SORT_NAMES: [&str; 5] = ["int", "float", "string", "bool", "date"];

impl Builtins {
    /// Insert the built-in sorts into the schema base. Idempotent.
    pub fn install(db: &mut Database, cat: &Catalog) -> Result<Builtins> {
        let schema = SchemaId(db.intern("sid_builtin"));
        let builtin_name = db.constant("__builtin");
        db.insert(cat.schema, vec![schema.constant(), builtin_name])?;

        let any = TypeId(db.intern("tid_any"));
        let any_name = db.constant("ANY");
        db.insert(cat.ty, vec![any.constant(), any_name, schema.constant()])?;

        let mk = |db: &mut Database, name: &str| -> Result<(TypeId, PhRepId)> {
            let tid = TypeId(db.intern(&format!("tid_{name}")));
            let clid = PhRepId(db.intern(&format!("clid_{name}")));
            let n = db.constant(name);
            db.insert(cat.ty, vec![tid.constant(), n, schema.constant()])?;
            db.insert(cat.subtyp, vec![tid.constant(), any.constant()])?;
            db.insert(cat.phrep, vec![clid.constant(), tid.constant()])?;
            Ok((tid, clid))
        };
        let (int, phrep_int) = mk(db, "int")?;
        let (float, phrep_float) = mk(db, "float")?;
        let (string, phrep_string) = mk(db, "string")?;
        let (bool_, phrep_bool) = mk(db, "bool")?;
        let (date, phrep_date) = mk(db, "date")?;

        // `void` has no instances, hence no physical representation.
        let void = TypeId(db.intern("tid_void"));
        let void_name = db.constant("void");
        db.insert(cat.ty, vec![void.constant(), void_name, schema.constant()])?;
        db.insert(cat.subtyp, vec![void.constant(), any.constant()])?;

        Ok(Builtins {
            schema,
            any,
            int,
            float,
            string,
            bool_,
            date,
            void,
            phrep_int,
            phrep_float,
            phrep_string,
            phrep_bool,
            phrep_date,
        })
    }

    /// Look up a built-in sort by its surface name.
    pub fn by_name(&self, name: &str) -> Option<TypeId> {
        Some(match name {
            "int" | "integer" => self.int,
            "float" => self.float,
            "string" => self.string,
            "bool" | "boolean" => self.bool_,
            "date" => self.date,
            "void" => self.void,
            "ANY" => self.any,
            _ => return None,
        })
    }

    /// Is `t` one of the built-in sorts (including `ANY` and `void`)?
    pub fn is_builtin(&self, t: TypeId) -> bool {
        [
            self.any,
            self.int,
            self.float,
            self.string,
            self.bool_,
            self.date,
            self.void,
        ]
        .contains(&t)
    }

    /// Physical representation of a built-in sort, if it has one.
    pub fn phrep_of(&self, t: TypeId) -> Option<PhRepId> {
        if t == self.int {
            Some(self.phrep_int)
        } else if t == self.float {
            Some(self.phrep_float)
        } else if t == self.string {
            Some(self.phrep_string)
        } else if t == self.bool_ {
            Some(self.phrep_bool)
        } else if t == self.date {
            Some(self.phrep_date)
        } else {
            None
        }
    }

    /// The `ANY` type id as a constant (for constraints referring to the
    /// root).
    pub fn any_const(&self) -> Const {
        self.any.constant()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_creates_sorts_under_any() {
        let mut db = Database::new();
        let cat = Catalog::install(&mut db).unwrap();
        let b = Builtins::install(&mut db, &cat).unwrap();
        assert_eq!(db.relation(cat.ty).len(), 7); // ANY + 5 sorts + void
        assert_eq!(db.relation(cat.subtyp).len(), 6); // all but ANY
        assert_eq!(db.relation(cat.phrep).len(), 5); // void and ANY have none
        assert!(b.is_builtin(b.string));
        assert_eq!(b.by_name("integer"), Some(b.int));
        assert_eq!(b.by_name("Person"), None);
        assert_eq!(b.phrep_of(b.void), None);
        assert_eq!(b.phrep_of(b.int), Some(b.phrep_int));
    }

    #[test]
    fn install_is_idempotent() {
        let mut db = Database::new();
        let cat = Catalog::install(&mut db).unwrap();
        Builtins::install(&mut db, &cat).unwrap();
        let n = db.fact_count();
        Builtins::install(&mut db, &cat).unwrap();
        assert_eq!(db.fact_count(), n);
    }
}
