//! The base-predicate catalog of the Database Model (paper §3.2, §3.4).
//!
//! The *Schema Base* half holds abstract representations of the sources
//! (`Schema`, `Type`, `Attr`, `Decl`, `ArgDecl`, `Code`, the `SubTypRel` and
//! `DeclRefinement` relationships, and the code-dependency predicates
//! `CodeReqDecl`/`CodeReqAttr`). The *Object Base Model* half (`PhRep`,
//! `Slot`) is the set of assertions the Runtime System maintains about the
//! physical representation of objects.

use gom_deductive::{Database, PredId, Result};

/// Declarations of the core base predicates, in the paper's order.
/// `!` marks key columns.
pub const SCHEMA_BASE_DECLS: &str = "\
% ----- Schema Base (paper §3.2) --------------------------------------------
base Schema(sid!, name).
base Type(tid!, name, sid).
base Attr(tid!, attr!, domain).
base Decl(did!, receiver, op, result).
base ArgDecl(did!, argno!, argtype).
base Code(cid!, text, did).
base SubTypRel(sub, super).
base DeclRefinement(refining, refined).
base CodeReqDecl(cid, did).
base CodeReqAttr(cid, tid, attr).
% ----- Object Base Model (paper §3.4) ---------------------------------------
base PhRep(clid!, tid).
base Slot(clid!, attr!, valclid).
";

/// Resolved predicate ids for the core catalog.
#[derive(Clone, Copy, Debug)]
pub struct Catalog {
    /// `Schema(SchemaId, UserName)`
    pub schema: PredId,
    /// `Type(TypeId, TypeName, SchemaId)`
    pub ty: PredId,
    /// `Attr(TypeId, AttrName, TypeId)` — type, attribute name, domain
    pub attr: PredId,
    /// `Decl(DeclId, TypeId, OpName, TypeId)` — id, receiver, name, result
    pub decl: PredId,
    /// `ArgDecl(DeclId, ArgNo, TypeId)`
    pub argdecl: PredId,
    /// `Code(CodeId, Code, DeclId)`
    pub code: PredId,
    /// `SubTypRel(TypeId, TypeId)` — sub, super (direct edges)
    pub subtyp: PredId,
    /// `DeclRefinement(DeclId, DeclId)` — refining, refined
    pub declref: PredId,
    /// `CodeReqDecl(CodeId, DeclId)` — operations called by a code fragment
    pub codereq_decl: PredId,
    /// `CodeReqAttr(CodeId, TypeId, AttrName)` — attributes accessed
    pub codereq_attr: PredId,
    /// `PhRep(PhRepId, TypeId)`
    pub phrep: PredId,
    /// `Slot(PhRepId, AttrName, PhRepId)`
    pub slot: PredId,
}

impl Catalog {
    /// Declare the core catalog in `db` (idempotent) and resolve ids.
    pub fn install(db: &mut Database) -> Result<Catalog> {
        db.load(SCHEMA_BASE_DECLS)?;
        Ok(Catalog {
            schema: db.pred_id_req("Schema")?,
            ty: db.pred_id_req("Type")?,
            attr: db.pred_id_req("Attr")?,
            decl: db.pred_id_req("Decl")?,
            argdecl: db.pred_id_req("ArgDecl")?,
            code: db.pred_id_req("Code")?,
            subtyp: db.pred_id_req("SubTypRel")?,
            declref: db.pred_id_req("DeclRefinement")?,
            codereq_decl: db.pred_id_req("CodeReqDecl")?,
            codereq_attr: db.pred_id_req("CodeReqAttr")?,
            phrep: db.pred_id_req("PhRep")?,
            slot: db.pred_id_req("Slot")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_declares_all_predicates_with_keys() {
        let mut db = Database::new();
        let cat = Catalog::install(&mut db).unwrap();
        assert_eq!(db.pred_decl(cat.schema).arity, 2);
        assert_eq!(db.pred_decl(cat.ty).arity, 3);
        assert_eq!(
            db.pred_decl(cat.attr).key.as_deref(),
            Some(&[0usize, 1][..])
        );
        assert_eq!(db.pred_decl(cat.decl).key.as_deref(), Some(&[0usize][..]));
        assert_eq!(
            db.pred_decl(cat.argdecl).key.as_deref(),
            Some(&[0usize, 1][..])
        );
        assert_eq!(
            db.pred_decl(cat.slot).key.as_deref(),
            Some(&[0usize, 1][..])
        );
        assert!(db.pred_decl(cat.subtyp).key.is_none());
    }

    #[test]
    fn install_is_idempotent() {
        let mut db = Database::new();
        let a = Catalog::install(&mut db).unwrap();
        let b = Catalog::install(&mut db).unwrap();
        assert_eq!(a.ty, b.ty);
    }
}
