//! Journal records and their wire format.
//!
//! Every record is framed as
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [payload: len bytes]
//! ```
//!
//! where `crc` is the CRC-32 of the payload. The payload starts with a
//! one-byte tag. Identifiers are stored as UTF-8 strings — never as
//! interner indexes — so a journal replays into a *fresh* process whose
//! interner assigns different symbol numbers.
//!
//! Record sequence grammar (enforced by the recovery scan):
//!
//! ```text
//! journal  := MAGIC (snapshot | session)*
//! session  := Bes Op* (EesCommit | EesRollback)
//! snapshot := Snapshot            -- only outside a session
//! ```

use crate::error::{StoreError, StoreResult};

/// File magic: identifies a gom evolution-session journal, version 1.
pub const MAGIC: &[u8; 8] = b"GOMJRNL1";

/// Upper bound on a single record payload (defensive: a corrupt length
/// field must not trigger a huge allocation).
pub const MAX_RECORD: u32 = 1 << 26; // 64 MiB
/// Upper bound on one string inside a record.
const MAX_STR: u32 = 1 << 20; // 1 MiB

/// A constant as stored in the journal: portable across processes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JConst {
    /// A 64-bit integer.
    Int(i64),
    /// A symbol, stored by its string.
    Sym(String),
}

/// One base-predicate update, addressed by predicate *name*.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JOp {
    /// `true` = insert (`+P(t)`), `false` = delete (`−P(t)`).
    pub insert: bool,
    /// Predicate name.
    pub pred: String,
    /// The fact tuple.
    pub tuple: Vec<JConst>,
}

/// The full extension of one base predicate inside a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotPred {
    /// Predicate name.
    pub pred: String,
    /// Declared arity (kept even when `rows` is empty).
    pub arity: u16,
    /// All stored facts, in deterministic (sorted) order.
    pub rows: Vec<Vec<JConst>>,
}

/// One journal record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Record {
    /// Begin evolution session (the paper's BES).
    Bes,
    /// One primitive change of the session's delta.
    Op(JOp),
    /// End evolution session, committed (successful EES).
    EesCommit,
    /// End evolution session, rolled back (undo repair chosen).
    EesRollback,
    /// A full EDB snapshot; recovery replays from the latest one.
    Snapshot(Vec<SnapshotPred>),
}

const TAG_BES: u8 = 1;
const TAG_OP: u8 = 2;
const TAG_EES_COMMIT: u8 = 3;
const TAG_EES_ROLLBACK: u8 = 4;
const TAG_SNAPSHOT: u8 = 5;

const CONST_INT: u8 = 0;
const CONST_SYM: u8 = 1;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, n: u16) {
    out.extend_from_slice(&n.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, n: u32) {
    out.extend_from_slice(&n.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_const(out: &mut Vec<u8>, c: &JConst) {
    match c {
        JConst::Int(n) => {
            out.push(CONST_INT);
            out.extend_from_slice(&n.to_le_bytes());
        }
        JConst::Sym(s) => {
            out.push(CONST_SYM);
            put_str(out, s);
        }
    }
}

impl Record {
    /// Encode the payload (without framing).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Record::Bes => out.push(TAG_BES),
            Record::EesCommit => out.push(TAG_EES_COMMIT),
            Record::EesRollback => out.push(TAG_EES_ROLLBACK),
            Record::Op(op) => {
                out.push(TAG_OP);
                out.push(u8::from(op.insert));
                put_str(&mut out, &op.pred);
                put_u16(&mut out, op.tuple.len() as u16);
                for c in &op.tuple {
                    put_const(&mut out, c);
                }
            }
            Record::Snapshot(preds) => {
                out.push(TAG_SNAPSHOT);
                put_u32(&mut out, preds.len() as u32);
                for sp in preds {
                    put_str(&mut out, &sp.pred);
                    put_u16(&mut out, sp.arity);
                    put_u32(&mut out, sp.rows.len() as u32);
                    for row in &sp.rows {
                        for c in row {
                            put_const(&mut out, c);
                        }
                    }
                }
            }
        }
        out
    }

    /// Encode the record with its `[len][crc]` frame.
    pub fn encode_framed(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(payload.len() + 8);
        put_u32(&mut out, payload.len() as u32);
        put_u32(&mut out, crate::crc32::crc32(&payload));
        out.extend_from_slice(&payload);
        out
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Cursor over a payload with bounds-checked reads.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> StoreResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(StoreError::Corrupt("record payload truncated"))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> StoreResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> StoreResult<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> StoreResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn i64(&mut self) -> StoreResult<i64> {
        let b = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(b);
        Ok(i64::from_le_bytes(buf))
    }

    fn string(&mut self) -> StoreResult<String> {
        let len = self.u32()?;
        if len > MAX_STR {
            return Err(StoreError::Corrupt("string length out of bounds"));
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::Corrupt("string is not valid UTF-8"))
    }

    fn constant(&mut self) -> StoreResult<JConst> {
        match self.u8()? {
            CONST_INT => Ok(JConst::Int(self.i64()?)),
            CONST_SYM => Ok(JConst::Sym(self.string()?)),
            _ => Err(StoreError::Corrupt("unknown constant tag")),
        }
    }

    fn done(&self) -> StoreResult<()> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(StoreError::Corrupt("trailing bytes in record payload"))
        }
    }
}

impl Record {
    /// Decode a payload (framing already stripped and CRC verified).
    pub fn decode_payload(payload: &[u8]) -> StoreResult<Record> {
        let mut r = Reader::new(payload);
        let rec = match r.u8()? {
            TAG_BES => Record::Bes,
            TAG_EES_COMMIT => Record::EesCommit,
            TAG_EES_ROLLBACK => Record::EesRollback,
            TAG_OP => {
                let insert = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(StoreError::Corrupt("bad op direction")),
                };
                let pred = r.string()?;
                let arity = r.u16()? as usize;
                let mut tuple = Vec::with_capacity(arity.min(64));
                for _ in 0..arity {
                    tuple.push(r.constant()?);
                }
                Record::Op(JOp {
                    insert,
                    pred,
                    tuple,
                })
            }
            TAG_SNAPSHOT => {
                let npreds = r.u32()? as usize;
                let mut preds = Vec::with_capacity(npreds.min(1024));
                for _ in 0..npreds {
                    let pred = r.string()?;
                    let arity = r.u16()?;
                    let nrows = r.u32()? as usize;
                    let mut rows = Vec::with_capacity(nrows.min(1 << 16));
                    for _ in 0..nrows {
                        let mut row = Vec::with_capacity(arity as usize);
                        for _ in 0..arity {
                            row.push(r.constant()?);
                        }
                        rows.push(row);
                    }
                    preds.push(SnapshotPred { pred, arity, rows });
                }
                Record::Snapshot(preds)
            }
            _ => return Err(StoreError::Corrupt("unknown record tag")),
        };
        r.done()?;
        Ok(rec)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn roundtrip(rec: Record) {
        let payload = rec.encode_payload();
        assert_eq!(Record::decode_payload(&payload).unwrap(), rec);
    }

    #[test]
    fn all_record_kinds_roundtrip() {
        roundtrip(Record::Bes);
        roundtrip(Record::EesCommit);
        roundtrip(Record::EesRollback);
        roundtrip(Record::Op(JOp {
            insert: true,
            pred: "Attr".into(),
            tuple: vec![
                JConst::Sym("tid4".into()),
                JConst::Sym("fuelType".into()),
                JConst::Int(-7),
            ],
        }));
        roundtrip(Record::Snapshot(vec![
            SnapshotPred {
                pred: "Type".into(),
                arity: 3,
                rows: vec![
                    vec![
                        JConst::Sym("tid1".into()),
                        JConst::Sym("Car".into()),
                        JConst::Sym("sid1".into()),
                    ],
                    vec![
                        JConst::Sym("tid2".into()),
                        JConst::Sym("Person".into()),
                        JConst::Sym("sid1".into()),
                    ],
                ],
            },
            SnapshotPred {
                pred: "Empty".into(),
                arity: 2,
                rows: vec![],
            },
        ]));
    }

    #[test]
    fn unicode_and_empty_symbols_roundtrip() {
        roundtrip(Record::Op(JOp {
            insert: false,
            pred: "P".into(),
            tuple: vec![JConst::Sym("λ→'quote'".into()), JConst::Sym(String::new())],
        }));
    }

    #[test]
    fn truncated_payload_is_an_error_not_a_panic() {
        let full = Record::Op(JOp {
            insert: true,
            pred: "Attr".into(),
            tuple: vec![JConst::Int(1)],
        })
        .encode_payload();
        for cut in 0..full.len() {
            assert!(Record::decode_payload(&full[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn garbage_tags_rejected() {
        assert!(Record::decode_payload(&[0xFF]).is_err());
        assert!(Record::decode_payload(&[]).is_err());
        // Op with bad direction byte.
        assert!(Record::decode_payload(&[TAG_OP, 9]).is_err());
    }

    #[test]
    fn framed_record_has_len_and_crc() {
        let framed = Record::Bes.encode_framed();
        assert_eq!(framed.len(), 8 + 1);
        let len = u32::from_le_bytes([framed[0], framed[1], framed[2], framed[3]]);
        assert_eq!(len, 1);
        let crc = u32::from_le_bytes([framed[4], framed[5], framed[6], framed[7]]);
        assert_eq!(crc, crate::crc32::crc32(&framed[8..]));
    }
}
