//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), table-driven.
//!
//! Implemented locally because the crate set for this project is
//! deliberately minimal; the algorithm is ~25 lines and the table is built
//! at compile time.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `bytes` (same parameters as zlib / PNG / Ethernet).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flip() {
        let a = crc32(b"evolution session");
        let mut data = b"evolution session".to_vec();
        data[3] ^= 0x40;
        assert_ne!(a, crc32(&data));
    }
}
