//! Error type for the journal store.

use std::fmt;

/// Errors raised by the journal store.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O error from the backing file (or a failpoint-injected crash).
    Io(std::io::Error),
    /// A structurally invalid byte sequence was found where recovery cannot
    /// simply truncate (e.g. a record decodes but violates the session
    /// grammar in the *committed* prefix).
    Corrupt(&'static str),
    /// The file does not start with the journal magic.
    BadMagic,
    /// A record was appended out of protocol (e.g. `Snapshot` mid-session).
    Protocol(&'static str),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "journal I/O error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "journal corrupt: {msg}"),
            StoreError::BadMagic => write!(f, "not a gom journal (bad magic)"),
            StoreError::Protocol(msg) => write!(f, "journal protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Result alias.
pub type StoreResult<T> = std::result::Result<T, StoreError>;
