//! The append-only session journal: write path, recovery scan, backends.

use crate::crc32::crc32;
use crate::error::{StoreError, StoreResult};
use crate::record::{JOp, Record, SnapshotPred, MAGIC, MAX_RECORD};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};

/// When the journal issues an `fsync` to its backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Never sync explicitly (fastest; durability left to the OS).
    Never,
    /// Sync at every session boundary — commit, rollback, snapshot. The
    /// default: a reported commit survives a crash.
    OnCommit,
    /// Sync after every record (slowest, smallest loss window).
    Always,
}

impl SyncPolicy {
    /// Parse `never|commit|always` (CLI flag form).
    pub fn parse(s: &str) -> Option<SyncPolicy> {
        match s {
            "never" => Some(SyncPolicy::Never),
            "commit" => Some(SyncPolicy::OnCommit),
            "always" => Some(SyncPolicy::Always),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Backends
// ---------------------------------------------------------------------------

/// Byte-level storage behind a [`Journal`]: an append-only stream with
/// truncate-and-reread support for recovery. Implemented by real files,
/// in-memory buffers (tests), and the fault-injection wrapper.
pub trait Backend: Send {
    /// Append bytes at the end of the stream.
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()>;
    /// Flush and fsync (durability barrier).
    fn sync(&mut self) -> std::io::Result<()>;
    /// Truncate the stream to `len` bytes.
    fn truncate(&mut self, len: u64) -> std::io::Result<()>;
    /// Read the entire current contents.
    fn read_all(&mut self) -> std::io::Result<Vec<u8>>;
    /// Replace the entire stream with `bytes`, as atomically as the medium
    /// allows, and leave the result durable. File backends write a fresh
    /// file, fsync it, and rename it over the old journal; a crash at any
    /// point leaves either the complete old stream or the complete new one,
    /// never a mixture. The default (for simple media where replacement is
    /// inherently atomic or atomicity is untestable) is
    /// truncate-append-sync.
    fn rotate(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.truncate(0)?;
        self.append(bytes)?;
        self.sync()
    }
}

/// A journal stored in a real file.
pub struct FileBackend {
    file: std::fs::File,
    path: std::path::PathBuf,
}

impl FileBackend {
    /// Open (or create) the journal file at `path`. A stale `<path>.tmp`
    /// left behind by a crash mid-rotation (before the atomic rename) is
    /// removed: the old journal is still complete, so the half-written
    /// replacement is garbage.
    pub fn open(path: &Path) -> std::io::Result<FileBackend> {
        let tmp = Self::tmp_path(path);
        if tmp.exists() {
            std::fs::remove_file(&tmp)?;
        }
        let file = std::fs::OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(path)?;
        Ok(FileBackend {
            file,
            path: path.to_path_buf(),
        })
    }

    fn tmp_path(path: &Path) -> std::path::PathBuf {
        let mut os = path.as_os_str().to_os_string();
        os.push(".tmp");
        std::path::PathBuf::from(os)
    }

    /// Fsync the journal's parent directory so a just-renamed file is
    /// durable under the old name's entry. Best effort: some filesystems
    /// refuse to fsync directories, which is not worth failing a rotation
    /// over.
    fn sync_dir(&self) {
        if let Some(parent) = self.path.parent() {
            let dir = if parent.as_os_str().is_empty() {
                Path::new(".")
            } else {
                parent
            };
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
}

impl Backend for FileBackend {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.file.write_all(bytes)
    }

    fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()
    }

    fn truncate(&mut self, len: u64) -> std::io::Result<()> {
        self.file.set_len(len)?;
        self.file.seek(SeekFrom::End(0)).map(|_| ())
    }

    fn read_all(&mut self) -> std::io::Result<Vec<u8>> {
        let mut buf = Vec::new();
        self.file.seek(SeekFrom::Start(0))?;
        self.file.read_to_end(&mut buf)?;
        self.file.seek(SeekFrom::End(0))?;
        Ok(buf)
    }

    /// Crash-safe file rotation: write the replacement to `<path>.tmp`,
    /// fsync it, rename it over the journal (atomic on POSIX), fsync the
    /// directory, and switch the open handle to the new file. A crash
    /// before the rename leaves the old journal untouched (the stale tmp
    /// is swept on the next open); a crash after it leaves the complete
    /// new journal.
    fn rotate(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        let tmp = Self::tmp_path(&self.path);
        let mut f = std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
        std::fs::rename(&tmp, &self.path)?;
        self.sync_dir();
        self.file = std::fs::OpenOptions::new()
            .read(true)
            .append(true)
            .open(&self.path)?;
        self.file.seek(SeekFrom::End(0)).map(|_| ())
    }
}

/// An in-memory journal whose byte buffer is shared: clones observe (and
/// survive) each other, which is what the fault-injection harness uses to
/// "re-mount the disk" after a simulated crash.
#[derive(Clone, Default)]
pub struct MemBackend {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl MemBackend {
    /// Fresh empty in-memory backend.
    pub fn new() -> MemBackend {
        MemBackend::default()
    }

    /// A snapshot of the current bytes.
    pub fn bytes(&self) -> Vec<u8> {
        self.buf
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Replace the contents wholesale (harness: mount a truncated/corrupted
    /// image).
    pub fn set_bytes(&self, bytes: Vec<u8>) {
        *self.buf.lock().unwrap_or_else(PoisonError::into_inner) = bytes;
    }
}

impl Backend for MemBackend {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.buf
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> std::io::Result<()> {
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> std::io::Result<()> {
        self.buf
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .truncate(len as usize);
        Ok(())
    }

    fn read_all(&mut self) -> std::io::Result<Vec<u8>> {
        Ok(self.bytes())
    }
}

// ---------------------------------------------------------------------------
// Recovery scan
// ---------------------------------------------------------------------------

/// What recovery reconstructed from a journal image: the latest snapshot,
/// the ops of every session committed after it, and how much of the tail
/// had to be discarded.
#[derive(Debug, Default)]
pub struct Replay {
    /// The latest durable snapshot, if any.
    pub snapshot: Option<Vec<SnapshotPred>>,
    /// Ops of all sessions committed after that snapshot, in order.
    pub ops: Vec<JOp>,
    /// Committed sessions replayed (after the snapshot).
    pub sessions_replayed: usize,
    /// Rolled-back sessions skipped.
    pub sessions_rolled_back: usize,
    /// Whether an in-flight session (trailing `Bes` without `Ees`) was
    /// discarded.
    pub discarded_in_flight: bool,
    /// Bytes truncated off the tail (torn records + in-flight session).
    pub truncated_bytes: u64,
    /// Why the scan stopped early, when it did (torn tail, CRC mismatch…).
    pub torn: Option<String>,
    /// Byte length of the valid, committed prefix (including magic).
    pub durable_len: u64,
}

/// Scan a journal image, tolerating any torn or corrupt tail: the scan
/// stops at the first invalid byte and the durable prefix ends at the last
/// *session boundary* before it. Never panics, whatever the input.
pub fn scan(bytes: &[u8]) -> StoreResult<Replay> {
    if bytes.is_empty() {
        // A journal that was never written: treat as fresh.
        return Ok(Replay {
            durable_len: 0,
            ..Replay::default()
        });
    }
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let mut replay = Replay::default();
    let mut off = MAGIC.len();
    let mut boundary = off; // end of the last committed session boundary
    let mut in_session = false;
    let mut pending: Vec<JOp> = Vec::new();
    let mut torn: Option<String> = None;

    loop {
        if off == bytes.len() {
            break;
        }
        if off + 8 > bytes.len() {
            torn = Some("torn record header at end of journal".into());
            break;
        }
        let len = u32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]]);
        let crc = u32::from_le_bytes([
            bytes[off + 4],
            bytes[off + 5],
            bytes[off + 6],
            bytes[off + 7],
        ]);
        if len > MAX_RECORD {
            torn = Some("record length out of bounds".into());
            break;
        }
        let start = off + 8;
        let end = start + len as usize;
        if end > bytes.len() {
            torn = Some("torn record payload at end of journal".into());
            break;
        }
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            torn = Some("CRC mismatch — corrupted record".into());
            break;
        }
        let record = match Record::decode_payload(payload) {
            Ok(r) => r,
            Err(e) => {
                torn = Some(format!("undecodable record: {e}"));
                break;
            }
        };
        // Session grammar. A violation in the *stored* stream means the
        // writer crashed in a way framing cannot express (or the file was
        // tampered with); treat everything from here on as invalid tail.
        match record {
            Record::Bes => {
                if in_session {
                    torn = Some("BES inside an open session".into());
                    break;
                }
                in_session = true;
                pending.clear();
            }
            Record::Op(op) => {
                if !in_session {
                    torn = Some("op outside a session".into());
                    break;
                }
                pending.push(op);
            }
            Record::EesCommit => {
                if !in_session {
                    torn = Some("EES(commit) without BES".into());
                    break;
                }
                replay.ops.append(&mut pending);
                replay.sessions_replayed += 1;
                in_session = false;
                boundary = end;
            }
            Record::EesRollback => {
                if !in_session {
                    torn = Some("EES(rollback) without BES".into());
                    break;
                }
                pending.clear();
                replay.sessions_rolled_back += 1;
                in_session = false;
                boundary = end;
            }
            Record::Snapshot(preds) => {
                if in_session {
                    torn = Some("snapshot inside an open session".into());
                    break;
                }
                replay.snapshot = Some(preds);
                replay.ops.clear();
                replay.sessions_replayed = 0;
                boundary = end;
            }
        }
        off = end;
    }

    replay.discarded_in_flight = in_session;
    replay.torn = torn;
    replay.durable_len = boundary as u64;
    replay.truncated_bytes = bytes.len() as u64 - boundary as u64;
    Ok(replay)
}

// ---------------------------------------------------------------------------
// Journal (write path)
// ---------------------------------------------------------------------------

/// The write-ahead session journal.
///
/// Appends framed records through a [`Backend`]; [`Journal::open`] scans
/// the existing contents, truncates any invalid or in-flight tail, and
/// returns a [`Replay`] for the caller to reconstruct its state from.
pub struct Journal {
    backend: Box<dyn Backend>,
    policy: SyncPolicy,
    pos: u64,
}

impl Journal {
    /// Open a journal over `backend`: validate/initialise the magic, scan,
    /// truncate the tail to the durable prefix, and return the replay.
    pub fn open(
        mut backend: Box<dyn Backend>,
        policy: SyncPolicy,
    ) -> StoreResult<(Journal, Replay)> {
        let bytes = backend.read_all()?;
        let replay = scan(&bytes)?;
        if bytes.is_empty() {
            backend.append(MAGIC)?;
            backend.sync()?;
            let journal = Journal {
                backend,
                policy,
                pos: MAGIC.len() as u64,
            };
            return Ok((journal, replay));
        }
        if replay.durable_len < bytes.len() as u64 {
            backend.truncate(replay.durable_len)?;
            backend.sync()?;
        }
        let journal = Journal {
            backend,
            policy,
            pos: replay.durable_len,
        };
        Ok((journal, replay))
    }

    /// Open (or create) a journal file at `path`.
    pub fn open_path(path: &Path, policy: SyncPolicy) -> StoreResult<(Journal, Replay)> {
        let backend = FileBackend::open(path)?;
        Journal::open(Box::new(backend), policy)
    }

    /// Current end-of-journal byte offset (the next record starts here).
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// The sync policy in force.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    /// Append one record; syncs immediately under [`SyncPolicy::Always`].
    /// Returns the end offset of the record.
    pub fn append(&mut self, record: &Record) -> StoreResult<u64> {
        let framed = record.encode_framed();
        self.backend.append(&framed)?;
        self.pos += framed.len() as u64;
        if gom_obs::enabled() {
            gom_obs::counter_add("journal.appends", 1);
            gom_obs::counter_add("journal.bytes", framed.len() as u64);
        }
        if self.policy == SyncPolicy::Always {
            self.backend.sync()?;
            gom_obs::counter_add("journal.fsyncs", 1);
        }
        Ok(self.pos)
    }

    /// Rotate the journal: replace the entire stream with a fresh image
    /// holding just the magic and `record` (normally a
    /// [`Record::Snapshot`]), so the file stops growing with history the
    /// snapshot already subsumes. The replacement is crash-safe and always
    /// durable on return, whatever the sync policy: a rotation that could
    /// be half-lost would corrupt the *whole* journal, not just a tail.
    /// Returns the new end offset.
    pub fn rotate(&mut self, record: &Record) -> StoreResult<u64> {
        let mut image = Vec::with_capacity(MAGIC.len() + 64);
        image.extend_from_slice(MAGIC);
        image.extend_from_slice(&record.encode_framed());
        self.backend.rotate(&image)?;
        self.pos = image.len() as u64;
        if gom_obs::enabled() {
            gom_obs::counter_add("journal.rotations", 1);
            gom_obs::counter_add("journal.bytes", image.len() as u64);
        }
        Ok(self.pos)
    }

    /// Durability barrier at a session boundary: syncs under
    /// [`SyncPolicy::OnCommit`] and [`SyncPolicy::Always`].
    pub fn boundary_sync(&mut self) -> StoreResult<()> {
        if self.policy != SyncPolicy::Never {
            self.backend.sync()?;
            gom_obs::counter_add("journal.fsyncs", 1);
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::record::JConst;

    fn op(insert: bool, pred: &str, vals: &[i64]) -> JOp {
        JOp {
            insert,
            pred: pred.into(),
            tuple: vals.iter().map(|&n| JConst::Int(n)).collect(),
        }
    }

    fn write_session(j: &mut Journal, ops: &[JOp], commit: bool) {
        j.append(&Record::Bes).unwrap();
        for o in ops {
            j.append(&Record::Op(o.clone())).unwrap();
        }
        j.append(if commit {
            &Record::EesCommit
        } else {
            &Record::EesRollback
        })
        .unwrap();
        j.boundary_sync().unwrap();
    }

    #[test]
    fn committed_sessions_replay_in_order() {
        let mem = MemBackend::new();
        let (mut j, r0) = Journal::open(Box::new(mem.clone()), SyncPolicy::OnCommit).unwrap();
        assert_eq!(r0.sessions_replayed, 0);
        write_session(&mut j, &[op(true, "P", &[1]), op(true, "P", &[2])], true);
        write_session(&mut j, &[op(false, "P", &[1])], true);
        let (_, r) = Journal::open(Box::new(mem.clone()), SyncPolicy::OnCommit).unwrap();
        assert_eq!(r.sessions_replayed, 2);
        assert_eq!(r.ops.len(), 3);
        assert!(r.torn.is_none());
        assert!(!r.discarded_in_flight);
    }

    #[test]
    fn rolled_back_sessions_contribute_nothing() {
        let mem = MemBackend::new();
        let (mut j, _) = Journal::open(Box::new(mem.clone()), SyncPolicy::OnCommit).unwrap();
        write_session(&mut j, &[op(true, "P", &[1])], false);
        let (_, r) = Journal::open(Box::new(mem.clone()), SyncPolicy::OnCommit).unwrap();
        assert_eq!(r.sessions_replayed, 0);
        assert_eq!(r.sessions_rolled_back, 1);
        assert!(r.ops.is_empty());
    }

    #[test]
    fn in_flight_session_is_discarded_and_truncated() {
        let mem = MemBackend::new();
        let (mut j, _) = Journal::open(Box::new(mem.clone()), SyncPolicy::OnCommit).unwrap();
        write_session(&mut j, &[op(true, "P", &[1])], true);
        let committed_len = j.position();
        j.append(&Record::Bes).unwrap();
        j.append(&Record::Op(op(true, "P", &[2]))).unwrap();
        // no EES — crash here
        let (j2, r) = Journal::open(Box::new(mem.clone()), SyncPolicy::OnCommit).unwrap();
        assert!(r.discarded_in_flight);
        assert_eq!(r.sessions_replayed, 1);
        assert_eq!(r.ops.len(), 1);
        assert_eq!(j2.position(), committed_len);
        assert_eq!(mem.bytes().len() as u64, committed_len);
    }

    #[test]
    fn snapshot_resets_the_replay_base() {
        let mem = MemBackend::new();
        let (mut j, _) = Journal::open(Box::new(mem.clone()), SyncPolicy::OnCommit).unwrap();
        write_session(&mut j, &[op(true, "P", &[1])], true);
        j.append(&Record::Snapshot(vec![SnapshotPred {
            pred: "P".into(),
            arity: 1,
            rows: vec![vec![JConst::Int(1)]],
        }]))
        .unwrap();
        j.boundary_sync().unwrap();
        write_session(&mut j, &[op(true, "P", &[2])], true);
        let (_, r) = Journal::open(Box::new(mem.clone()), SyncPolicy::OnCommit).unwrap();
        assert!(r.snapshot.is_some());
        assert_eq!(r.sessions_replayed, 1); // only the post-snapshot session
        assert_eq!(r.ops.len(), 1);
    }

    #[test]
    fn rotate_replaces_history_with_one_record() {
        let mem = MemBackend::new();
        let (mut j, _) = Journal::open(Box::new(mem.clone()), SyncPolicy::OnCommit).unwrap();
        write_session(&mut j, &[op(true, "P", &[1]), op(true, "P", &[2])], true);
        write_session(&mut j, &[op(false, "P", &[1])], true);
        let history_len = j.position();
        let snap = Record::Snapshot(vec![SnapshotPred {
            pred: "P".into(),
            arity: 1,
            rows: vec![vec![JConst::Int(2)]],
        }]);
        let pos = j.rotate(&snap).unwrap();
        assert!(pos < history_len, "rotation must shrink the journal");
        assert_eq!(mem.bytes().len() as u64, pos);
        assert_eq!(pos, (MAGIC.len() + snap.encode_framed().len()) as u64);
        let (_, r) = Journal::open(Box::new(mem.clone()), SyncPolicy::OnCommit).unwrap();
        assert!(r.snapshot.is_some());
        assert_eq!(r.sessions_replayed, 0);
        assert!(r.ops.is_empty());
        assert!(r.torn.is_none());
    }

    #[test]
    fn file_backend_rotates_atomically_and_sweeps_stale_tmp() {
        let dir = std::env::temp_dir().join(format!("gom_store_rot_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.gom");
        let tmp = dir.join("j.gom.tmp");

        let backend = FileBackend::open(&path).unwrap();
        let (mut j, _) = Journal::open(Box::new(backend), SyncPolicy::OnCommit).unwrap();
        write_session(&mut j, &[op(true, "P", &[1])], true);
        j.rotate(&Record::Snapshot(vec![])).unwrap();
        assert!(!tmp.exists(), "rotation must not leave its tmp file");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), j.position());
        // The rotated file keeps accepting appends.
        write_session(&mut j, &[op(true, "P", &[2])], true);
        drop(j);

        // A stale tmp (crash before rename) is swept; the journal scans.
        std::fs::write(&tmp, b"garbage").unwrap();
        let backend = FileBackend::open(&path).unwrap();
        assert!(!tmp.exists());
        let (_, r) = Journal::open(Box::new(backend), SyncPolicy::OnCommit).unwrap();
        assert!(r.snapshot.is_some());
        assert_eq!(r.sessions_replayed, 1);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_crc_tail_truncates_to_boundary() {
        let mem = MemBackend::new();
        let (mut j, _) = Journal::open(Box::new(mem.clone()), SyncPolicy::OnCommit).unwrap();
        write_session(&mut j, &[op(true, "P", &[1])], true);
        let boundary = j.position();
        write_session(&mut j, &[op(true, "P", &[2])], true);
        // Corrupt one byte inside the second session's op payload.
        let mut bytes = mem.bytes();
        let target = boundary as usize + 8 + 1 + 8 + 2; // inside the Op record
        bytes[target] ^= 0xFF;
        mem.set_bytes(bytes);
        let (_, r) = Journal::open(Box::new(mem.clone()), SyncPolicy::OnCommit).unwrap();
        assert!(
            r.torn.as_deref().is_some_and(|t| t.contains("CRC")),
            "{r:?}"
        );
        assert_eq!(r.sessions_replayed, 1);
        assert_eq!(r.ops.len(), 1);
        assert_eq!(mem.bytes().len() as u64, boundary);
    }

    #[test]
    fn arbitrary_garbage_never_panics() {
        // Deterministic pseudo-random garbage, with and without magic.
        let mut x: u64 = 0x1234_5678_9abc_def0;
        for trial in 0..64 {
            let mut bytes = Vec::new();
            if trial % 2 == 0 {
                bytes.extend_from_slice(MAGIC);
            }
            for _ in 0..(trial * 7 + 3) {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                bytes.push((x >> 33) as u8);
            }
            let _ = scan(&bytes); // must return, never panic
        }
    }

    #[test]
    fn every_prefix_of_a_valid_journal_scans_cleanly() {
        let mem = MemBackend::new();
        let (mut j, _) = Journal::open(Box::new(mem.clone()), SyncPolicy::OnCommit).unwrap();
        write_session(
            &mut j,
            &[op(true, "P", &[1]), op(false, "Q", &[2, 3])],
            true,
        );
        write_session(&mut j, &[op(true, "P", &[4])], false);
        let bytes = mem.bytes();
        for cut in 0..=bytes.len() {
            let prefix = &bytes[..cut];
            if cut < MAGIC.len() && cut > 0 {
                assert!(scan(prefix).is_err(), "cut={cut}: partial magic rejected");
            } else {
                let r = scan(prefix).unwrap();
                assert!(r.durable_len <= cut as u64);
            }
        }
    }
}
