//! # gom-store — durable evolution-session journal
//!
//! The paper's §3.5 protocol makes the evolution session (BES…EES) the
//! atomicity unit: *"undoing the evolution session is always among the
//! repairs."* This crate gives that unit durability. A [`Journal`] is an
//! append-only stream of length-prefixed, CRC-32-checksummed records
//!
//! * [`Record::Bes`] — begin evolution session,
//! * [`Record::Op`] — one primitive change of the session's delta
//!   (predicates and symbols stored by *name*, so a journal replays into a
//!   fresh process),
//! * [`Record::EesCommit`] / [`Record::EesRollback`] — session end,
//! * [`Record::Snapshot`] — a full EDB image; recovery replays from the
//!   latest one.
//!
//! Recovery ([`Journal::open`] → [`Replay`]) replays committed sessions
//! onto the latest snapshot and discards anything else: a torn tail, a
//! session without its `Ees`, or a CRC mismatch truncates the journal to
//! the last valid session boundary — never a panic, whatever the bytes.
//! Derived facts (the IDB) are **not** persisted; the consistency control
//! re-derives them by fixpoint after replay.
//!
//! [`FailpointWriter`] provides deterministic fault injection: it kills
//! the byte stream at the Nth byte so a test harness can prove the
//! recovery invariant — the recovered store equals either the pre-BES or
//! the post-EES state, never anything in between.
//!
//! This crate is deliberately free of dependencies (including the rest of
//! the workspace): it speaks strings and integers, and `gom-core`
//! translates between [`JOp`]s and deductive-database tuples.

#![warn(missing_docs)]

mod crc32;
mod error;
mod failpoint;
mod journal;
mod record;

pub use crc32::crc32;
pub use error::{StoreError, StoreResult};
pub use failpoint::FailpointWriter;
pub use journal::{scan, Backend, FileBackend, Journal, MemBackend, Replay, SyncPolicy};
pub use record::{JConst, JOp, Record, SnapshotPred, MAGIC, MAX_RECORD};
