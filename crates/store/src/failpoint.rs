//! Deterministic fault injection for the journal write path.
//!
//! [`FailpointWriter`] wraps any [`Backend`] and kills the process-visible
//! write stream at the Nth byte: everything up to the budget reaches the
//! inner backend, everything after is lost, and the append that crossed
//! the boundary (and every later one) reports an I/O error — exactly what
//! a power failure mid-`write(2)` looks like to the recovery path.

use crate::journal::Backend;

/// A backend that persists only the first `budget` bytes ever appended.
pub struct FailpointWriter<B: Backend> {
    inner: B,
    remaining: u64,
    tripped: bool,
}

impl<B: Backend> FailpointWriter<B> {
    /// Allow `budget` bytes through, then simulate a crash.
    pub fn new(inner: B, budget: u64) -> FailpointWriter<B> {
        FailpointWriter {
            inner,
            remaining: budget,
            tripped: false,
        }
    }

    /// Has the failpoint fired yet?
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    fn crash() -> std::io::Error {
        std::io::Error::other("failpoint: simulated crash of the journal writer")
    }
}

impl<B: Backend> Backend for FailpointWriter<B> {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        if self.tripped {
            return Err(Self::crash());
        }
        if (bytes.len() as u64) <= self.remaining {
            self.remaining -= bytes.len() as u64;
            return self.inner.append(bytes);
        }
        // Partial write up to the budget, then the "power goes out".
        let n = self.remaining as usize;
        self.tripped = true;
        self.remaining = 0;
        self.inner.append(&bytes[..n])?;
        Err(Self::crash())
    }

    fn sync(&mut self) -> std::io::Result<()> {
        if self.tripped {
            return Err(Self::crash());
        }
        self.inner.sync()
    }

    fn truncate(&mut self, len: u64) -> std::io::Result<()> {
        if self.tripped {
            return Err(Self::crash());
        }
        self.inner.truncate(len)
    }

    fn read_all(&mut self) -> std::io::Result<Vec<u8>> {
        self.inner.read_all()
    }

    /// Rotation is atomic at the medium level (tmp file + rename), so the
    /// failure model is all-or-nothing: if the whole replacement fits in
    /// the remaining budget it lands completely, otherwise the "crash"
    /// happens before the rename and the inner stream is left untouched.
    fn rotate(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        if self.tripped {
            return Err(Self::crash());
        }
        if (bytes.len() as u64) <= self.remaining {
            self.remaining -= bytes.len() as u64;
            return self.inner.rotate(bytes);
        }
        self.tripped = true;
        self.remaining = 0;
        Err(Self::crash())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::journal::MemBackend;

    #[test]
    fn passes_through_until_budget_then_crashes() {
        let mem = MemBackend::new();
        let mut fp = FailpointWriter::new(mem.clone(), 5);
        fp.append(b"abc").unwrap();
        assert!(!fp.tripped());
        // 3 written, budget 5: this write crosses the line → 2 bytes land.
        assert!(fp.append(b"defg").is_err());
        assert!(fp.tripped());
        assert_eq!(mem.bytes(), b"abcde");
        // Everything afterwards fails.
        assert!(fp.append(b"x").is_err());
        assert!(fp.sync().is_err());
        assert_eq!(mem.bytes(), b"abcde");
    }

    #[test]
    fn rotate_is_all_or_nothing() {
        let mem = MemBackend::new();
        mem.set_bytes(b"old journal".to_vec());
        // Budget one byte short of the replacement: nothing may change.
        let mut fp = FailpointWriter::new(mem.clone(), 10);
        assert!(fp.rotate(b"replacement").is_err());
        assert!(fp.tripped());
        assert_eq!(mem.bytes(), b"old journal");
        // Budget exactly the replacement: it lands completely.
        let mut fp = FailpointWriter::new(mem.clone(), 11);
        fp.rotate(b"replacement").unwrap();
        assert_eq!(mem.bytes(), b"replacement");
    }

    #[test]
    fn zero_budget_crashes_on_first_write() {
        let mem = MemBackend::new();
        let mut fp = FailpointWriter::new(mem.clone(), 0);
        assert!(fp.append(b"a").is_err());
        assert!(mem.bytes().is_empty());
    }
}
