//! # gom-impact — Datalog-powered schema impact analysis
//!
//! The paper defers consistency to the end of an evolution session (EES),
//! which naively means delta-checking every compiled violation query. This
//! crate makes EES smarter by *dogfooding the deductive engine as its own
//! static analyzer* (after Engels, Behrend & Brass): the current rule set
//! and compiled constraints are reflected into a **meta-EDB** —
//!
//! | predicate | meaning |
//! |---|---|
//! | `meta_base(p)` | `p` is an extensional predicate |
//! | `meta_dep_pos(p, q)` / `meta_dep_neg(p, q)` | some rule for `p` reads `q` positively / under negation |
//! | `meta_cviol(c, p)` | constraint `c` compiles to violation predicate `p` |
//! | `meta_evolvable(p)` | `p` is a catalog predicate written by evolution primitives |
//! | `meta_type(tid, name)` / `meta_attr(tid, attr, domain, sid)` | reflected MetaModel rows |
//! | `meta_rule_uses(r, p, sign)` | rule `r` uses predicate `p` with the given polarity |
//! | `meta_evolves_to(from, to)` | reflected version-graph edges (when versioning is installed) |
//! | `meta_has_instances(tid)` | some physical representation exists for `tid` |
//!
//! — and the analysis passes are themselves Datalog meta-rules evaluated by
//! `gom-deductive` (see [`META_PROGRAM`]): a *polarity-aware* transitive
//! dependency closure `aff_pos`/`aff_neg` ("inserting into / deleting from
//! base `b` can create new `p` tuples"), the per-constraint read set
//! `meta_constraint_reads`, and the touchability check behind `L0602`.
//!
//! From one evaluation of the meta-program, [`ImpactIndex`] precomputes two
//! maps (base predicate → constraints an insert/delete can newly violate),
//! so the per-session **impact footprint** is a handful of hash-set unions:
//! microseconds, never a fixpoint. [`plan`] combines the footprint with a
//! breaking/non-breaking classification of the session's net delta (after
//! Piccioni et al.'s class-evolution taxonomy) into a [`PlanReport`] whose
//! diagnostics (`L0601`–`L0603`) flow through the ordinary gom-lint
//! pipeline.
//!
//! ## Soundness
//!
//! Footprint-based skipping is sound under the same precondition
//! `check_delta` already documents: the database was consistent when the
//! session began. Then any *new* violation tuple has a derivation that
//! changed with the delta, and by the polarity closure the changed base
//! predicate is reachable from the violation predicate with matching
//! parity — so the constraint is in the footprint. Constraints outside the
//! footprint provably cannot have gained a violation and may be skipped.

#![warn(missing_docs)]

use gom_deductive::{
    ast::Literal, ChangeSet, Const, Database, Error, FxHashMap, FxHashSet, Op, PredId, Result,
};
use gom_lint::{Diagnostic, LintReport, Severity};

/// The meta-program: declarations of the reflected meta-EDB plus the
/// analysis rules, written in the engine's own surface syntax and evaluated
/// by the engine itself. `aff_pos(p, b)` reads "an insertion into base `b`
/// can create new `p` tuples"; `aff_neg(p, b)` the same for deletions. The
/// two relations are mutually recursive because negation flips polarity.
pub const META_PROGRAM: &str = "\
base meta_base(p).
base meta_dep_pos(p, q).
base meta_dep_neg(p, q).
base meta_cviol(c, p).
base meta_evolvable(p).
base meta_type(tid, name).
base meta_attr(tid, attr, domain, sid).
base meta_rule_uses(rule, p, sign).
base meta_evolves_to(from, to).
base meta_has_instances(tid).
derived aff_pos(p, b).
derived aff_neg(p, b).
derived meta_constraint_reads(c, b).
derived meta_touchable(c).
aff_pos(P, B) :- meta_dep_pos(P, B), meta_base(B).
aff_neg(P, B) :- meta_dep_neg(P, B), meta_base(B).
aff_pos(P, B) :- meta_dep_pos(P, Q), aff_pos(Q, B).
aff_pos(P, B) :- meta_dep_neg(P, Q), aff_neg(Q, B).
aff_neg(P, B) :- meta_dep_pos(P, Q), aff_neg(Q, B).
aff_neg(P, B) :- meta_dep_neg(P, Q), aff_pos(Q, B).
meta_constraint_reads(C, B) :- meta_cviol(C, P), aff_pos(P, B).
meta_constraint_reads(C, B) :- meta_cviol(C, P), aff_neg(P, B).
meta_touchable(C) :- meta_constraint_reads(C, B), meta_evolvable(B).
";

/// Catalog predicates written by evolution primitives. A constraint whose
/// read set misses all of these can never be affected by a session (L0602).
const EVOLVABLE: &[&str] = &[
    "Schema",
    "Type",
    "Attr",
    "Decl",
    "ArgDecl",
    "Code",
    "SubTypRel",
    "DeclRefinement",
    "CodeReqDecl",
    "CodeReqAttr",
    "PhRep",
    "Slot",
    "SortVariant",
    "SubSchemaOf",
    "SchemaVar",
    "CodeParam",
    "evolves_to_S",
    "evolves_to_T",
    "FashionType",
    "FashionDecl",
    "FashionAttr",
];

/// Identifies the definition state an [`ImpactIndex`] was built from, so
/// callers can cache the index and rebuild only when rules or constraints
/// change.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fingerprint {
    rules: usize,
    constraints: usize,
    load_seq: u32,
}

impl Fingerprint {
    /// The fingerprint of a database's current definitions.
    pub fn of(db: &Database) -> Fingerprint {
        Fingerprint {
            rules: db.rules().len(),
            constraints: db.constraints().len(),
            load_seq: db.load_seq(),
        }
    }
}

/// The precomputed impact index: which constraints an insertion into /
/// deletion from each base predicate can newly violate. Built by one
/// evaluation of [`META_PROGRAM`] over the reflected meta-EDB; lookups are
/// then plain hash-map unions.
#[derive(Clone, Debug)]
pub struct ImpactIndex {
    fingerprint: Fingerprint,
    /// base predicate name → constraints an INSERT can newly violate.
    pos: FxHashMap<String, FxHashSet<String>>,
    /// base predicate name → constraints a DELETE can newly violate.
    neg: FxHashMap<String, FxHashSet<String>>,
    /// every constraint name, in source order.
    constraints: Vec<String>,
    /// constraint name → sorted base predicates its violation rules read.
    reads: FxHashMap<String, Vec<String>>,
    /// constraints no evolution primitive can affect (source order).
    untouchable: Vec<String>,
}

/// The impact footprint of one session delta.
#[derive(Clone, Debug)]
pub struct Footprint {
    /// Names of constraints this delta can newly violate.
    pub constraints: FxHashSet<String>,
    /// Total constraints known to the index.
    pub total: usize,
}

fn meta_pred(mdb: &Database, name: &str) -> Result<PredId> {
    mdb.pred_id(name)
        .ok_or_else(|| Error::UnknownPredicate(name.to_string()))
}

/// Re-intern a constant from the analyzed database into the meta-database.
fn port(host: &Database, mdb: &mut Database, c: Const) -> Const {
    match c.as_sym() {
        Some(s) => mdb.constant(host.resolve(s)),
        None => c,
    }
}

fn const_str(db: &Database, c: Const) -> String {
    match c.as_sym() {
        Some(s) => db.resolve(s).to_string(),
        None => match c.as_int() {
            Some(i) => i.to_string(),
            None => format!("{c:?}"),
        },
    }
}

fn col(names: &[String], want: &str) -> Result<usize> {
    names
        .iter()
        .position(|n| n == want)
        .ok_or_else(|| Error::UnknownPredicate(format!("meta query variable {want}")))
}

impl ImpactIndex {
    /// Reflect the database's compiled program into the meta-EDB, evaluate
    /// the meta-rules, and precompute the polarity-aware trigger maps.
    /// Fails only if the analyzed program itself does not compile.
    pub fn build(db: &mut Database) -> Result<ImpactIndex> {
        let _sp = gom_obs::span("impact.index.build");
        gom_obs::counter_add("impact.index.builds", 1);
        let fingerprint = Fingerprint::of(db);

        // Own the compiled program pieces so `db` stays free for name
        // lookups (the view mutably borrows the database).
        let (rules, cviols): (Vec<gom_deductive::ast::Rule>, Vec<(usize, PredId)>) = {
            let view = db.program_view()?;
            (view.rules.to_vec(), view.constraint_viols.clone())
        };

        let mut mdb = Database::new();
        mdb.load(META_PROGRAM)?;
        let m_base = meta_pred(&mdb, "meta_base")?;
        let m_dep_pos = meta_pred(&mdb, "meta_dep_pos")?;
        let m_dep_neg = meta_pred(&mdb, "meta_dep_neg")?;
        let m_cviol = meta_pred(&mdb, "meta_cviol")?;
        let m_evolvable = meta_pred(&mdb, "meta_evolvable")?;
        let m_type = meta_pred(&mdb, "meta_type")?;
        let m_attr = meta_pred(&mdb, "meta_attr")?;
        let m_rule_uses = meta_pred(&mdb, "meta_rule_uses")?;
        let m_evolves_to = meta_pred(&mdb, "meta_evolves_to")?;
        let m_has_instances = meta_pred(&mdb, "meta_has_instances")?;

        // meta_base: every extensional predicate of the analyzed database.
        let base_ids: Vec<PredId> = db.base_preds().collect();
        for p in &base_ids {
            let c = {
                let name = db.pred_name(*p).to_string();
                mdb.constant(&name)
            };
            mdb.insert(m_base, vec![c])?;
        }

        // Dependency edges and rule-usage facts from every compiled rule
        // (user rules plus the Lloyd–Topor auxiliaries — the auxiliaries
        // are what connect violation predicates to base predicates).
        for (i, rule) in rules.iter().enumerate() {
            let head = db.pred_name(rule.head.pred).to_string();
            let rname = format!("r{i}");
            for lit in &rule.body {
                let (atom, sign, edge) = match lit {
                    Literal::Pos(a) => (a, "pos", m_dep_pos),
                    Literal::Neg(a) => (a, "neg", m_dep_neg),
                    Literal::Cmp(..) => continue,
                };
                let pname = db.pred_name(atom.pred).to_string();
                let (h, p) = (mdb.constant(&head), mdb.constant(&pname));
                mdb.insert(edge, vec![h, p])?;
                let (r, p, s) = (
                    mdb.constant(&rname),
                    mdb.constant(&pname),
                    mdb.constant(sign),
                );
                mdb.insert(m_rule_uses, vec![r, p, s])?;
            }
        }

        // Constraint → violation-predicate facts.
        let constraints: Vec<String> = db.constraints().iter().map(|c| c.name.clone()).collect();
        for &(src, viol) in &cviols {
            let Some(cname) = constraints.get(src) else {
                continue;
            };
            let (c, v) = {
                let vname = db.pred_name(viol).to_string();
                (mdb.constant(cname), mdb.constant(&vname))
            };
            mdb.insert(m_cviol, vec![c, v])?;
        }

        // Evolvable catalog predicates present in this database.
        for name in EVOLVABLE {
            if db.pred_id(name).is_some() {
                let c = mdb.constant(name);
                mdb.insert(m_evolvable, vec![c])?;
            }
        }

        // Reflected MetaModel rows (when the catalog is installed).
        let mut tid_sid: FxHashMap<Const, Const> = FxHashMap::default();
        if let Some(ty) = db.pred_id("Type") {
            for row in db.facts_sorted(ty) {
                tid_sid.insert(row.get(0), row.get(2));
                let (a, b) = (
                    port(db, &mut mdb, row.get(0)),
                    port(db, &mut mdb, row.get(1)),
                );
                mdb.insert(m_type, vec![a, b])?;
            }
        }
        if let Some(attr) = db.pred_id("Attr") {
            for row in db.facts_sorted(attr) {
                let sid = tid_sid.get(&row.get(0)).copied();
                let a = port(db, &mut mdb, row.get(0));
                let b = port(db, &mut mdb, row.get(1));
                let c = port(db, &mut mdb, row.get(2));
                let d = match sid {
                    Some(s) => port(db, &mut mdb, s),
                    None => mdb.constant("unknown"),
                };
                mdb.insert(m_attr, vec![a, b, c, d])?;
            }
        }
        for vpred in ["evolves_to_S", "evolves_to_T"] {
            if let Some(p) = db.pred_id(vpred) {
                for row in db.facts_sorted(p) {
                    let (a, b) = (
                        port(db, &mut mdb, row.get(0)),
                        port(db, &mut mdb, row.get(1)),
                    );
                    mdb.insert(m_evolves_to, vec![a, b])?;
                }
            }
        }
        if let Some(phrep) = db.pred_id("PhRep") {
            let mut seen: FxHashSet<Const> = FxHashSet::default();
            for row in db.facts_sorted(phrep) {
                if seen.insert(row.get(1)) {
                    let t = port(db, &mut mdb, row.get(1));
                    mdb.insert(m_has_instances, vec![t])?;
                }
            }
        }

        // One evaluation of the meta-rules, then three projections.
        let mut pos: FxHashMap<String, FxHashSet<String>> = FxHashMap::default();
        let mut neg: FxHashMap<String, FxHashSet<String>> = FxHashMap::default();
        for (query, map) in [
            ("meta_cviol(C, P), aff_pos(P, B)", &mut pos),
            ("meta_cviol(C, P), aff_neg(P, B)", &mut neg),
        ] {
            let (names, rows) = mdb.query_text(query)?;
            let (ci, bi) = (col(&names, "C")?, col(&names, "B")?);
            for t in rows {
                let c = const_str(&mdb, t.get(ci));
                let b = const_str(&mdb, t.get(bi));
                map.entry(b).or_default().insert(c);
            }
        }
        let mut reads: FxHashMap<String, Vec<String>> = FxHashMap::default();
        {
            let (names, rows) = mdb.query_text("meta_constraint_reads(C, B)")?;
            let (ci, bi) = (col(&names, "C")?, col(&names, "B")?);
            for t in rows {
                let c = const_str(&mdb, t.get(ci));
                let b = const_str(&mdb, t.get(bi));
                reads.entry(c).or_default().push(b);
            }
            for v in reads.values_mut() {
                v.sort();
                v.dedup();
            }
        }
        let touchable: FxHashSet<String> = {
            let (names, rows) = mdb.query_text("meta_touchable(C)")?;
            let ci = col(&names, "C")?;
            rows.iter().map(|t| const_str(&mdb, t.get(ci))).collect()
        };
        let untouchable: Vec<String> = constraints
            .iter()
            .filter(|c| !touchable.contains(*c))
            .cloned()
            .collect();

        Ok(ImpactIndex {
            fingerprint,
            pos,
            neg,
            constraints,
            reads,
            untouchable,
        })
    }

    /// The definition fingerprint the index was built from.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// True if the index still matches the database's definitions.
    pub fn is_fresh(&self, db: &Database) -> bool {
        self.fingerprint == Fingerprint::of(db)
    }

    /// All constraint names, in source order.
    pub fn constraints(&self) -> &[String] {
        &self.constraints
    }

    /// Constraints no evolution primitive can affect (L0602 candidates).
    pub fn untouchable(&self) -> &[String] {
        &self.untouchable
    }

    /// The sorted base predicates a constraint's violation rules read.
    pub fn constraint_reads(&self, name: &str) -> &[String] {
        self.reads.get(name).map_or(&[], Vec::as_slice)
    }

    /// Constraints an insertion into base predicate `base` can newly
    /// violate.
    pub fn insert_triggers(&self, base: &str) -> Option<&FxHashSet<String>> {
        self.pos.get(base)
    }

    /// Constraints a deletion from base predicate `base` can newly violate.
    pub fn delete_triggers(&self, base: &str) -> Option<&FxHashSet<String>> {
        self.neg.get(base)
    }

    /// The impact footprint of a session delta: the union of the trigger
    /// sets of its operations, polarity-aware (an insert consults the
    /// insert map, a delete the delete map). Pure hash-map lookups — no
    /// Datalog evaluation at session time.
    pub fn footprint(&self, db: &Database, delta: &ChangeSet) -> Footprint {
        let mut constraints: FxHashSet<String> = FxHashSet::default();
        for op in &delta.ops {
            let name = db.pred_name(op.pred());
            let map = match op {
                Op::Insert(..) => &self.pos,
                Op::Delete(..) => &self.neg,
            };
            if let Some(set) = map.get(name) {
                constraints.extend(set.iter().cloned());
            }
        }
        Footprint {
            constraints,
            total: self.constraints.len(),
        }
    }
}

/// One session operation with its breaking/non-breaking classification
/// (after the empirical class-evolution taxonomy: a change is breaking when
/// live object representations must migrate to stay well-formed).
#[derive(Clone, Debug)]
pub struct ClassifiedOp {
    /// Rendered operation, e.g. `+Attr(tid4, fuelType, t_string)`.
    pub rendered: String,
    /// The catalog predicate the operation touches.
    pub pred: String,
    /// True when live instances are affected.
    pub breaking: bool,
    /// True when the same delta also carries representation updates
    /// (PhRep/Slot operations) for the affected type.
    pub migrated: bool,
    /// Human-readable classification rationale.
    pub reason: String,
}

/// Classify every operation of a session delta as breaking or
/// non-breaking. "Breaking" means live object representations are affected
/// (the paper's `fuelType` scenario: adding an attribute to a type with
/// instances leaves every object short one slot).
pub fn classify(db: &Database, delta: &ChangeSet) -> Vec<ClassifiedOp> {
    let phrep = db.pred_id("PhRep");
    // Types with live instances now, plus types whose representations the
    // delta itself deleted (they had instances when the session began).
    let mut instance_types: FxHashSet<Const> = FxHashSet::default();
    let mut clid_tid: FxHashMap<Const, Const> = FxHashMap::default();
    if let Some(p) = phrep {
        for row in db.facts_sorted(p) {
            clid_tid.insert(row.get(0), row.get(1));
            instance_types.insert(row.get(1));
        }
    }
    // Migration evidence: types whose PhRep/Slot rows the delta touches.
    let mut migrated_tids: FxHashSet<Const> = FxHashSet::default();
    for op in &delta.ops {
        match db.pred_name(op.pred()) {
            "PhRep" => {
                let tid = op.tuple().get(1);
                migrated_tids.insert(tid);
                clid_tid.insert(op.tuple().get(0), tid);
                if matches!(op, Op::Delete(..)) {
                    instance_types.insert(tid);
                }
            }
            "Slot" => {
                if let Some(&tid) = clid_tid.get(&op.tuple().get(0)) {
                    migrated_tids.insert(tid);
                }
            }
            _ => {}
        }
    }

    let mut out = Vec::with_capacity(delta.ops.len());
    for op in &delta.ops {
        let pred = db.pred_name(op.pred()).to_string();
        let insert = matches!(op, Op::Insert(..));
        let sign = if insert { "+" } else { "-" };
        let args: Vec<String> = op.tuple().iter().map(|c| const_str(db, c)).collect();
        let rendered = format!("{sign}{pred}({})", args.join(", "));
        let (breaking, tid, reason) = match (pred.as_str(), insert) {
            ("Attr", true) => {
                let tid = op.tuple().get(0);
                if instance_types.contains(&tid) {
                    (true, Some(tid), "adds an attribute to a type with live instances; every object representation needs a new slot".to_string())
                } else {
                    (
                        false,
                        None,
                        "type has no live instances; representations are unaffected".to_string(),
                    )
                }
            }
            ("Attr", false) => {
                let tid = op.tuple().get(0);
                if instance_types.contains(&tid) {
                    (true, Some(tid), "removes an attribute from a type with live instances; existing slots become dangling".to_string())
                } else {
                    (
                        false,
                        None,
                        "type has no live instances; representations are unaffected".to_string(),
                    )
                }
            }
            ("Type", false) => {
                let tid = op.tuple().get(0);
                if instance_types.contains(&tid) {
                    (
                        true,
                        Some(tid),
                        "deletes a type that still has live instances".to_string(),
                    )
                } else {
                    (
                        false,
                        None,
                        "deletes a type without live instances".to_string(),
                    )
                }
            }
            ("SubTypRel", _) => {
                let sub = op.tuple().get(0);
                if instance_types.contains(&sub) {
                    (true, Some(sub), "changes the supertype lattice under a type with live instances; the inherited attribute set changes".to_string())
                } else {
                    (
                        false,
                        None,
                        "supertype lattice change below types without live instances".to_string(),
                    )
                }
            }
            _ => (
                false,
                None,
                "definitional change with no direct instance impact".to_string(),
            ),
        };
        let migrated = breaking && tid.is_some_and(|t| migrated_tids.contains(&t));
        out.push(ClassifiedOp {
            rendered,
            pred,
            breaking,
            migrated,
            reason,
        });
    }
    out
}

/// Thresholds for plan diagnostics.
#[derive(Clone, Debug)]
pub struct PlanConfig {
    /// `L0603` fires when the footprint exceeds this many constraints.
    pub max_footprint: usize,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig { max_footprint: 32 }
    }
}

/// Turn a footprint plus classification into `L06xx` lint diagnostics.
pub fn impact_diagnostics(
    index: &ImpactIndex,
    footprint: &Footprint,
    classes: &[ClassifiedOp],
    cfg: &PlanConfig,
) -> LintReport {
    let mut report = LintReport::default();
    for c in classes.iter().filter(|c| c.breaking && !c.migrated) {
        report.diags.push(
            Diagnostic::new(
                "L0601",
                Severity::Warn,
                format!(
                    "breaking change {} has no migration in this session",
                    c.rendered
                ),
            )
            .with_note(c.reason.clone())
            .with_fix(
                "migrate the affected representations (PhRep/Slot updates) in the same session, \
                 or plan for repair generation at EES",
            ),
        );
    }
    for name in index.untouchable() {
        report.diags.push(
            Diagnostic::new(
                "L0602",
                Severity::Note,
                format!("constraint `{name}` cannot be affected by any evolution primitive"),
            )
            .with_note(
                "its violation rules read no evolvable catalog predicate, so no session delta \
                 can change its truth value",
            ),
        );
    }
    if footprint.constraints.len() > cfg.max_footprint {
        report.diags.push(
            Diagnostic::new(
                "L0603",
                Severity::Warn,
                format!(
                    "impact footprint covers {} of {} constraints (threshold {})",
                    footprint.constraints.len(),
                    footprint.total,
                    cfg.max_footprint
                ),
            )
            .with_note("this session is close to a full consistency check; footprint-based skipping will not pay off")
            .with_fix("split the session into smaller primitives, or raise the plan threshold"),
        );
    }
    report.sort();
    report
}

/// The pre-EES commit plan for one session delta.
#[derive(Clone, Debug)]
pub struct PlanReport {
    /// Number of net operations in the session delta.
    pub ops: usize,
    /// Per-operation breaking/non-breaking classification.
    pub classes: Vec<ClassifiedOp>,
    /// Sorted names of constraints the delta can newly violate.
    pub footprint: Vec<String>,
    /// Total constraints defined.
    pub total_constraints: usize,
    /// `L06xx` diagnostics for this plan.
    pub diagnostics: LintReport,
}

impl PlanReport {
    /// Render the plan for terminal output (gomsh) or the wire (gomd).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "impact plan — {} op(s) in the session delta\n",
            self.ops
        ));
        for c in &self.classes {
            let tag = if c.breaking {
                if c.migrated {
                    "BREAKING (migrated)"
                } else {
                    "BREAKING (no migration)"
                }
            } else {
                "ok"
            };
            out.push_str(&format!("  {} — {tag}: {}\n", c.rendered, c.reason));
        }
        out.push_str(&format!(
            "footprint: {} of {} constraint(s) reachable from this delta\n",
            self.footprint.len(),
            self.total_constraints
        ));
        for name in &self.footprint {
            out.push_str(&format!("  - {name}\n"));
        }
        out.push_str(&format!(
            "EES can provably skip {} constraint(s)\n",
            self.total_constraints - self.footprint.len()
        ));
        if self.diagnostics.is_clean() {
            out.push_str("plan diagnostics: clean\n");
        } else {
            out.push_str(&gom_lint::render_report(&self.diagnostics, None, "<plan>"));
        }
        out
    }
}

/// Build the full pre-EES plan for a session delta: footprint,
/// classification, and `L06xx` diagnostics. Emits the `impact.plan` span
/// and the `impact.*` counters.
pub fn plan(db: &Database, index: &ImpactIndex, delta: &ChangeSet, cfg: &PlanConfig) -> PlanReport {
    let _sp = gom_obs::span("impact.plan");
    let fp = index.footprint(db, delta);
    let classes = classify(db, delta);
    if gom_obs::enabled() {
        gom_obs::counter_add("impact.plan.runs", 1);
        gom_obs::counter_add("impact.footprint.size", fp.constraints.len() as u64);
        gom_obs::counter_add(
            "impact.constraints.skipped",
            (fp.total - fp.constraints.len()) as u64,
        );
    }
    let diagnostics = impact_diagnostics(index, &fp, &classes, cfg);
    let mut footprint: Vec<String> = fp.constraints.iter().cloned().collect();
    footprint.sort();
    PlanReport {
        ops: delta.ops.len(),
        classes,
        footprint,
        total_constraints: fp.total,
        diagnostics,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn db_with(text: &str) -> Database {
        let mut db = Database::new();
        db.load(text).unwrap();
        db
    }

    /// `D(X) :- A(X), not B(X)` with `constraint c1: forall X: !D(X)`.
    /// Inserting into A can violate c1 (positive path); inserting into B
    /// cannot (negative path — it only shrinks D); deleting from B can.
    #[test]
    fn polarity_closure_separates_insert_and_delete_triggers() {
        let mut db = db_with(
            "base A(x). base B(x). derived D(x).
             D(X) :- A(X), not B(X).
             constraint c1: forall X: !D(X).",
        );
        let idx = ImpactIndex::build(&mut db).unwrap();
        assert!(idx.insert_triggers("A").is_some_and(|s| s.contains("c1")));
        assert!(!idx.insert_triggers("B").is_some_and(|s| s.contains("c1")));
        assert!(idx.delete_triggers("B").is_some_and(|s| s.contains("c1")));
        assert!(!idx.delete_triggers("A").is_some_and(|s| s.contains("c1")));
        let reads = idx.constraint_reads("c1");
        assert!(reads.contains(&"A".to_string()) && reads.contains(&"B".to_string()));
    }

    #[test]
    fn footprint_is_polarity_aware_over_the_delta() {
        let mut db = db_with(
            "base A(x). base B(x). derived D(x).
             D(X) :- A(X), not B(X).
             constraint c1: forall X: !D(X).",
        );
        let idx = ImpactIndex::build(&mut db).unwrap();
        let a = db.pred_id("A").unwrap();
        let b = db.pred_id("B").unwrap();
        let v = db.constant("v");

        let mut ins_b = ChangeSet::new();
        ins_b.insert(b, vec![v].into());
        assert!(idx.footprint(&db, &ins_b).constraints.is_empty());

        let mut del_b = ChangeSet::new();
        del_b.delete(b, vec![v].into());
        assert!(idx.footprint(&db, &del_b).constraints.contains("c1"));

        let mut ins_a = ChangeSet::new();
        ins_a.insert(a, vec![v].into());
        assert!(idx.footprint(&db, &ins_a).constraints.contains("c1"));
    }

    /// Without any evolvable catalog predicate in the program, every
    /// constraint is untouchable and L0602 fires for each.
    #[test]
    fn untouchable_constraints_get_l0602() {
        let mut db = db_with(
            "base E(x, y). derived P(x, y).
             P(X, Y) :- E(X, Y).
             constraint acyclic: forall X: !P(X, X).",
        );
        let idx = ImpactIndex::build(&mut db).unwrap();
        assert_eq!(idx.untouchable(), ["acyclic"]);
        let fp = Footprint {
            constraints: FxHashSet::default(),
            total: 1,
        };
        let report = impact_diagnostics(&idx, &fp, &[], &PlanConfig::default());
        assert!(report.diags.iter().any(|d| d.code == "L0602"));
    }

    #[test]
    fn footprint_threshold_fires_l0603() {
        let mut db = db_with(
            "base Attr(tid, attr, domain).
             constraint has_attr: forall T, A, D: Attr(T, A, D) -> exists E: Attr(T, A, E).",
        );
        let idx = ImpactIndex::build(&mut db).unwrap();
        let attr = db.pred_id("Attr").unwrap();
        let (t, a, d) = (db.constant("t"), db.constant("a"), db.constant("d"));
        let mut delta = ChangeSet::new();
        delta.insert(attr, vec![t, a, d].into());
        let fp = idx.footprint(&db, &delta);
        let cfg = PlanConfig { max_footprint: 0 };
        let report = impact_diagnostics(&idx, &fp, &[], &cfg);
        assert!(
            report.diags.iter().any(|d| d.code == "L0603"),
            "{report:?} with footprint {fp:?}"
        );
    }
}
