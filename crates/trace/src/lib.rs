//! `gom-trace` — a deterministic seeded evolution-trace generator.
//!
//! The paper argues schema evolution must coexist with live query load;
//! measuring that needs *realistic* evolution traffic, not uniform noise.
//! Piccioni et al.'s empirical study of class evolution in long-lived
//! object bases (see PAPERS.md) found a heavily skewed operation mix:
//! attribute and class **additions dominate**, deletions are moderate,
//! while **renames and type changes are rare but expensive** (each one
//! fans out into impact analysis and, on the wire, a delete/add pair).
//! [`MixWeights::piccioni`] encodes that distribution; the generator
//! draws a multi-year history compressed into `sessions` commit-sized
//! batches, interleaved with query/check/digest read load.
//!
//! Everything is driven by one `SplitMix64` seed: the same
//! [`TraceConfig`] always yields a byte-identical [`Trace::render`]
//! (tested), so an SLO run is reproducible in op sequence from its seed
//! and two machines can compare numbers for *the same* workload.
//!
//! The crate is symbolic and dependency-free: ops are plain strings in
//! user vocabulary (`T@S` type references, GOM source text), with no
//! knowledge of the wire protocol — the load driver in `gom-bench` maps
//! [`TraceOp`] onto gom-wire requests. The generator tracks a symbolic
//! schema state (which types exist, which attributes each has) so every
//! generated op is valid when replayed in order: deletes never target a
//! missing attribute, renames never collide, and deleted types only ever
//! had builtin-domain attributes (safe under `restrict` semantics).

/// Weighted operation mix (relative weights, not percentages).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MixWeights {
    /// Add an attribute to an existing type.
    pub add_attr: u32,
    /// Define a new type (in its own fresh schema).
    pub add_type: u32,
    /// Delete an existing attribute.
    pub del_attr: u32,
    /// Delete an existing type (`restrict` semantics).
    pub del_type: u32,
    /// Rename an attribute (replayed as delete + add, same domain).
    pub rename_attr: u32,
    /// Change an attribute's domain (replayed as delete + add).
    pub retype_attr: u32,
}

impl MixWeights {
    /// The empirical distribution from Piccioni et al.: additions
    /// dominate (~65%), deletions are moderate (~20%), renames and type
    /// changes are rare (~15% combined).
    pub fn piccioni() -> MixWeights {
        MixWeights {
            add_attr: 40,
            add_type: 25,
            del_attr: 15,
            del_type: 5,
            rename_attr: 7,
            retype_attr: 8,
        }
    }

    /// Sum of all weights (0 is rejected by [`generate`]).
    pub fn total(&self) -> u64 {
        [
            self.add_attr,
            self.add_type,
            self.del_attr,
            self.del_type,
            self.rename_attr,
            self.retype_attr,
        ]
        .iter()
        .map(|&w| u64::from(w))
        .sum()
    }
}

impl Default for MixWeights {
    fn default() -> MixWeights {
        MixWeights::piccioni()
    }
}

/// Trace generation parameters.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// PRNG seed — same seed, same config ⇒ byte-identical trace.
    pub seed: u64,
    /// Number of evolution sessions (commit-sized op batches).
    pub sessions: usize,
    /// Operations per session are drawn uniformly from
    /// `[1, max_ops_per_session]`.
    pub max_ops_per_session: usize,
    /// Read ops (query/check/digest) interleaved per session.
    pub reads_per_session: usize,
    /// Types created before session 0 so the early mix is not forced
    /// into additions (deletes need something to delete).
    pub bootstrap_types: usize,
    /// Starting value for the global name counters. A multi-writer load
    /// driver generates one trace per writer; giving each a disjoint
    /// range (e.g. `writer_index * 1_000_000`) guarantees two writers
    /// never collide on a schema/type/attribute name, so their sessions
    /// commute regardless of commit interleaving.
    pub name_offset: u64,
    /// The operation mix.
    pub mix: MixWeights,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            seed: 0x9E37_79B9,
            sessions: 200,
            max_ops_per_session: 4,
            reads_per_session: 3,
            bootstrap_types: 6,
            name_offset: 0,
            mix: MixWeights::piccioni(),
        }
    }
}

/// One evolution operation, in user vocabulary. `ty` references are
/// always fully qualified (`Name@Schema`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// Define a new type `ty` in a fresh schema `schema`, with the given
    /// `(name, builtin-domain)` attributes. Replayed as GOM source
    /// ([`TraceOp::gom_source`]).
    DefineType {
        /// Schema name (fresh per type: re-defining an existing schema
        /// is an error in the analyzer).
        schema: String,
        /// Type name.
        ty: String,
        /// Initial attributes as `(name, domain)` pairs.
        attrs: Vec<(String, String)>,
    },
    /// Add attribute `name : domain` to `ty`.
    AddAttr {
        /// Qualified type reference.
        ty: String,
        /// New attribute name.
        name: String,
        /// Builtin domain name.
        domain: String,
    },
    /// Delete attribute `name` from `ty`.
    DelAttr {
        /// Qualified type reference.
        ty: String,
        /// Attribute name.
        name: String,
    },
    /// Delete `ty` entirely (`restrict` semantics — generated types only
    /// carry builtin-domain attributes, so nothing references them).
    DelType {
        /// Qualified type reference.
        ty: String,
    },
    /// Rename attribute `from` to `to` on `ty` (domain preserved).
    /// The wire has no rename primitive: replay as DelAttr + AddAttr.
    RenameAttr {
        /// Qualified type reference.
        ty: String,
        /// Old attribute name.
        from: String,
        /// New attribute name.
        to: String,
        /// The attribute's (unchanged) domain.
        domain: String,
    },
    /// Change attribute `name`'s domain on `ty`. Replay as DelAttr +
    /// AddAttr with the new domain.
    RetypeAttr {
        /// Qualified type reference.
        ty: String,
        /// Attribute name.
        name: String,
        /// Previous domain.
        from_domain: String,
        /// New domain (differs from `from_domain`).
        to_domain: String,
    },
}

impl TraceOp {
    /// Stable kind name (the mix-accounting key).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceOp::DefineType { .. } => "add_type",
            TraceOp::AddAttr { .. } => "add_attr",
            TraceOp::DelAttr { .. } => "del_attr",
            TraceOp::DelType { .. } => "del_type",
            TraceOp::RenameAttr { .. } => "rename_attr",
            TraceOp::RetypeAttr { .. } => "retype_attr",
        }
    }

    /// GOM source for a [`TraceOp::DefineType`] (`None` for other ops).
    pub fn gom_source(&self) -> Option<String> {
        let TraceOp::DefineType { schema, ty, attrs } = self else {
            return None;
        };
        let mut src = format!("schema {schema} is\n  type {ty} is\n    [ ");
        for (name, domain) in attrs {
            src.push_str(&format!("{name} : {domain}; "));
        }
        src.push_str(&format!("]\n  end type {ty};\nend schema {schema};\n"));
        Some(src)
    }
}

/// One read operation interleaved with the write load.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadOp {
    /// Datalog query body against the published snapshot.
    Query(String),
    /// Full consistency check of the published snapshot.
    Check,
    /// Epoch + state digest.
    Digest,
}

/// One evolution session: the write ops committed as a batch, plus the
/// read ops a concurrent reader interleaves while the session runs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Session {
    /// Write ops, applied in order inside one BES…EES bracket.
    pub ops: Vec<TraceOp>,
    /// Read load interleaved with this session.
    pub reads: Vec<ReadOp>,
}

/// A generated trace: `sessions` write batches with interleaved reads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// The seed that produced this trace.
    pub seed: u64,
    /// The sessions, in replay order.
    pub sessions: Vec<Session>,
}

/// SplitMix64 — the workspace's standard deterministic PRNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)` (bound ≥ 1).
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

const DOMAINS: [&str; 3] = ["int", "float", "string"];

/// Symbolic state of one generated type.
struct TypeState {
    schema: String,
    name: String,
    attrs: Vec<(String, String)>,
}

impl TypeState {
    fn qualified(&self) -> String {
        format!("{}@{}", self.name, self.schema)
    }
}

/// The generator: symbolic schema state + global name counters, so every
/// emitted name is fresh and the op stream is valid by construction.
struct Gen {
    rng: Rng,
    types: Vec<TypeState>,
    next_type: u64,
    next_attr: u64,
}

impl Gen {
    fn new(seed: u64, name_offset: u64) -> Gen {
        Gen {
            rng: Rng(seed),
            types: Vec::new(),
            next_type: name_offset,
            next_attr: name_offset,
        }
    }

    fn fresh_attr(&mut self) -> String {
        let n = self.next_attr;
        self.next_attr += 1;
        format!("a{n}")
    }

    fn domain(&mut self) -> String {
        DOMAINS[self.rng.below(DOMAINS.len() as u64) as usize].to_string()
    }

    fn define_type(&mut self) -> TraceOp {
        let n = self.next_type;
        self.next_type += 1;
        // One fresh schema per type: the analyzer rejects re-defining an
        // existing schema, and per-type schemas keep deletes independent.
        let schema = format!("Load{n}");
        let ty = format!("T{n}");
        let attr_count = 1 + self.rng.below(3) as usize;
        let attrs: Vec<(String, String)> = (0..attr_count)
            .map(|_| {
                let a = self.fresh_attr();
                let d = self.domain();
                (a, d)
            })
            .collect();
        self.types.push(TypeState {
            schema: schema.clone(),
            name: ty.clone(),
            attrs: attrs.clone(),
        });
        TraceOp::DefineType { schema, ty, attrs }
    }

    /// Index of a random type that has at least one attribute.
    fn type_with_attr(&mut self) -> Option<usize> {
        let candidates: Vec<usize> = (0..self.types.len())
            .filter(|&i| !self.types[i].attrs.is_empty())
            .collect();
        if candidates.is_empty() {
            return None;
        }
        Some(candidates[self.rng.below(candidates.len() as u64) as usize])
    }

    /// Draw one op per the mix, falling back to `add_type` when the
    /// drawn kind has no valid target yet (empty base, attr-less types).
    fn draw_op(&mut self, mix: &MixWeights) -> TraceOp {
        let roll = self.rng.below(mix.total());
        let mut acc = u64::from(mix.add_attr);
        if roll < acc {
            if let Some(i) = self.type_with_attr().or(if self.types.is_empty() {
                None
            } else {
                Some(self.rng.below(self.types.len() as u64) as usize)
            }) {
                let name = self.fresh_attr();
                let domain = self.domain();
                let t = &mut self.types[i];
                t.attrs.push((name.clone(), domain.clone()));
                return TraceOp::AddAttr {
                    ty: self.types[i].qualified(),
                    name,
                    domain,
                };
            }
            return self.define_type();
        }
        acc += u64::from(mix.add_type);
        if roll < acc {
            return self.define_type();
        }
        acc += u64::from(mix.del_attr);
        if roll < acc {
            if let Some(i) = self.type_with_attr() {
                let t = &mut self.types[i];
                let k = self.rng.below(t.attrs.len() as u64) as usize;
                let (name, _) = self.types[i].attrs.remove(k);
                return TraceOp::DelAttr {
                    ty: self.types[i].qualified(),
                    name,
                };
            }
            return self.define_type();
        }
        acc += u64::from(mix.del_type);
        if roll < acc {
            // Keep at least two types alive so the base never drains.
            if self.types.len() > 2 {
                let i = self.rng.below(self.types.len() as u64) as usize;
                let t = self.types.remove(i);
                return TraceOp::DelType { ty: t.qualified() };
            }
            return self.define_type();
        }
        acc += u64::from(mix.rename_attr);
        if roll < acc {
            if let Some(i) = self.type_with_attr() {
                let to = self.fresh_attr();
                let t = &mut self.types[i];
                let k = self.rng.below(t.attrs.len() as u64) as usize;
                let (from, domain) = t.attrs[k].clone();
                t.attrs[k] = (to.clone(), domain.clone());
                return TraceOp::RenameAttr {
                    ty: self.types[i].qualified(),
                    from,
                    to,
                    domain,
                };
            }
            return self.define_type();
        }
        // retype_attr
        if let Some(i) = self.type_with_attr() {
            let t = &mut self.types[i];
            let k = self.rng.below(t.attrs.len() as u64) as usize;
            let (name, from_domain) = t.attrs[k].clone();
            let to_domain = DOMAINS
                .iter()
                .map(|d| d.to_string())
                .cycle()
                .skip_while(|d| *d != from_domain)
                .nth(1 + self.rng.below(DOMAINS.len() as u64 - 1) as usize % (DOMAINS.len() - 1))
                .unwrap_or_else(|| DOMAINS[0].to_string());
            t.attrs[k] = (name.clone(), to_domain.clone());
            return TraceOp::RetypeAttr {
                ty: self.types[i].qualified(),
                name,
                from_domain,
                to_domain,
            };
        }
        self.define_type()
    }

    fn draw_read(&mut self) -> ReadOp {
        match self.rng.below(4) {
            0 => ReadOp::Check,
            1 => ReadOp::Digest,
            2 => ReadOp::Query("Type(T, N, S)".to_string()),
            _ => ReadOp::Query("Attr(T, N, D)".to_string()),
        }
    }
}

/// Generate a trace from `cfg`. Deterministic: equal configs yield equal
/// (byte-identical once rendered) traces.
pub fn generate(cfg: &TraceConfig) -> Trace {
    let mut g = Gen::new(cfg.seed, cfg.name_offset);
    let mut sessions = Vec::with_capacity(cfg.sessions);
    let mix = if cfg.mix.total() == 0 {
        MixWeights::piccioni()
    } else {
        cfg.mix
    };
    for s in 0..cfg.sessions {
        let mut session = Session::default();
        if s == 0 {
            for _ in 0..cfg.bootstrap_types {
                session.ops.push(g.define_type());
            }
        }
        let ops = 1 + g.rng.below(cfg.max_ops_per_session.max(1) as u64) as usize;
        for _ in 0..ops {
            let op = g.draw_op(&mix);
            session.ops.push(op);
        }
        for _ in 0..cfg.reads_per_session {
            session.reads.push(g.draw_read());
        }
        sessions.push(session);
    }
    Trace {
        seed: cfg.seed,
        sessions,
    }
}

impl Trace {
    /// Total number of write ops across all sessions.
    pub fn op_count(&self) -> usize {
        self.sessions.iter().map(|s| s.ops.len()).sum()
    }

    /// Op counts by kind, as `(kind, count)` in mix order.
    pub fn op_mix_counts(&self) -> Vec<(&'static str, u64)> {
        let mut counts = [
            ("add_attr", 0u64),
            ("add_type", 0u64),
            ("del_attr", 0u64),
            ("del_type", 0u64),
            ("rename_attr", 0u64),
            ("retype_attr", 0u64),
        ];
        for s in &self.sessions {
            for op in &s.ops {
                let kind = op.kind();
                for c in &mut counts {
                    if c.0 == kind {
                        c.1 += 1;
                    }
                }
            }
        }
        counts.to_vec()
    }

    /// Render the trace as deterministic text — the byte-identity anchor
    /// for the determinism guarantee, and a human-auditable record of the
    /// exact replayed workload.
    pub fn render(&self) -> String {
        let mut out = format!(
            "# gom-trace/v1 seed={} sessions={}\n",
            self.seed,
            self.sessions.len()
        );
        for (i, s) in self.sessions.iter().enumerate() {
            out.push_str(&format!("session {i}\n"));
            for op in &s.ops {
                match op {
                    TraceOp::DefineType { schema, ty, attrs } => {
                        out.push_str(&format!("  op add-type {ty}@{schema}"));
                        for (a, d) in attrs {
                            out.push_str(&format!(" {a}:{d}"));
                        }
                        out.push('\n');
                    }
                    TraceOp::AddAttr { ty, name, domain } => {
                        out.push_str(&format!("  op add-attr {ty} {name} {domain}\n"));
                    }
                    TraceOp::DelAttr { ty, name } => {
                        out.push_str(&format!("  op del-attr {ty} {name}\n"));
                    }
                    TraceOp::DelType { ty } => {
                        out.push_str(&format!("  op del-type {ty} restrict\n"));
                    }
                    TraceOp::RenameAttr {
                        ty,
                        from,
                        to,
                        domain,
                    } => {
                        out.push_str(&format!("  op rename-attr {ty} {from} {to} {domain}\n"));
                    }
                    TraceOp::RetypeAttr {
                        ty,
                        name,
                        from_domain,
                        to_domain,
                    } => {
                        out.push_str(&format!(
                            "  op retype-attr {ty} {name} {from_domain} {to_domain}\n"
                        ));
                    }
                }
            }
            for r in &s.reads {
                match r {
                    ReadOp::Query(q) => out.push_str(&format!("  read query {q}\n")),
                    ReadOp::Check => out.push_str("  read check\n"),
                    ReadOp::Digest => out.push_str("  read digest\n"),
                }
            }
        }
        out
    }

    /// CRC-32 (IEEE) of the rendered trace — a compact fingerprint the
    /// SLO report embeds so two runs can prove they replayed the same
    /// op sequence.
    pub fn crc32(&self) -> u32 {
        let mut crc: u32 = !0;
        for &b in self.render().as_bytes() {
            crc ^= u32::from(b);
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
        !crc
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn same_seed_is_byte_identical() {
        let cfg = TraceConfig {
            seed: 42,
            sessions: 50,
            ..TraceConfig::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.crc32(), b.crc32());
        // A different seed diverges.
        let c = generate(&TraceConfig { seed: 43, ..cfg });
        assert_ne!(a.render(), c.render());
        assert_ne!(a.crc32(), c.crc32());
    }

    #[test]
    fn op_mix_lands_within_tolerance() {
        let cfg = TraceConfig {
            seed: 7,
            sessions: 1500,
            max_ops_per_session: 4,
            reads_per_session: 1,
            bootstrap_types: 8,
            name_offset: 0,
            mix: MixWeights::piccioni(),
        };
        let trace = generate(&cfg);
        let counts: HashMap<&str, u64> = trace.op_mix_counts().into_iter().collect();
        let total: u64 = counts.values().sum();
        assert!(total > 2000, "need a large sample, got {total}");
        let expect = |w: u32| f64::from(w) / cfg.mix.total() as f64;
        // Fallbacks inflate add_type slightly (invalid draws degrade to
        // it), so allow ±5 percentage points around the configured share.
        for (kind, weight) in [
            ("add_attr", cfg.mix.add_attr),
            ("add_type", cfg.mix.add_type),
            ("del_attr", cfg.mix.del_attr),
            ("del_type", cfg.mix.del_type),
            ("rename_attr", cfg.mix.rename_attr),
            ("retype_attr", cfg.mix.retype_attr),
        ] {
            let actual = counts[kind] as f64 / total as f64;
            let want = expect(weight);
            assert!(
                (actual - want).abs() < 0.05,
                "{kind}: got {actual:.3}, want {want:.3} ±0.05"
            );
        }
    }

    /// Replay the symbolic op stream against a model schema map and
    /// verify every op is valid at its point in the sequence.
    #[test]
    fn generated_ops_are_valid_in_order() {
        let cfg = TraceConfig {
            seed: 99,
            sessions: 300,
            ..TraceConfig::default()
        };
        let trace = generate(&cfg);
        let mut state: HashMap<String, Vec<String>> = HashMap::new();
        for s in &trace.sessions {
            for op in &s.ops {
                match op {
                    TraceOp::DefineType { schema, ty, attrs } => {
                        let q = format!("{ty}@{schema}");
                        assert!(!state.contains_key(&q), "redefined {q}");
                        let names: Vec<String> = attrs.iter().map(|(a, _)| a.clone()).collect();
                        let mut dedup = names.clone();
                        dedup.sort();
                        dedup.dedup();
                        assert_eq!(dedup.len(), names.len(), "dup attr in {q}");
                        state.insert(q, names);
                    }
                    TraceOp::AddAttr { ty, name, .. } => {
                        let attrs = state.get_mut(ty).unwrap_or_else(|| panic!("no {ty}"));
                        assert!(!attrs.contains(name), "dup add {name} on {ty}");
                        attrs.push(name.clone());
                    }
                    TraceOp::DelAttr { ty, name } => {
                        let attrs = state.get_mut(ty).unwrap_or_else(|| panic!("no {ty}"));
                        let before = attrs.len();
                        attrs.retain(|a| a != name);
                        assert_eq!(attrs.len(), before - 1, "missing {name} on {ty}");
                    }
                    TraceOp::DelType { ty } => {
                        assert!(state.remove(ty).is_some(), "deleted missing {ty}");
                    }
                    TraceOp::RenameAttr { ty, from, to, .. } => {
                        let attrs = state.get_mut(ty).unwrap_or_else(|| panic!("no {ty}"));
                        assert!(attrs.contains(from), "rename missing {from} on {ty}");
                        assert!(!attrs.contains(to), "rename collision {to} on {ty}");
                        attrs.retain(|a| a != from);
                        attrs.push(to.clone());
                    }
                    TraceOp::RetypeAttr {
                        ty,
                        name,
                        from_domain,
                        to_domain,
                    } => {
                        let attrs = state.get(ty).unwrap_or_else(|| panic!("no {ty}"));
                        assert!(attrs.contains(name), "retype missing {name} on {ty}");
                        assert_ne!(from_domain, to_domain, "no-op retype on {ty}");
                    }
                }
            }
        }
    }

    #[test]
    fn gom_source_emission_matches_the_grammar_shape() {
        let op = TraceOp::DefineType {
            schema: "Load0".into(),
            ty: "T0".into(),
            attrs: vec![("a0".into(), "int".into()), ("a1".into(), "string".into())],
        };
        let src = op.gom_source().unwrap();
        assert!(src.starts_with("schema Load0 is"), "{src}");
        assert!(src.contains("type T0 is"), "{src}");
        assert!(src.contains("a0 : int;"), "{src}");
        assert!(src.contains("a1 : string;"), "{src}");
        assert!(src.contains("end type T0;"), "{src}");
        assert!(src.trim_end().ends_with("end schema Load0;"), "{src}");
        assert!(TraceOp::DelType { ty: "x".into() }.gom_source().is_none());
    }

    #[test]
    fn name_offsets_keep_writer_partitions_disjoint() {
        let names = |offset: u64| {
            let cfg = TraceConfig {
                seed: 5,
                sessions: 40,
                name_offset: offset,
                ..TraceConfig::default()
            };
            let mut out = Vec::new();
            for s in generate(&cfg).sessions {
                for op in s.ops {
                    if let TraceOp::DefineType { schema, ty, attrs } = op {
                        out.push(schema);
                        out.push(ty);
                        out.extend(attrs.into_iter().map(|(a, _)| a));
                    }
                }
            }
            out
        };
        let a = names(0);
        let b = names(1_000_000);
        assert!(!a.is_empty() && !b.is_empty());
        for n in &a {
            assert!(!b.contains(n), "name {n} appears in both partitions");
        }
    }

    #[test]
    fn reads_and_sessions_follow_config() {
        let cfg = TraceConfig {
            seed: 1,
            sessions: 30,
            max_ops_per_session: 2,
            reads_per_session: 5,
            bootstrap_types: 3,
            ..TraceConfig::default()
        };
        let t = generate(&cfg);
        assert_eq!(t.sessions.len(), 30);
        for (i, s) in t.sessions.iter().enumerate() {
            assert_eq!(s.reads.len(), 5);
            let max = if i == 0 { 3 + 2 } else { 2 };
            assert!(
                (1..=max).contains(&s.ops.len()),
                "session {i}: {}",
                s.ops.len()
            );
        }
        // Bootstrap types land at the head of session 0.
        assert!(matches!(t.sessions[0].ops[0], TraceOp::DefineType { .. }));
    }
}
