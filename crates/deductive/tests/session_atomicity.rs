//! Property tests for session atomicity and evaluation-panic containment.
//!
//! * `bes → random updates → rollback` must leave the database
//!   bit-identical: base facts, index contents (including recycled tuple
//!   storage observable through the indexes), and — after re-deriving —
//!   the IDB. Checked through [`Database::debug_state_digest`], which
//!   renders facts and every index's live rows interner-independently.
//! * a panic inside a fixpoint evaluation worker must surface as
//!   [`Error::EvalPanic`], leave the database usable, and leave an open
//!   session rollbackable — exercised deterministically through the
//!   `set_eval_failpoint` hook on both the inline and the multi-threaded
//!   evaluation paths.

use gom_deductive::{Const, Database, Error, Tuple};

/// SplitMix64 — deterministic, dependency-free (same generator as
/// `planned_equivalence.rs`).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self, pct: u64) -> bool {
        self.next() % 100 < pct
    }
}

const DOMAIN: i64 = 7;

/// A database with recursion (transitive closure) and negation, so both
/// semi-naive deltas and stratified evaluation run over the session data.
fn build(rng: &mut Rng) -> Database {
    let mut db = Database::new();
    db.load(
        "base Edge(a, b).
         base Mark(a).
         derived Path(a, b).
         derived Unreached(a).
         Path(X, Y) :- Edge(X, Y).
         Path(X, Z) :- Path(X, Y), Edge(Y, Z).
         Unreached(X) :- Mark(X), not Path(0, X).",
    )
    .expect("program");
    let edge = db.pred_id("Edge").expect("Edge");
    let mark = db.pred_id("Mark").expect("Mark");
    for _ in 0..(5 + rng.below(25)) {
        let t = Tuple::from(vec![
            Const::Int(rng.below(DOMAIN as usize) as i64),
            Const::Int(rng.below(DOMAIN as usize) as i64),
        ]);
        db.insert(edge, t).expect("insert");
    }
    for _ in 0..rng.below(6) {
        let t = Tuple::from(vec![Const::Int(rng.below(DOMAIN as usize) as i64)]);
        db.insert(mark, t).expect("insert");
    }
    db
}

fn random_tuple(rng: &mut Rng, arity: usize) -> Tuple {
    Tuple::from(
        (0..arity)
            .map(|_| Const::Int(rng.below(DOMAIN as usize) as i64))
            .collect::<Vec<_>>(),
    )
}

/// bes → random inserts/removes (duplicates and misses included) →
/// rollback leaves the EDB, the indexes, and the re-derived IDB
/// bit-identical to the pre-session state, on every seed.
#[test]
fn rollback_restores_bit_identical_state() {
    for seed in 0..40u64 {
        let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9) + 1);
        let mut db = build(&mut rng);
        db.evaluate().expect("evaluate");
        let before = db.debug_state_digest();
        let facts_before = db.fact_count();

        let edge = db.pred_id("Edge").expect("Edge");
        let mark = db.pred_id("Mark").expect("Mark");
        db.begin_session().expect("bes");
        for _ in 0..(1 + rng.below(30)) {
            let (pred, arity) = if rng.chance(70) { (edge, 2) } else { (mark, 1) };
            let t = random_tuple(&mut rng, arity);
            if rng.chance(60) {
                db.insert(pred, t).expect("insert");
            } else {
                db.remove(pred, &t).expect("remove");
            }
            // Occasionally evaluate mid-session: deferred checking allows
            // it, and it exercises incremental index maintenance on the
            // session's dirty state.
            if rng.chance(15) {
                db.evaluate().expect("mid-session evaluate");
            }
        }
        db.rollback_session().expect("rollback");
        assert_eq!(
            db.fact_count(),
            facts_before,
            "seed {seed}: fact count must be restored"
        );
        // The IDB is re-derived, never patched: after rollback the fixpoint
        // must reproduce the exact pre-session state.
        db.evaluate().expect("re-evaluate");
        assert_eq!(
            db.debug_state_digest(),
            before,
            "seed {seed}: rollback must restore facts and indexes bit-identically"
        );
    }
}

/// Committing is not the inverse test, but it anchors the digest: a session
/// that inserts and then removes the same fresh tuple commits to the same
/// digest as no session at all (recycled buffers included).
#[test]
fn self_cancelling_session_commits_to_identical_state() {
    let mut rng = Rng(0xD1D_0001);
    let mut db = build(&mut rng);
    db.evaluate().expect("evaluate");
    let before = db.debug_state_digest();

    let edge = db.pred_id("Edge").expect("Edge");
    // A tuple outside the generated domain, so it is guaranteed fresh.
    let t = Tuple::from(vec![Const::Int(100), Const::Int(101)]);
    db.begin_session().expect("bes");
    assert!(db.insert(edge, t.clone()).expect("insert"));
    db.evaluate().expect("evaluate with tuple present");
    assert!(db.remove(edge, &t).expect("remove"));
    db.commit_session().expect("ees");
    db.evaluate().expect("re-evaluate");
    assert_eq!(db.debug_state_digest(), before);
}

fn eval_panic_is_contained(threads: usize) {
    let mut rng = Rng(0xEE7 + threads as u64);
    let mut db = build(&mut rng);
    db.set_eval_threads(threads);
    db.evaluate().expect("healthy evaluate");
    let before = db.debug_state_digest();

    let edge = db.pred_id("Edge").expect("Edge");
    db.begin_session().expect("bes");
    db.insert(edge, Tuple::from(vec![Const::Int(1), Const::Int(2)]))
        .expect("insert");

    db.set_eval_failpoint(true);
    let err = db.evaluate().expect_err("failpoint must surface");
    assert!(
        matches!(err, Error::EvalPanic(_)),
        "threads={threads}: expected EvalPanic, got {err:?}"
    );
    assert!(
        db.in_session(),
        "threads={threads}: the session survives the panic"
    );

    // The database stays usable: clear the failpoint, evaluate again,
    // roll the session back, and verify bit-identical restoration.
    db.set_eval_failpoint(false);
    db.evaluate()
        .unwrap_or_else(|e| panic!("threads={threads}: db unusable after contained panic: {e}"));
    db.rollback_session().expect("rollback after panic");
    db.evaluate().expect("re-evaluate");
    assert_eq!(
        db.debug_state_digest(),
        before,
        "threads={threads}: contained panic + rollback must restore state"
    );
}

/// A worker panic on the single-threaded (inline) evaluation path becomes
/// `Error::EvalPanic`; the session stays open and rollbackable.
#[test]
fn eval_panic_contained_inline() {
    eval_panic_is_contained(1);
}

/// Same containment on the multi-threaded scoped-worker path.
#[test]
fn eval_panic_contained_threaded() {
    eval_panic_is_contained(4);
}
