#![cfg(feature = "proptest-tests")]
// Gated: requires the external `proptest` crate (no offline mirror).
// See the `proptest-tests` feature note in Cargo.toml.

//! Property test: the constraint compiler is equivalent to naive FOL model
//! checking.
//!
//! For random range-restricted constraints of the supported normal form
//! `forall X̄: premise -> conclusion` and random extensional databases, a
//! constraint must be *violated* under the compiled violation rules exactly
//! when the formula evaluates to *false* under naive first-order semantics
//! over the database's active domain.

use gom_deductive::ast::{Atom, CmpOp, Term, Var};
use gom_deductive::constraint::{Constraint, Formula};
use gom_deductive::{Const, Database, PredId, Tuple};
use proptest::prelude::*;

const DOMAIN: i64 = 4; // constants 0..DOMAIN

/// Predicates: P/1, Q/2, R/2 — all base.
fn setup_db(
    p_facts: &[i64],
    q_facts: &[(i64, i64)],
    r_facts: &[(i64, i64)],
) -> (Database, PredId, PredId, PredId) {
    let mut db = Database::new();
    let p = db.declare_base("P", 1).unwrap();
    let q = db.declare_base("Q", 2).unwrap();
    let r = db.declare_base("R", 2).unwrap();
    for &a in p_facts {
        db.insert(p, vec![Const::Int(a)]).unwrap();
    }
    for &(a, b) in q_facts {
        db.insert(q, vec![Const::Int(a), Const::Int(b)]).unwrap();
    }
    for &(a, b) in r_facts {
        db.insert(r, vec![Const::Int(a), Const::Int(b)]).unwrap();
    }
    (db, p, q, r)
}

/// A generated conclusion, using only variables `0..avail` plus fresh
/// existentials.
#[derive(Clone, Debug)]
enum GenF {
    AtomP(u32),
    AtomQ(u32, u32),
    Cmp(CmpOp, u32, u32),
    And(Vec<GenF>),
    Or(Vec<GenF>),
    NotAtomP(u32),
    /// exists y: R(x, y) — fresh var
    ExistsR(u32),
    /// exists y: R(x, y) & P(y)
    ExistsRP(u32),
    /// forall y: R(x, y) -> P(y)
    ForallRP(u32),
    True,
    False,
}

fn genf_strategy(avail: u32, depth: u32) -> BoxedStrategy<GenF> {
    let leaf = prop_oneof![
        (0..avail).prop_map(GenF::AtomP),
        (0..avail, 0..avail).prop_map(|(a, b)| GenF::AtomQ(a, b)),
        (0..avail, 0..avail).prop_map(|(a, b)| GenF::Cmp(CmpOp::Eq, a, b)),
        (0..avail, 0..avail).prop_map(|(a, b)| GenF::Cmp(CmpOp::Ne, a, b)),
        (0..avail).prop_map(GenF::NotAtomP),
        (0..avail).prop_map(GenF::ExistsR),
        (0..avail).prop_map(GenF::ExistsRP),
        (0..avail).prop_map(GenF::ForallRP),
        Just(GenF::True),
        Just(GenF::False),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        let inner = genf_strategy(avail, depth - 1);
        prop_oneof![
            4 => leaf,
            1 => proptest::collection::vec(inner.clone(), 1..3).prop_map(GenF::And),
            1 => proptest::collection::vec(inner, 1..3).prop_map(GenF::Or),
        ]
        .boxed()
    }
}

/// Turn a generated conclusion into a Formula, allocating fresh variables
/// for existentials/universals starting at `next`.
fn to_formula(g: &GenF, p: PredId, q: PredId, r: PredId, next: &mut u32) -> Formula {
    match g {
        GenF::AtomP(x) => Formula::Atom(Atom::new(p, vec![Term::Var(Var(*x))])),
        GenF::AtomQ(x, y) => {
            Formula::Atom(Atom::new(q, vec![Term::Var(Var(*x)), Term::Var(Var(*y))]))
        }
        GenF::Cmp(op, x, y) => Formula::Cmp(*op, Term::Var(Var(*x)), Term::Var(Var(*y))),
        GenF::And(fs) => Formula::and(fs.iter().map(|f| to_formula(f, p, q, r, next)).collect()),
        GenF::Or(fs) => Formula::or(fs.iter().map(|f| to_formula(f, p, q, r, next)).collect()),
        GenF::NotAtomP(x) => Formula::Not(Box::new(Formula::Atom(Atom::new(
            p,
            vec![Term::Var(Var(*x))],
        )))),
        GenF::ExistsR(x) => {
            let y = Var(*next);
            *next += 1;
            Formula::Exists(
                vec![y],
                Box::new(Formula::Atom(Atom::new(
                    r,
                    vec![Term::Var(Var(*x)), Term::Var(y)],
                ))),
            )
        }
        GenF::ExistsRP(x) => {
            let y = Var(*next);
            *next += 1;
            Formula::Exists(
                vec![y],
                Box::new(Formula::And(vec![
                    Formula::Atom(Atom::new(r, vec![Term::Var(Var(*x)), Term::Var(y)])),
                    Formula::Atom(Atom::new(p, vec![Term::Var(y)])),
                ])),
            )
        }
        GenF::ForallRP(x) => {
            let y = Var(*next);
            *next += 1;
            Formula::Forall(
                vec![y],
                Box::new(Formula::Implies(
                    Box::new(Formula::Atom(Atom::new(
                        r,
                        vec![Term::Var(Var(*x)), Term::Var(y)],
                    ))),
                    Box::new(Formula::Atom(Atom::new(p, vec![Term::Var(y)]))),
                )),
            )
        }
        GenF::True => Formula::True,
        GenF::False => Formula::False,
    }
}

/// Naive FOL evaluation over the finite domain 0..DOMAIN.
fn naive_eval(f: &Formula, env: &mut Vec<Option<i64>>, db: &Database) -> bool {
    fn term_val(t: Term, env: &[Option<i64>]) -> i64 {
        match t {
            Term::Const(Const::Int(n)) => n,
            Term::Var(v) => env[v.index()].expect("bound"),
            Term::Const(Const::Sym(_)) => unreachable!("int-only test"),
        }
    }
    match f {
        Formula::True => true,
        Formula::False => false,
        Formula::Atom(a) => {
            let tup = Tuple::from(
                a.args
                    .iter()
                    .map(|&t| Const::Int(term_val(t, env)))
                    .collect::<Vec<_>>(),
            );
            db.contains(a.pred, &tup)
        }
        Formula::Cmp(op, l, r) => {
            op.eval(Const::Int(term_val(*l, env)), Const::Int(term_val(*r, env)))
        }
        Formula::And(fs) => fs.iter().all(|g| naive_eval(g, env, db)),
        Formula::Or(fs) => fs.iter().any(|g| naive_eval(g, env, db)),
        Formula::Not(g) => !naive_eval(g, env, db),
        Formula::Implies(a, b) => !naive_eval(a, env, db) || naive_eval(b, env, db),
        Formula::Forall(vs, g) => iterate(vs, g, env, db, true),
        Formula::Exists(vs, g) => iterate(vs, g, env, db, false),
    }
}

fn iterate(
    vs: &[Var],
    g: &Formula,
    env: &mut Vec<Option<i64>>,
    db: &Database,
    forall: bool,
) -> bool {
    fn go(
        vs: &[Var],
        i: usize,
        g: &Formula,
        env: &mut Vec<Option<i64>>,
        db: &Database,
        forall: bool,
    ) -> bool {
        if i == vs.len() {
            return naive_eval(g, env, db);
        }
        let v = vs[i];
        for x in 0..DOMAIN {
            if env.len() <= v.index() {
                env.resize(v.index() + 1, None);
            }
            env[v.index()] = Some(x);
            let sub = go(vs, i + 1, g, env, db, forall);
            env[v.index()] = None;
            if forall && !sub {
                return false;
            }
            if !forall && sub {
                return true;
            }
        }
        forall
    }
    go(vs, 0, g, env, db, forall)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn compiled_violations_equal_naive_falsity(
        p_facts in proptest::collection::vec(0..DOMAIN, 0..5),
        q_facts in proptest::collection::vec((0..DOMAIN, 0..DOMAIN), 0..8),
        r_facts in proptest::collection::vec((0..DOMAIN, 0..DOMAIN), 0..8),
        (n_outer, conclusion) in (1u32..3)
            .prop_flat_map(|n| (Just(n), genf_strategy(n, 1))),
    ) {
        let (mut db, p, q, r) = setup_db(&p_facts, &q_facts, &r_facts);
        // Premise: bind each outer var: X0 via Q(X0, X1)/P, ensure all
        // bound positively. Use Q(X0, X1) when n_outer == 2, else P(X0).
        let outer: Vec<Var> = (0..n_outer).map(Var).collect();
        let premise = if n_outer == 1 {
            Formula::Atom(Atom::new(p, vec![Term::Var(Var(0))]))
        } else {
            Formula::Atom(Atom::new(q, vec![Term::Var(Var(0)), Term::Var(Var(1))]))
        };
        let mut next = n_outer;
        let conclusion_f = to_formula(&conclusion, p, q, r, &mut next);
        let formula = Formula::Forall(
            outer,
            Box::new(Formula::Implies(Box::new(premise), Box::new(conclusion_f))),
        );
        let var_names = (0..next).map(|i| format!("V{i}")).collect();
        let constraint = Constraint::new("prop", var_names, formula.clone());
        db.add_constraint(constraint);

        let compiled_violations = db.check().unwrap();
        let mut env: Vec<Option<i64>> = vec![None; next as usize];
        let naive_holds = naive_eval(&formula, &mut env, &db);

        prop_assert_eq!(
            compiled_violations.is_empty(),
            naive_holds,
            "formula {:?}\nviolations: {:?}",
            formula,
            compiled_violations
                .iter()
                .map(|v| v.render(&db))
                .collect::<Vec<_>>()
        );
    }
}
