//! Allocation accounting for the key-constraint checker.
//!
//! The clean path of a full key check must not clone a single stored tuple:
//! grouping happens by index into the relation's extension, and tuples are
//! cloned only when a violation is materialised. The checker counts every
//! such clone in the `check.keys.clones` counter; this test pins the
//! invariant (0 on clean data, exactly 2 per violating pair).
//!
//! Lives in its own integration-test binary so the process-global gom-obs
//! aggregator is not shared with unrelated tests.

use gom_deductive::{Const, Database};

fn counted_check(db: &mut Database) -> (usize, u64) {
    gom_obs::reset();
    gom_obs::set_enabled(true);
    let violations = db.check().expect("check");
    let clones = gom_obs::snapshot().counter("check.keys.clones");
    gom_obs::set_enabled(false);
    (violations.len(), clones)
}

#[test]
fn clean_key_check_clones_no_tuples() {
    let mut db = Database::new();
    let p = db.declare_base_keyed("P", 2, &[0]).expect("declare");
    for i in 0..500 {
        db.insert(p, vec![Const::Int(i), Const::Int(i * 10)])
            .expect("insert");
    }
    let (violations, clones) = counted_check(&mut db);
    assert_eq!(violations, 0);
    assert_eq!(clones, 0, "clean check must not clone stored tuples");

    // A duplicate key clones exactly the two tuples of the reported pair.
    db.insert(p, vec![Const::Int(7), Const::Int(999)])
        .expect("insert dup");
    let (violations, clones) = counted_check(&mut db);
    assert_eq!(violations, 1);
    assert_eq!(clones, 2, "one violation = one materialised pair");

    // Three facts sharing a key: two adjacent pairs, four clones.
    db.insert(p, vec![Const::Int(7), Const::Int(1000)])
        .expect("insert dup2");
    let (violations, clones) = counted_check(&mut db);
    assert_eq!(violations, 2);
    assert_eq!(clones, 4);
}

#[test]
fn index_grouped_check_matches_selective_check() {
    // The full (index-grouped) scan and the incremental (per-insert probe)
    // path must report the same violating pairs.
    let mut db = Database::new();
    let p = db.declare_base_keyed("P", 3, &[0, 1]).expect("declare");
    for i in 0..80 {
        // (i % 8, i % 5) has period 40, so each key pair occurs exactly twice.
        let t = vec![Const::Int(i % 8), Const::Int(i % 5), Const::Int(i)];
        db.insert(p, t).expect("insert");
    }
    let full: Vec<String> = db
        .check()
        .expect("check")
        .iter()
        .map(|v| format!("{:?}", v.render(&db)))
        .collect();
    assert!(
        !full.is_empty(),
        "the synthetic data must contain key collisions"
    );
    // Every reported constraint is a key violation on P.
    for line in &full {
        assert!(line.contains("key(P)"), "{line}");
    }
}
