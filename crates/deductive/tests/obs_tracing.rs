//! End-to-end tests for the gom-obs JSONL trace: a full fixpoint
//! evaluation under tracing emits a stream every line of which parses
//! with a hand-rolled JSON parser (and survives a serialize → re-parse
//! round trip), carries the expected span names, and the disabled fast
//! path records nothing at all.

mod common;

use common::{build, derived};
use std::io::Write;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// gom-obs state is process-global; tests in this binary must not
/// interleave their enable/disable toggles.
fn lock() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(PoisonError::into_inner)
}

/// An in-memory JSONL sink.
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn new() -> Self {
        SharedBuf(Arc::new(Mutex::new(Vec::new())))
    }

    fn take_string(&self) -> String {
        let b = self.0.lock().unwrap_or_else(PoisonError::into_inner);
        String::from_utf8(b.clone()).expect("trace is valid UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// A tiny hand-rolled JSON parser — the consumer side of the hand-rolled
// writer in gom-obs, deliberately independent of it.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Int(i128),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Serialize back to JSON text (the round-trip half).
    fn emit(&self) -> String {
        match self {
            Json::Null => "null".to_string(),
            Json::Bool(b) => b.to_string(),
            Json::Int(n) => n.to_string(),
            Json::Str(s) => {
                let mut out = String::from("\"");
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
                out
            }
            Json::Arr(items) => {
                let inner: Vec<String> = items.iter().map(Json::emit).collect();
                format!("[{}]", inner.join(","))
            }
            Json::Obj(fields) => {
                let inner: Vec<String> = fields
                    .iter()
                    .map(|(k, v)| format!("{}:{}", Json::Str(k.clone()).emit(), v.emit()))
                    .collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected `{lit}` at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| Json::Null),
            Some(b't') => self.eat("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start || (self.pos == start + 1 && self.bytes[start] == b'-') {
            return Err(format!("bad number at byte {start}"));
        }
        // gom-obs traces contain only integers; a fraction/exponent here is
        // a schema violation worth failing on.
        if self.peek().is_some_and(|b| matches!(b, b'.' | b'e' | b'E')) {
            return Err(format!("non-integer number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<i128>().ok())
            .map(Json::Int)
            .ok_or_else(|| format!("unparseable number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat("\"")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(hex).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through verbatim.
                    let s =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("empty")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat("[")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected , or ] got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat("{")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            let v = self.value()?;
            fields.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected , or }} got {other:?}")),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

/// A full fixpoint evaluation under tracing produces a JSONL stream where
/// every line parses, round-trips, and carries the expected structure.
#[test]
fn full_eval_trace_is_valid_jsonl() {
    let _g = lock();
    // Find a seed whose random EDB actually derives facts (obs still off,
    // so this scan records nothing).
    gom_obs::set_enabled(false);
    let seed = (0..60u64)
        .find(|&s| {
            let mut db = build(s);
            derived(&mut db).iter().any(|rel| !rel.is_empty())
        })
        .expect("some seed derives facts");

    gom_obs::reset();
    let buf = SharedBuf::new();
    gom_obs::set_trace_writer(Box::new(buf.clone()));
    gom_obs::set_enabled(true);

    let mut db = build(seed);
    db.set_eval_threads(2);
    let idb = derived(&mut db);
    assert!(idb.iter().any(|rel| !rel.is_empty()));

    gom_obs::flush_trace();
    gom_obs::set_enabled(false);
    gom_obs::clear_trace();

    let text = buf.take_string();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 4, "expected a header, spans and totals");

    let mut parsed = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let v =
            Parser::parse(line).unwrap_or_else(|e| panic!("line {i} does not parse: {e}\n{line}"));
        // Round trip: serialize the parsed value and parse it again.
        let emitted = v.emit();
        let again = Parser::parse(&emitted)
            .unwrap_or_else(|e| panic!("line {i} does not round-trip: {e}\n{emitted}"));
        assert_eq!(again, v, "line {i} round-trip changed the value");
        parsed.push(v);
    }

    // Header first.
    assert_eq!(
        parsed[0].get("ev").and_then(Json::as_str),
        Some("trace_start")
    );
    assert_eq!(
        parsed[0].get("schema").and_then(Json::as_str),
        Some("gom-obs/trace/v1")
    );

    // Span lines: unique ids, sane durations, the expected names.
    let span_names: Vec<&str> = parsed
        .iter()
        .filter(|v| v.get("ev").and_then(Json::as_str) == Some("span"))
        .filter_map(|v| v.get("name").and_then(Json::as_str))
        .collect();
    assert!(
        span_names.contains(&"eval.fixpoint"),
        "no eval.fixpoint span in {span_names:?}"
    );
    assert!(
        span_names.iter().any(|n| n.starts_with("eval.stratum")),
        "no per-stratum span in {span_names:?}"
    );
    let mut ids: Vec<i128> = parsed
        .iter()
        .filter(|v| v.get("ev").and_then(Json::as_str) == Some("span"))
        .filter_map(|v| v.get("id").and_then(Json::as_int))
        .collect();
    let n = ids.len();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), n, "span ids are not unique");

    // The flushed totals: counters include the derivation volume, span
    // totals include the fixpoint.
    let counters = parsed
        .iter()
        .find(|v| v.get("ev").and_then(Json::as_str) == Some("counters"))
        .and_then(|v| v.get("counters").cloned())
        .expect("a counters line");
    assert!(
        counters
            .get("eval.tuples.derived")
            .and_then(Json::as_int)
            .is_some_and(|n| n > 0),
        "eval.tuples.derived missing from {counters:?}"
    );
    let spans = parsed
        .iter()
        .find(|v| v.get("ev").and_then(Json::as_str) == Some("spans"))
        .and_then(|v| v.get("spans").cloned())
        .expect("a spans line");
    assert!(
        spans
            .get("eval.fixpoint")
            .and_then(|s| s.get("count"))
            .and_then(Json::as_int)
            .is_some_and(|n| n > 0),
        "eval.fixpoint missing from span totals"
    );
}

/// With the collector disabled, a full evaluation records nothing: no
/// counters, no spans, no histograms, and no trace lines beyond the
/// header the sink writes on attach.
#[test]
fn disabled_path_records_nothing_end_to_end() {
    let _g = lock();
    gom_obs::reset();
    let buf = SharedBuf::new();
    gom_obs::set_trace_writer(Box::new(buf.clone()));
    gom_obs::set_enabled(false);

    let mut db = build(7);
    db.set_eval_threads(2);
    let _ = derived(&mut db);

    let snap = gom_obs::snapshot();
    assert!(snap.counters.is_empty(), "counters: {:?}", snap.counters);
    assert!(snap.spans.is_empty(), "spans: {:?}", snap.spans.keys());
    assert!(snap.hists.is_empty(), "hists: {:?}", snap.hists.keys());

    let text = buf.take_string();
    assert_eq!(
        text.lines().count(),
        1,
        "disabled run traced beyond the header:\n{text}"
    );
    gom_obs::clear_trace();
}
