//! Shared fixtures for the differential tests: a deterministic RNG and a
//! generator for randomized stratified programs (recursion + negation)
//! over randomized EDBs. Failures reproduce from the seed printed in the
//! assertion message.

#![allow(dead_code)] // each test binary uses a subset

use gom_deductive::{Const, Database, Tuple};

/// SplitMix64 — deterministic, dependency-free.
pub struct Rng(pub u64);

impl Rng {
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    pub fn chance(&mut self, pct: u64) -> bool {
        self.next() % 100 < pct
    }
}

const VARS: [&str; 4] = ["X", "Y", "Z", "W"];
const DOMAIN: usize = 5;

/// One random rule for `head`, guaranteed range-restricted: head args and
/// negated-literal args are drawn from variables bound by a positive
/// literal. `pos_pool` may include `head` itself (recursion); `neg_pool`
/// holds only strictly-lower predicates, so the program stays stratified.
fn gen_rule(
    rng: &mut Rng,
    head: (&str, usize),
    pos_pool: &[(&str, usize)],
    neg_pool: &[(&str, usize)],
) -> String {
    let mut body: Vec<String> = Vec::new();
    let mut bound: Vec<&str> = Vec::new();
    let n_pos = 1 + rng.below(3);
    for _ in 0..n_pos {
        let (p, ar) = pos_pool[rng.below(pos_pool.len())];
        let args: Vec<String> = (0..ar)
            .map(|_| {
                if rng.chance(20) {
                    rng.below(DOMAIN).to_string()
                } else {
                    let v = VARS[rng.below(VARS.len())];
                    if !bound.contains(&v) {
                        bound.push(v);
                    }
                    v.to_string()
                }
            })
            .collect();
        body.push(format!("{}({})", p, args.join(", ")));
    }
    if bound.is_empty() {
        body.push("B0(X, Y)".to_string());
        bound.extend(["X", "Y"]);
    }
    if !neg_pool.is_empty() && rng.chance(40) {
        let (p, ar) = neg_pool[rng.below(neg_pool.len())];
        let args: Vec<String> = (0..ar)
            .map(|_| {
                if rng.chance(20) {
                    rng.below(DOMAIN).to_string()
                } else {
                    bound[rng.below(bound.len())].to_string()
                }
            })
            .collect();
        body.push(format!("not {}({})", p, args.join(", ")));
    }
    let head_args: Vec<String> = (0..head.1)
        .map(|_| bound[rng.below(bound.len())].to_string())
        .collect();
    format!(
        "{}({}) :- {}.",
        head.0,
        head_args.join(", "),
        body.join(", ")
    )
}

/// A random stratified program over fixed predicates, plus a random EDB.
pub fn build(seed: u64) -> Database {
    let mut rng = Rng(seed);
    let b0 = ("B0", 2usize);
    let b1 = ("B1", 1usize);
    let d0 = ("D0", 2usize);
    let d1 = ("D1", 2usize);
    let d2 = ("D2", 1usize);

    let mut text = String::from(
        "base B0(a, b).
         base B1(a).
         derived D0(a, b).
         derived D1(a, b).
         derived D2(a).\n",
    );
    // Stratum 0: D0 over bases + itself. Stratum 1: D1 may negate D0.
    // Stratum 2: D2 may negate D0 and D1.
    for _ in 0..(1 + rng.below(3)) {
        text.push_str(&gen_rule(&mut rng, d0, &[b0, b1, d0], &[]));
        text.push('\n');
    }
    for _ in 0..(1 + rng.below(3)) {
        text.push_str(&gen_rule(&mut rng, d1, &[b0, b1, d0, d1], &[d0]));
        text.push('\n');
    }
    for _ in 0..(1 + rng.below(3)) {
        text.push_str(&gen_rule(&mut rng, d2, &[b0, b1, d0, d1, d2], &[d0, d1]));
        text.push('\n');
    }

    let mut db = Database::new();
    db.load(&text)
        .unwrap_or_else(|e| panic!("seed {seed}: generated program rejected: {e}\n{text}"));
    let pb0 = db.pred_id("B0").unwrap();
    let pb1 = db.pred_id("B1").unwrap();
    for _ in 0..rng.below(20) {
        let t = Tuple::from(vec![
            Const::Int(rng.below(DOMAIN) as i64),
            Const::Int(rng.below(DOMAIN) as i64),
        ]);
        db.insert(pb0, t).unwrap();
    }
    for _ in 0..rng.below(8) {
        let t = Tuple::from(vec![Const::Int(rng.below(DOMAIN) as i64)]);
        db.insert(pb1, t).unwrap();
    }
    db
}

/// The planned engine's extensions for every derived predicate.
pub fn derived(db: &mut Database) -> Vec<Vec<Tuple>> {
    ["D0", "D1", "D2"]
        .iter()
        .map(|p| {
            let id = db.pred_id(p).unwrap();
            db.derived_facts(id).unwrap()
        })
        .collect()
}

/// The naive reference interpreter's extensions.
pub fn reference(db: &mut Database) -> Vec<Vec<Tuple>> {
    ["D0", "D1", "D2"]
        .iter()
        .map(|p| {
            let id = db.pred_id(p).unwrap();
            db.reference_facts(id).unwrap()
        })
        .collect()
}
