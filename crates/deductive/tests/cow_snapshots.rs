//! Copy-on-write snapshot isolation, differentially tested.
//!
//! A long randomized add/remove/compact session takes snapshot handles at
//! several epochs and keeps them alive while the writer keeps churning
//! (including forced compactions, which rewrite the writer's pages). At
//! the end, every old snapshot must still be byte-identical — digest,
//! per-predicate iteration order, and `sorted()` output — to a deep-clone
//! oracle (`deep_snapshot_clone`, the pre-CoW publication path) captured
//! at the same instant. Runs under 1 and 4 evaluation threads, with the
//! fixpoint exercised mid-session so shared pages also serve evaluation.

use gom_deductive::value::Const;
use gom_deductive::{Database, Tuple};

/// splitmix64: deterministic, seed-stable across platforms.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const PROGRAM: &str = "base Edge(a, b).
     base Flag(x).
     derived Reach(a, b).
     Reach(X, Y) :- Edge(X, Y).
     Reach(X, Z) :- Edge(X, Y), Reach(Y, Z).
     constraint no_self_reach \"reachability must be irreflexive\":
       forall X: !Reach(X, X).";

fn pair(a: u64, b: u64) -> Tuple {
    Tuple::from(vec![Const::Int(a as i64), Const::Int(b as i64)])
}

fn one(x: u64) -> Tuple {
    Tuple::from(vec![Const::Int(x as i64)])
}

/// Everything an old snapshot promises to keep byte-stable.
struct Oracle {
    digest: String,
    iter_orders: Vec<Vec<Tuple>>,
    sorted: Vec<Vec<Tuple>>,
    violations: usize,
}

fn run_session(seed: u64, threads: usize) {
    let mut db = Database::new();
    db.load(PROGRAM).expect("program loads");
    db.set_eval_threads(threads);
    let edge = db.pred_id("Edge").expect("Edge");
    let flag = db.pred_id("Flag").expect("Flag");
    let preds = [edge, flag];

    let mut rng = Rng(seed);
    let mut snaps: Vec<(Database, Oracle)> = Vec::new();

    for step in 0..1800u64 {
        match rng.below(10) {
            // Add-dominated mix (Piccioni et al.): mostly inserts.
            0..=5 => {
                let (a, b) = (rng.below(48), rng.below(48));
                db.insert(edge, pair(a, b)).expect("insert");
                if rng.below(4) == 0 {
                    db.insert(flag, one(a)).expect("insert");
                }
            }
            6..=8 => {
                // Remove whatever happens to be stored at a random key —
                // hits often enough to build tombstones.
                let (a, b) = (rng.below(48), rng.below(48));
                db.remove(edge, &pair(a, b)).expect("remove");
            }
            _ => {
                // Periodic purge burst: tombstone enough of one predicate
                // to cross the compaction threshold while snapshots hold
                // the old pages.
                let a = rng.below(48);
                for b in 0..48 {
                    db.remove(edge, &pair(a, b)).expect("remove");
                }
            }
        }

        // Exercise the fixpoint (and index building) on the writer so
        // snapshots are taken from a state with live indexes and caches.
        if step % 400 == 150 {
            db.check().expect("check");
        }

        if step % 300 == 299 {
            let snap = db.snapshot_clone();
            let deep = db.deep_snapshot_clone();
            let oracle = Oracle {
                digest: deep.debug_state_digest(),
                iter_orders: preds
                    .iter()
                    .map(|&p| deep.relation(p).iter().cloned().collect())
                    .collect(),
                sorted: preds.iter().map(|&p| deep.facts_sorted(p)).collect(),
                violations: {
                    let mut d = deep;
                    d.check().expect("oracle check").len()
                },
            };
            snaps.push((snap, oracle));
        }
    }
    assert_eq!(snaps.len(), 6, "one snapshot every 300 steps");

    // The writer has mutated and compacted far past every snapshot; each
    // old handle must still read exactly as its capture-time oracle.
    for (i, (snap, oracle)) in snaps.iter().enumerate() {
        assert_eq!(
            snap.debug_state_digest(),
            oracle.digest,
            "digest drift in snapshot {i} (seed {seed}, {threads} threads)"
        );
        for (j, &p) in preds.iter().enumerate() {
            let got: Vec<Tuple> = snap.relation(p).iter().cloned().collect();
            assert_eq!(got, oracle.iter_orders[j], "iteration order, snap {i}");
            assert_eq!(snap.facts_sorted(p), oracle.sorted[j], "sorted, snap {i}");
        }
    }

    // Snapshots are also fully usable as databases: evaluation over the
    // shared pages reproduces the oracle's violation count.
    for (i, (snap, oracle)) in snaps.into_iter().enumerate() {
        let mut snap = snap;
        snap.set_eval_threads(threads);
        let violations = snap.check().expect("snapshot check");
        assert_eq!(violations.len(), oracle.violations, "violations, snap {i}");
    }
}

#[test]
fn cow_snapshots_match_deep_clone_oracle_single_thread() {
    for seed in [7, 1993] {
        run_session(seed, 1);
    }
}

#[test]
fn cow_snapshots_match_deep_clone_oracle_four_threads() {
    for seed in [7, 1993] {
        run_session(seed, 4);
    }
}
