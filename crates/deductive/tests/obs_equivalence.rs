//! Differential test for the observability layer: instrumentation must be
//! *pure observation*. Evaluating the same randomized stratified programs
//! (seeds shared with `planned_equivalence`) with gom-obs fully enabled —
//! aggregation *and* a live JSONL trace sink — yields a bit-identical IDB
//! to the uninstrumented run, serial and parallel.

mod common;

use common::{build, derived};
use std::io::Write;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// gom-obs state is process-global; tests in this binary must not
/// interleave their enable/disable toggles.
fn lock() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(PoisonError::into_inner)
}

/// An in-memory JSONL sink, so the trace-writing path is exercised too.
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn idb_matches_with_obs_on(threads: usize, seeds: std::ops::Range<u64>) {
    for seed in seeds {
        // Uninstrumented run.
        gom_obs::set_enabled(false);
        let mut plain_db = build(seed);
        plain_db.set_eval_threads(threads);
        let plain = derived(&mut plain_db);

        // Instrumented run: aggregation + trace sink.
        let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        gom_obs::set_trace_writer(Box::new(buf.clone()));
        gom_obs::set_enabled(true);
        let mut obs_db = build(seed);
        obs_db.set_eval_threads(threads);
        let instrumented = derived(&mut obs_db);
        gom_obs::set_enabled(false);
        gom_obs::clear_trace();

        assert_eq!(
            instrumented, plain,
            "seed {seed}, {threads} thread(s): instrumented IDB differs"
        );
        // The instrumented run actually recorded something (it was not a
        // silently disabled run).
        let traced = buf.0.lock().unwrap_or_else(PoisonError::into_inner);
        assert!(
            traced
                .windows(b"eval.fixpoint".len())
                .any(|w| w == b"eval.fixpoint"),
            "seed {seed}, {threads} thread(s): no eval.fixpoint span traced"
        );
    }
}

#[test]
fn instrumented_eval_is_bit_identical_serial() {
    let _g = lock();
    gom_obs::reset();
    idb_matches_with_obs_on(1, 0..30);
}

#[test]
fn instrumented_eval_is_bit_identical_parallel() {
    let _g = lock();
    gom_obs::reset();
    idb_matches_with_obs_on(4, 0..30);
}
