#![cfg(feature = "proptest-tests")]
// Gated: requires the external `proptest` crate (no offline mirror).
// See the `proptest-tests` feature note in Cargo.toml.

//! Property test: DRed incremental maintenance equals from-scratch
//! evaluation, on a program with recursion *and* stratified negation,
//! under random batches of insertions and deletions.

use gom_deductive::{ChangeSet, Const, Database, Tuple};
use proptest::prelude::*;

fn program() -> Database {
    let mut db = Database::new();
    db.load(
        "base Edge(a, b).
         base Blocked(x).
         derived Path(a, b).
         derived Reaches9(x).
         derived Stuck(x).
         Path(X, Y) :- Edge(X, Y).
         Path(X, Z) :- Edge(X, Y), Path(Y, Z).
         Reaches9(X) :- Path(X, 9).
         Stuck(X) :- Edge(X, Y), not Reaches9(X), not Blocked(X).",
    )
    .unwrap();
    db
}

fn t2(a: i64, b: i64) -> Tuple {
    Tuple::from(vec![Const::Int(a), Const::Int(b)])
}

fn t1(a: i64) -> Tuple {
    Tuple::from(vec![Const::Int(a)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_equals_scratch(
        initial_edges in proptest::collection::vec((0i64..10, 0i64..10), 0..15),
        initial_blocked in proptest::collection::vec(0i64..10, 0..4),
        batches in proptest::collection::vec(
            proptest::collection::vec(
                // (predicate selector, a, b, insert?)
                (0u8..2, 0i64..10, 0i64..10, proptest::bool::ANY),
                1..6,
            ),
            1..5,
        ),
    ) {
        let mut db = program();
        let e = db.pred_id("Edge").unwrap();
        let bl = db.pred_id("Blocked").unwrap();
        for &(a, b) in &initial_edges {
            db.insert(e, t2(a, b)).unwrap();
        }
        for &x in &initial_blocked {
            db.insert(bl, t1(x)).unwrap();
        }
        let mut mat = db.materialize().unwrap();

        for batch in &batches {
            let mut cs = ChangeSet::new();
            for &(which, a, b, ins) in batch {
                let (pred, tup) = if which == 0 {
                    (e, t2(a, b))
                } else {
                    (bl, t1(a))
                };
                if ins {
                    cs.insert(pred, tup);
                } else {
                    cs.delete(pred, tup);
                }
            }
            db.apply_incremental(&mut mat, &cs).unwrap();
            // Compare against scratch for every derived predicate.
            db.invalidate_caches();
            for pname in ["Path", "Reaches9", "Stuck"] {
                let p = db.pred_id(pname).unwrap();
                let scratch = db.derived_facts(p).unwrap();
                let incremental = mat.facts_sorted(p);
                prop_assert_eq!(
                    &scratch, &incremental,
                    "predicate {} diverged after batch {:?}",
                    pname, batch
                );
            }
        }
    }
}
