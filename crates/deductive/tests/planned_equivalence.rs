//! Differential test: the planned, index-backed, optionally parallel
//! semi-naive engine computes exactly the same fixpoint as the naive
//! tuple-at-a-time reference interpreter, on randomized stratified
//! programs (recursion + negation) over randomized EDBs.
//!
//! Runs ungated (no external property-testing crate): programs are drawn
//! with a local SplitMix64 generator (`tests/common`) so failures
//! reproduce from the seed printed in the assertion message.

mod common;

use common::{build, derived, reference};
use gom_deductive::Tuple;

/// Planned serial and planned parallel evaluation both equal the naive
/// interpreter on every seed.
#[test]
fn planned_matches_naive_reference() {
    for seed in 0..60u64 {
        let mut db = build(seed);
        let oracle = reference(&mut db);
        db.set_eval_threads(1);
        let serial = derived(&mut db);
        assert_eq!(serial, oracle, "seed {seed}: serial planned != naive");

        let mut db4 = build(seed);
        db4.set_eval_threads(4);
        let parallel = derived(&mut db4);
        assert_eq!(parallel, oracle, "seed {seed}: parallel planned != naive");
    }
}

/// The parallel path is deterministic: two runs at 4 threads and one at
/// 2 threads produce identical extensions for every derived predicate.
#[test]
fn parallel_evaluation_is_deterministic() {
    for seed in [3u64, 17, 29, 41, 53] {
        let mut runs: Vec<Vec<Vec<Tuple>>> = Vec::new();
        for threads in [4usize, 4, 2] {
            let mut db = build(seed);
            db.set_eval_threads(threads);
            runs.push(derived(&mut db));
        }
        assert_eq!(runs[0], runs[1], "seed {seed}: 4-thread runs disagree");
        assert_eq!(runs[0], runs[2], "seed {seed}: 4- vs 2-thread disagree");
    }
}
