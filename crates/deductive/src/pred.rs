//! Predicate registry: names, arities, kinds, and key declarations.

use crate::symbol::Symbol;

/// Identifies a predicate within one [`crate::Database`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PredId(pub(crate) u32);

impl PredId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Whether facts of a predicate are stored (extensional) or derived by rules
/// (intentional).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PredKind {
    /// Extensional (base) predicate: facts are stored in the EDB and may be
    /// the target of updates and repairs.
    Base,
    /// Intentional (derived) predicate: facts are computed by rules.
    Derived,
}

/// Declaration of one predicate.
#[derive(Clone, Debug)]
pub struct PredDecl {
    /// Interned predicate name.
    pub name: Symbol,
    /// Number of columns.
    pub arity: usize,
    /// Base or derived.
    pub kind: PredKind,
    /// Key columns (positions) for base predicates, if a key constraint was
    /// declared. The checker enforces that no two facts agree on all key
    /// columns while differing elsewhere.
    pub key: Option<Box<[usize]>>,
    /// Optional human-readable column names (for explanations and dumps).
    pub cols: Option<Box<[String]>>,
}

impl PredDecl {
    /// True for extensional predicates.
    pub fn is_base(&self) -> bool {
        self.kind == PredKind::Base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_base_matches_kind() {
        let d = PredDecl {
            name: Symbol::from_index(0),
            arity: 2,
            kind: PredKind::Base,
            key: None,
            cols: None,
        };
        assert!(d.is_base());
        let d2 = PredDecl {
            kind: PredKind::Derived,
            ..d
        };
        assert!(!d2.is_base());
    }
}
