//! Error type for the deductive engine.

use std::fmt;

/// Errors raised by the deductive database.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Error {
    /// A predicate name was used but never declared.
    UnknownPredicate(String),
    /// A predicate was declared twice with conflicting shape.
    PredicateRedeclared(String),
    /// Arity mismatch between a declaration and a use site.
    ArityMismatch {
        /// Predicate name.
        pred: String,
        /// Declared arity.
        declared: usize,
        /// Arity at the offending use.
        used: usize,
    },
    /// A rule head refers to a base (extensional) predicate.
    HeadIsBase(String),
    /// A fact was inserted into or removed from a derived predicate.
    MutatingDerived(String),
    /// A rule or compiled constraint is not range-restricted.
    UnsafeRule {
        /// Rendered rule for diagnostics.
        rule: String,
        /// The offending variable name (or index).
        var: String,
    },
    /// Negation occurs in a cycle: no stratification exists.
    NotStratifiable(String),
    /// Syntax error in the rule/constraint text DSL.
    Parse {
        /// Line number (1-based).
        line: usize,
        /// Column number (1-based).
        col: usize,
        /// What went wrong.
        msg: String,
    },
    /// A constraint failed to compile (e.g. premise does not bind all
    /// quantified variables).
    BadConstraint {
        /// Constraint name.
        name: String,
        /// What went wrong.
        msg: String,
    },
    /// An evolution session operation was used out of protocol (e.g. nested
    /// `begin`, or `commit` without `begin`).
    SessionProtocol(String),
    /// A fixpoint evaluation worker panicked. The panic is contained at the
    /// worker boundary; the database keeps its base facts and any open
    /// session stays open (and rollbackable), but derived facts from the
    /// failed run are discarded.
    EvalPanic(String),
    /// An error with a source position attached (1-based line/column).
    /// Wraps errors that carry no position of their own, so every load
    /// error can name where in the source text it happened.
    At {
        /// Line number (1-based).
        line: usize,
        /// Column number (1-based).
        col: usize,
        /// The underlying error.
        source: Box<Error>,
    },
}

impl Error {
    /// Attach a position unless the error already carries one.
    pub fn at(self, line: usize, col: usize) -> Error {
        if self.position().is_some() {
            self
        } else {
            Error::At {
                line,
                col,
                source: Box::new(self),
            }
        }
    }

    /// The source position, when known.
    pub fn position(&self) -> Option<(usize, usize)> {
        match self {
            Error::Parse { line, col, .. } | Error::At { line, col, .. } => Some((*line, *col)),
            _ => None,
        }
    }

    /// The underlying error, stripped of any position wrapper.
    pub fn root(&self) -> &Error {
        match self {
            Error::At { source, .. } => source.root(),
            other => other,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownPredicate(p) => write!(f, "unknown predicate `{p}`"),
            Error::PredicateRedeclared(p) => {
                write!(f, "predicate `{p}` redeclared with a different shape")
            }
            Error::ArityMismatch {
                pred,
                declared,
                used,
            } => write!(
                f,
                "predicate `{pred}` declared with arity {declared} but used with arity {used}"
            ),
            Error::HeadIsBase(p) => write!(f, "rule head `{p}` is a base predicate"),
            Error::MutatingDerived(p) => {
                write!(f, "cannot insert into/delete from derived predicate `{p}`")
            }
            Error::UnsafeRule { rule, var } => {
                write!(
                    f,
                    "rule `{rule}` is not range-restricted: variable {var} unbound"
                )
            }
            Error::NotStratifiable(p) => write!(
                f,
                "program is not stratifiable: predicate `{p}` depends negatively on itself"
            ),
            Error::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            Error::BadConstraint { name, msg } => {
                write!(f, "constraint `{name}` cannot be compiled: {msg}")
            }
            Error::SessionProtocol(msg) => write!(f, "session protocol violation: {msg}"),
            Error::EvalPanic(msg) => write!(f, "evaluation worker panicked: {msg}"),
            Error::At { line, col, source } => write!(f, "at {line}:{col}: {source}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;
