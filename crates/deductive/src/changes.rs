//! Change sets: the unit of communication between the Analyzer / Runtime
//! System and the Consistency Control.
//!
//! The paper's interface to the database model "consists of the operations —
//! add (+) and delete (−) — for modifying the extensions of the base
//! predicates" (§2.2). [`Op`] is exactly that.

use crate::pred::PredId;
use crate::tuple::Tuple;
use crate::Database;
use std::fmt;

/// One base-predicate update.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Op {
    /// `+P(t)` — add a fact.
    Insert(PredId, Tuple),
    /// `−P(t)` — delete a fact.
    Delete(PredId, Tuple),
}

impl Op {
    /// The predicate the operation touches.
    pub fn pred(&self) -> PredId {
        match self {
            Op::Insert(p, _) | Op::Delete(p, _) => *p,
        }
    }

    /// The fact tuple.
    pub fn tuple(&self) -> &Tuple {
        match self {
            Op::Insert(_, t) | Op::Delete(_, t) => t,
        }
    }

    /// The inverse operation (used for session rollback).
    pub fn inverse(&self) -> Op {
        match self {
            Op::Insert(p, t) => Op::Delete(*p, t.clone()),
            Op::Delete(p, t) => Op::Insert(*p, t.clone()),
        }
    }

    /// Render against a database, e.g. `+Slot(clid4, fuelType, clid_string)`.
    pub fn display<'a>(&'a self, db: &'a Database) -> OpDisplay<'a> {
        OpDisplay { op: self, db }
    }
}

/// Helper for rendering an [`Op`].
pub struct OpDisplay<'a> {
    op: &'a Op,
    db: &'a Database,
}

impl fmt::Display for OpDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (sign, pred, tuple) = match self.op {
            Op::Insert(p, t) => ("+", p, t),
            Op::Delete(p, t) => ("-", p, t),
        };
        write!(
            f,
            "{sign}{}{}",
            self.db.pred_name(*pred),
            tuple.display(self.db.interner())
        )
    }
}

/// An ordered list of base-predicate updates.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct ChangeSet {
    /// The operations in application order.
    pub ops: Vec<Op>,
}

impl ChangeSet {
    /// Empty change set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an insertion.
    pub fn insert(&mut self, pred: PredId, tuple: Tuple) -> &mut Self {
        self.ops.push(Op::Insert(pred, tuple));
        self
    }

    /// Add a deletion.
    pub fn delete(&mut self, pred: PredId, tuple: Tuple) -> &mut Self {
        self.ops.push(Op::Delete(pred, tuple));
        self
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when there are no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Distinct predicates touched.
    pub fn touched_preds(&self) -> Vec<PredId> {
        let mut v: Vec<PredId> = self.ops.iter().map(|o| o.pred()).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Append all operations of another change set.
    pub fn extend(&mut self, other: ChangeSet) {
        self.ops.extend(other.ops);
    }
}

impl fmt::Display for ChangeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} op(s)", self.ops.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Const;

    #[test]
    fn inverse_roundtrips() {
        let op = Op::Insert(PredId(0), Tuple::from(vec![Const::Int(1)]));
        assert_eq!(op.inverse().inverse(), op);
        assert!(matches!(op.inverse(), Op::Delete(..)));
    }

    #[test]
    fn touched_preds_dedups() {
        let mut cs = ChangeSet::new();
        cs.insert(PredId(1), Tuple::from(vec![Const::Int(1)]));
        cs.delete(PredId(1), Tuple::from(vec![Const::Int(2)]));
        cs.insert(PredId(0), Tuple::from(vec![Const::Int(3)]));
        assert_eq!(cs.touched_preds(), vec![PredId(0), PredId(1)]);
        assert_eq!(cs.len(), 3);
    }
}
