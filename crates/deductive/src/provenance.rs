//! Provenance: derivation trees for derived facts.
//!
//! The paper computes repairs "by building a derivation tree for each
//! consistency violation and subsequent combination of its leaves into a
//! repair" (\[19\]). The repair generator uses this machinery internally;
//! this module exposes it as a user-facing *why* facility: for any derived
//! fact, obtain one derivation tree down to the extensional leaves.

use crate::ast::{Literal, Term, Var};
use crate::db::Database;
use crate::error::Result;
use crate::eval::solve_body;
use crate::pred::PredId;
use crate::tuple::Tuple;
use crate::value::Const;

/// One derivation of a fact.
#[derive(Clone, Debug, PartialEq)]
pub enum Derivation {
    /// An extensional (stored) fact.
    Fact {
        /// Predicate.
        pred: PredId,
        /// The fact.
        tuple: Tuple,
    },
    /// A rule application.
    Rule {
        /// Head predicate.
        pred: PredId,
        /// The derived fact.
        tuple: Tuple,
        /// Index of the applied rule in the compiled rule set.
        rule_index: usize,
        /// Derivations of the positive body atoms, in body order.
        children: Vec<Derivation>,
        /// Negative body atoms that hold by absence (ground instances).
        absent: Vec<(PredId, Tuple)>,
    },
}

impl Derivation {
    /// The derived fact at the root.
    pub fn fact(&self) -> (&PredId, &Tuple) {
        match self {
            Derivation::Fact { pred, tuple } | Derivation::Rule { pred, tuple, .. } => {
                (pred, tuple)
            }
        }
    }

    /// All extensional leaves of the tree (deduplicated, in discovery
    /// order) — the candidate deletions of a premise-invalidating repair.
    pub fn leaves(&self) -> Vec<(PredId, Tuple)> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<(PredId, Tuple)>) {
        match self {
            Derivation::Fact { pred, tuple } => {
                let entry = (*pred, tuple.clone());
                if !out.contains(&entry) {
                    out.push(entry);
                }
            }
            Derivation::Rule { children, .. } => {
                for c in children {
                    c.collect_leaves(out);
                }
            }
        }
    }

    /// Render the tree with indentation.
    pub fn render(&self, db: &Database) -> String {
        let mut s = String::new();
        self.render_into(db, 0, &mut s);
        s
    }

    fn render_into(&self, db: &Database, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match self {
            Derivation::Fact { pred, tuple } => {
                out.push_str(&format!(
                    "{pad}{}{} [fact]\n",
                    db.pred_name(*pred),
                    tuple.display(db.interner())
                ));
            }
            Derivation::Rule {
                pred,
                tuple,
                rule_index,
                children,
                absent,
            } => {
                out.push_str(&format!(
                    "{pad}{}{} [rule #{rule_index}]\n",
                    db.pred_name(*pred),
                    tuple.display(db.interner())
                ));
                for c in children {
                    c.render_into(db, depth + 1, out);
                }
                for (p, t) in absent {
                    out.push_str(&format!(
                        "{}not {}{} [absent]\n",
                        "  ".repeat(depth + 1),
                        db.pred_name(*p),
                        t.display(db.interner())
                    ));
                }
            }
        }
    }
}

const WHY_DEPTH: usize = 32;

impl Database {
    /// Build one derivation tree for a fact of a (possibly derived)
    /// predicate. Returns `None` when the fact does not hold.
    pub fn why(&mut self, pred: PredId, tuple: &Tuple) -> Result<Option<Derivation>> {
        if self.pred_decl(pred).is_base() {
            return Ok(if self.contains(pred, tuple) {
                Some(Derivation::Fact {
                    pred,
                    tuple: tuple.clone(),
                })
            } else {
                None
            });
        }
        self.evaluate()?;
        let idb = self.idb.take().expect("evaluated");
        let result = derive(self, &idb.rels, pred, tuple, WHY_DEPTH);
        self.idb = Some(idb);
        Ok(result)
    }
}

fn derive(
    db: &Database,
    idb: &[crate::relation::Relation],
    pred: PredId,
    tuple: &Tuple,
    depth: usize,
) -> Option<Derivation> {
    if db.pred_decl(pred).is_base() {
        return if db.relation(pred).contains(tuple) {
            Some(Derivation::Fact {
                pred,
                tuple: tuple.clone(),
            })
        } else {
            None
        };
    }
    if depth == 0 || !idb[pred.index()].contains(tuple) {
        return None;
    }
    let compiled = db.compiled.as_ref().expect("compiled");
    let rule_ixs = compiled.rules_by_head.get(&pred)?;
    for &ri in rule_ixs {
        let rule = &compiled.rules[ri];
        // Unify the head with the fact.
        let mut preset: Vec<(Var, Const)> = Vec::new();
        let mut ok = true;
        for (j, &t) in rule.head.args.iter().enumerate() {
            match t {
                Term::Const(c) => {
                    if tuple.get(j) != c {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => {
                    if let Some(&(_, prev)) = preset.iter().find(|&&(pv, _)| pv == v) {
                        if prev != tuple.get(j) {
                            ok = false;
                            break;
                        }
                    } else {
                        preset.push((v, tuple.get(j)));
                    }
                }
            }
        }
        if !ok {
            continue;
        }
        let bindings = solve_body(db, idb, &rule.body, rule.var_count(), &preset, 1);
        let Some(binding) = bindings.into_iter().next() else {
            continue;
        };
        let ground = |args: &[Term]| -> Tuple {
            Tuple::from(
                args.iter()
                    .map(|&t| match t {
                        Term::Const(c) => c,
                        Term::Var(v) => binding[v.index()].expect("full binding"),
                    })
                    .collect::<Vec<_>>(),
            )
        };
        let mut children = Vec::new();
        let mut absent = Vec::new();
        let mut complete = true;
        for lit in &rule.body {
            match lit {
                Literal::Pos(a) => {
                    let g = ground(&a.args);
                    match derive(db, idb, a.pred, &g, depth - 1) {
                        Some(d) => children.push(d),
                        None => {
                            complete = false;
                            break;
                        }
                    }
                }
                Literal::Neg(a) => {
                    absent.push((a.pred, ground(&a.args)));
                }
                Literal::Cmp(..) => {}
            }
        }
        if complete {
            return Some(Derivation::Rule {
                pred,
                tuple: tuple.clone(),
                rule_index: ri,
                children,
                absent,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tc_db() -> (Database, PredId, PredId) {
        let mut db = Database::new();
        db.load(
            "base Edge(a, b).
             derived Path(a, b).
             Path(X, Y) :- Edge(X, Y).
             Path(X, Z) :- Edge(X, Y), Path(Y, Z).",
        )
        .unwrap();
        let e = db.pred_id("Edge").unwrap();
        let p = db.pred_id("Path").unwrap();
        (db, e, p)
    }

    #[test]
    fn base_fact_derivation_is_a_leaf() {
        let (mut db, e, _) = tc_db();
        let (a, b) = (db.constant("a"), db.constant("b"));
        db.insert(e, vec![a, b]).unwrap();
        let t = Tuple::from(vec![a, b]);
        let d = db.why(e, &t).unwrap().unwrap();
        assert!(matches!(d, Derivation::Fact { .. }));
        assert_eq!(d.leaves(), vec![(e, t)]);
    }

    #[test]
    fn transitive_fact_traces_to_all_edges() {
        let (mut db, e, p) = tc_db();
        let (a, b, c) = (db.constant("a"), db.constant("b"), db.constant("c"));
        db.insert(e, vec![a, b]).unwrap();
        db.insert(e, vec![b, c]).unwrap();
        let goal = Tuple::from(vec![a, c]);
        let d = db.why(p, &goal).unwrap().unwrap();
        let leaves = d.leaves();
        assert_eq!(leaves.len(), 2);
        assert!(leaves.contains(&(e, Tuple::from(vec![a, b]))));
        assert!(leaves.contains(&(e, Tuple::from(vec![b, c]))));
        let text = d.render(&db);
        assert!(text.contains("[rule #"), "{text}");
        assert!(text.contains("[fact]"), "{text}");
    }

    #[test]
    fn non_fact_has_no_derivation() {
        let (mut db, e, p) = tc_db();
        let (a, b) = (db.constant("a"), db.constant("b"));
        db.insert(e, vec![a, b]).unwrap();
        let bogus = Tuple::from(vec![b, a]);
        assert!(db.why(p, &bogus).unwrap().is_none());
        assert!(db.why(e, &bogus).unwrap().is_none());
    }

    #[test]
    fn negation_recorded_as_absent() {
        let mut db = Database::new();
        db.load(
            "base Node(x).
             base Broken(x).
             derived Healthy(x).
             Healthy(X) :- Node(X), not Broken(X).",
        )
        .unwrap();
        let n = db.pred_id("Node").unwrap();
        let h = db.pred_id("Healthy").unwrap();
        let a = db.constant("a");
        db.insert(n, vec![a]).unwrap();
        let d = db.why(h, &Tuple::from(vec![a])).unwrap().unwrap();
        let Derivation::Rule { absent, .. } = &d else {
            panic!("expected rule derivation");
        };
        assert_eq!(absent.len(), 1);
        assert!(d.render(&db).contains("not Broken(a) [absent]"));
    }
}
