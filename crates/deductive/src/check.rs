//! Consistency checking: full and dependency-pruned incremental.
//!
//! Full checking materialises the IDB and scans every violation predicate
//! plus every key. Incremental checking (the stand-in for the paper's
//! efficient-consistency-check citation [20]) first intersects the change
//! set's predicates with each constraint's base-dependency cone and then
//! evaluates only the rules feeding the affected constraints.

use crate::changes::ChangeSet;
use crate::db::Database;
use crate::error::Result;

use crate::pred::PredId;
use crate::relation::Relation;
use crate::symbol::FxHashSet;
use crate::tuple::Tuple;
use crate::value::Const;

/// Where a violation came from (used internally by repair generation).
#[derive(Clone, Debug)]
pub(crate) enum ViolationSource {
    /// A declarative constraint, with its compiled index and witness tuple.
    Constraint { idx: usize, tuple: Tuple },
    /// A key (uniqueness) constraint on a base predicate: two facts agree on
    /// the key columns but differ elsewhere.
    Key { pred: PredId, a: Tuple, b: Tuple },
}

/// A detected inconsistency.
#[derive(Clone, Debug)]
pub struct Violation {
    pub(crate) source: ViolationSource,
    /// Name of the violated constraint (key violations use
    /// `key(<PredName>)`).
    pub constraint: String,
    /// Optional description from the constraint definition.
    pub message: Option<String>,
    /// Witness: variable name / value pairs falsifying the constraint.
    pub witness: Vec<(String, Const)>,
}

impl Violation {
    /// Render the violation as one line, e.g.
    /// `slot-for-every-attr: T=tid4, A=fuelType, TA=tid_string, C=clid4`.
    pub fn render(&self, db: &Database) -> String {
        let mut s = self.constraint.clone();
        if !self.witness.is_empty() {
            s.push_str(": ");
            for (i, (name, val)) in self.witness.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(name);
                s.push('=');
                s.push_str(&val.display(db.interner()).to_string());
            }
        }
        if let Some(m) = &self.message {
            s.push_str(" — ");
            s.push_str(m);
        }
        s
    }
}

fn key_violations_for(
    db: &Database,
    pred: PredId,
    only_tuples: Option<&[Tuple]>,
) -> Vec<Violation> {
    let Some(key) = db.pred_decl(pred).key.clone() else {
        return Vec::new();
    };
    let rel = db.relation(pred);
    let mut out = Vec::new();
    // Materialise a violation. This is the *only* place the key check
    // clones tuples: a clean check borrows everything (asserted via the
    // `check.keys.clones` counter).
    let mut report = |a: &Tuple, b: &Tuple| {
        let (a, b) = if a <= b {
            (a.clone(), b.clone())
        } else {
            (b.clone(), a.clone())
        };
        gom_obs::counter_add("check.keys.clones", 2);
        out.push(Violation {
            constraint: format!("key({})", db.pred_name(pred)),
            message: Some(format!(
                "two facts agree on key columns {:?} but differ elsewhere",
                &key[..]
            )),
            witness: Vec::new(),
            source: ViolationSource::Key { pred, a, b },
        });
    };
    match only_tuples {
        Some(tuples) => {
            for t in tuples {
                if !rel.contains(t) {
                    continue;
                }
                let bound: Vec<(usize, Const)> = key.iter().map(|&c| (c, t.get(c))).collect();
                for other in rel.select(&bound) {
                    if other != t {
                        report(t, other);
                    }
                }
            }
        }
        None => {
            // Group by *index* into the stored extension instead of cloning
            // every tuple into per-key buckets: sort row indices by the key
            // columns (full tuple order as tie-break), then report adjacent
            // pairs inside each equal-key run. Two flat allocations total,
            // zero per-tuple clones on the clean path.
            fn key_of<'a>(key: &'a [usize], t: &'a Tuple) -> impl Iterator<Item = Const> + 'a {
                key.iter().map(move |&c| t.get(c))
            }
            let rows: Vec<&Tuple> = rel.iter().collect();
            let mut idx: Vec<u32> = (0..rows.len() as u32).collect();
            idx.sort_unstable_by(|&i, &j| {
                let (a, b) = (rows[i as usize], rows[j as usize]);
                key_of(&key, a).cmp(key_of(&key, b)).then_with(|| a.cmp(b))
            });
            let mut s = 0;
            while s < idx.len() {
                let mut e = s + 1;
                while e < idx.len()
                    && key_of(&key, rows[idx[s] as usize]).eq(key_of(&key, rows[idx[e] as usize]))
                {
                    e += 1;
                }
                for w in s..e.saturating_sub(1) {
                    report(rows[idx[w] as usize], rows[idx[w + 1] as usize]);
                }
                s = e;
            }
        }
    }
    // Deduplicate (a pair can be reported twice when iterating tuples).
    out.sort_by(|x, y| {
        let kx = match &x.source {
            ViolationSource::Key { a, b, .. } => (a.clone(), b.clone()),
            _ => unreachable!(),
        };
        let ky = match &y.source {
            ViolationSource::Key { a, b, .. } => (a.clone(), b.clone()),
            _ => unreachable!(),
        };
        kx.cmp(&ky)
    });
    out.dedup_by(|x, y| match (&x.source, &y.source) {
        (ViolationSource::Key { a, b, .. }, ViolationSource::Key { a: a2, b: b2, .. }) => {
            a == a2 && b == b2
        }
        _ => false,
    });
    out
}

impl Database {
    /// Crate-internal: collect constraint violations from an external IDB
    /// slice (used by incremental maintenance).
    pub(crate) fn collect_violations_public(
        &self,
        idb: &[Relation],
        indices: &[usize],
    ) -> Result<Vec<Violation>> {
        self.collect_constraint_violations(idb, indices)
    }

    /// Crate-internal: full key checks over the stored extensions.
    pub(crate) fn key_violations_public(&self) -> Vec<Violation> {
        let keyed: Vec<PredId> = self
            .base_preds()
            .filter(|&p| self.pred_decl(p).key.is_some())
            .collect();
        let mut out = Vec::new();
        for p in keyed {
            out.extend(key_violations_for(self, p, None));
        }
        out
    }

    /// Scan the violation predicates of the given compiled constraints.
    /// With more than one eval thread, constraints are scanned in parallel.
    /// Violations are collected in *stored* order — the per-tuple sort that
    /// used to run here is gone; every public entry point applies one final
    /// [`sort_violations`] instead (probe: `check.violations.sort_ns`), so
    /// the rendered output stays deterministic for any thread count.
    fn collect_constraint_violations(
        &self,
        idb: &[Relation],
        indices: &[usize],
    ) -> Result<Vec<Violation>> {
        let compiled = self.compiled.as_ref().expect("compiled");
        crate::eval::par_map(self.eval_threads(), indices, |&ci, out| {
            let cc = &compiled.constraints[ci];
            let src = &self.constraints[cc.source_idx];
            let t0 = gom_obs::enabled().then(std::time::Instant::now);
            let before = out.len();
            for tuple in idb[cc.viol.index()].iter() {
                let witness = cc
                    .outer_vars
                    .iter()
                    .zip(tuple.iter())
                    .map(|(v, c)| (src.var_name(*v).to_string(), c))
                    .collect();
                out.push(Violation {
                    constraint: src.name.clone(),
                    message: src.message.clone(),
                    witness,
                    source: ViolationSource::Constraint {
                        idx: ci,
                        tuple: tuple.clone(),
                    },
                });
            }
            if let Some(t0) = t0 {
                // Per-constraint timing runs inside the parallel scan, so
                // the span boundary is not a scope: credit the measured
                // duration explicitly.
                gom_obs::record_span_dur(&format!("check.constraint:{}", src.name), t0.elapsed());
                gom_obs::counter_add("check.violations", (out.len() - before) as u64);
            }
        })
    }

    /// Full consistency check: every constraint, every key.
    pub fn check(&mut self) -> Result<Vec<Violation>> {
        let _sp = gom_obs::span("check.full");
        self.evaluate()?;
        let idb = self.idb.take().expect("evaluated");
        let all: Vec<usize> =
            (0..self.compiled.as_ref().expect("compiled").constraints.len()).collect();
        let collected = self.collect_constraint_violations(&idb.rels, &all);
        self.idb = Some(idb);
        let mut out = collected?;
        let keyed: Vec<PredId> = self
            .base_preds()
            .filter(|&p| self.pred_decl(p).key.is_some())
            .collect();
        {
            let _keys = gom_obs::span("check.keys");
            for p in keyed {
                out.extend(key_violations_for(self, p, None));
            }
        }
        sort_violations(&mut out);
        Ok(out)
    }

    /// Names of constraints whose dependency cone intersects the change
    /// set's predicates.
    pub fn affected_constraints(&mut self, delta: &ChangeSet) -> Result<Vec<String>> {
        self.ensure_compiled()?;
        let touched: FxHashSet<PredId> = delta.touched_preds().into_iter().collect();
        let compiled = self.compiled.as_ref().expect("compiled");
        let mut names = Vec::new();
        for cc in &compiled.constraints {
            if cc.deps.iter().any(|p| touched.contains(p)) {
                names.push(self.constraints[cc.source_idx].name.clone());
            }
        }
        Ok(names)
    }

    /// Incremental consistency check after `delta`, assuming the database
    /// was consistent before: evaluates only the rule cones of affected
    /// constraints and re-checks only keys of touched predicates (and only
    /// around inserted tuples).
    pub fn check_delta(&mut self, delta: &ChangeSet) -> Result<Vec<Violation>> {
        self.check_delta_impl(delta, None)
    }

    /// Like [`Self::check_delta`], but additionally restricted to the
    /// constraints named in `allowed` — typically an impact footprint
    /// computed by static analysis. Constraints outside `allowed` are
    /// skipped entirely (counted under `check.constraints.footprint_skipped`).
    ///
    /// Sound under the same precondition as `check_delta` itself: the
    /// database was consistent when the session began, and `allowed` is a
    /// superset of the constraints the delta can newly violate. Key checks
    /// are never filtered.
    pub fn check_delta_filtered(
        &mut self,
        delta: &ChangeSet,
        allowed: &FxHashSet<String>,
    ) -> Result<Vec<Violation>> {
        self.check_delta_impl(delta, Some(allowed))
    }

    fn check_delta_impl(
        &mut self,
        delta: &ChangeSet,
        allowed: Option<&FxHashSet<String>>,
    ) -> Result<Vec<Violation>> {
        let _sp = gom_obs::span("check.delta");
        self.ensure_compiled()?;
        let touched: FxHashSet<PredId> = delta.touched_preds().into_iter().collect();
        // Affected constraints and the derived predicates they need.
        let mut footprint_skipped = 0u64;
        let (affected, needed): (Vec<usize>, FxHashSet<PredId>) = {
            let compiled = self.compiled.as_ref().expect("compiled");
            let mut affected = Vec::new();
            let mut frontier: Vec<PredId> = Vec::new();
            for (i, cc) in compiled.constraints.iter().enumerate() {
                if cc.deps.iter().any(|p| touched.contains(p)) {
                    if let Some(allow) = allowed {
                        if !allow.contains(&self.constraints[cc.source_idx].name) {
                            footprint_skipped += 1;
                            continue;
                        }
                    }
                    affected.push(i);
                    frontier.push(cc.viol);
                }
            }
            let mut needed: FxHashSet<PredId> = FxHashSet::default();
            while let Some(p) = frontier.pop() {
                if !needed.insert(p) {
                    continue;
                }
                if let Some(ixs) = compiled.rules_by_head.get(&p) {
                    for &i in ixs {
                        for lit in &compiled.rules[i].body {
                            match lit {
                                crate::ast::Literal::Pos(a) | crate::ast::Literal::Neg(a) => {
                                    if !self.pred_decl(a.pred).is_base() {
                                        frontier.push(a.pred);
                                    }
                                }
                                crate::ast::Literal::Cmp(..) => {}
                            }
                        }
                    }
                }
            }
            (affected, needed)
        };
        if gom_obs::enabled() {
            let total = self.compiled.as_ref().expect("compiled").constraints.len();
            gom_obs::counter_add("check.constraints.affected", affected.len() as u64);
            gom_obs::counter_add("check.constraints.skipped", (total - affected.len()) as u64);
            gom_obs::counter_add("check.constraints.footprint_skipped", footprint_skipped);
        }

        let mut out = if affected.is_empty() {
            Vec::new()
        } else {
            self.ensure_base_indexes();
            let threads = self.eval_threads();
            let compiled = self.compiled.take().expect("compiled");
            // Restrict each stratum to rules whose head is needed.
            let restricted: Vec<Vec<usize>> = compiled
                .strat
                .rule_strata
                .iter()
                .map(|s| {
                    s.iter()
                        .copied()
                        .filter(|&i| needed.contains(&compiled.rules[i].head.pred))
                        .collect()
                })
                .collect();
            let mut rels: Vec<Relation> = vec![Relation::new(); self.pred_count()];
            crate::eval::ensure_idb_indexes(self, &compiled, &mut rels);
            let mut evaluated = Ok(());
            for stratum in &restricted {
                evaluated =
                    crate::eval::eval_stratum_public(self, &mut rels, &compiled, stratum, threads);
                if evaluated.is_err() {
                    break;
                }
            }

            // Restore the compiled program before propagating any worker
            // panic, so the database stays usable after the error.
            self.compiled = Some(compiled);
            evaluated?;
            self.collect_constraint_violations(&rels, &affected)?
        };

        out.extend(self.delta_key_violations(delta, &touched));
        sort_violations(&mut out);
        Ok(out)
    }

    /// Key checks restricted to the tuples a delta inserted into keyed
    /// predicates (keys cannot be violated by deletions). Shared between
    /// [`Self::check_delta`] and [`Self::check_maintained`] so the two
    /// paths are key-identical by construction.
    fn delta_key_violations(
        &self,
        delta: &ChangeSet,
        touched: &FxHashSet<PredId>,
    ) -> Vec<Violation> {
        let _keys = gom_obs::span("check.keys");
        let mut out = Vec::new();
        for &p in touched.iter().collect::<std::collections::BTreeSet<_>>() {
            if self.pred_decl(p).key.is_none() {
                continue;
            }
            let inserted: Vec<Tuple> = delta
                .ops
                .iter()
                .filter_map(|op| match op {
                    crate::changes::Op::Insert(pp, t) if *pp == p => Some(t.clone()),
                    _ => None,
                })
                .collect();
            out.extend(key_violations_for(self, p, Some(&inserted)));
        }
        out
    }

    /// EES read from the maintained violation state: when a maintained
    /// materialisation is armed ([`Database::ensure_maintained`]) the
    /// violation relations of every constraint are already up to date, so
    /// the commit check reduces to reading the relations of the
    /// delta-affected constraints plus the (unfilterable) key checks —
    /// O(Δ) in the session's change instead of O(schema). Returns
    /// `Ok(None)` when no maintained state is armed or it went stale;
    /// callers then fall back down the ladder (footprint-filtered, then
    /// full delta check).
    ///
    /// Decision-equivalent to [`Database::check_delta`] by construction:
    /// the identical affected-constraint selection reads the maintained
    /// violation relations instead of re-deriving their cones, and the key
    /// checks are shared code. The `tests/maintained_soundness.rs` sweep
    /// asserts bit-identical reports across both paths and against full
    /// [`Database::check`].
    pub fn check_maintained(&mut self, delta: &ChangeSet) -> Result<Option<Vec<Violation>>> {
        if self.maintained.is_none() {
            return Ok(None);
        }
        let _sp = gom_obs::span("ees.maintained");
        self.ensure_compiled()?;
        let Some(mat) = self.maintained.take() else {
            return Ok(None);
        };
        // `decompile()` discards the maintained state together with the
        // program, so a fingerprint mismatch here means an invariant broke
        // upstream: discard and let the caller fall back.
        let rule_count = self.compiled.as_ref().map_or(0, |c| c.rules.len());
        if !mat.fingerprint_matches(self.pred_count(), rule_count) {
            gom_obs::counter_add("check.maintenance.discards", 1);
            return Ok(None);
        }
        let touched: FxHashSet<PredId> = delta.touched_preds().into_iter().collect();
        let affected: Vec<usize> = self.compiled.as_ref().map_or_else(Vec::new, |c| {
            c.constraints
                .iter()
                .enumerate()
                .filter(|(_, cc)| cc.deps.iter().any(|p| touched.contains(p)))
                .map(|(i, _)| i)
                .collect()
        });
        let collected = self.collect_violations_public(&mat.rels, &affected);
        self.maintained = Some(mat);
        let mut out = collected?;
        out.extend(self.delta_key_violations(delta, &touched));
        if gom_obs::enabled() {
            gom_obs::counter_add("check.constraints.affected", affected.len() as u64);
            gom_obs::counter_add("check.violations.maintained", out.len() as u64);
        }
        sort_violations(&mut out);
        Ok(Some(out))
    }
}

/// Total order on violations (constraint name, then debug-rendered
/// source). Applied once at every public check boundary — equal violation
/// multisets therefore render as identical sequences, which the
/// differential sweeps rely on. The `check.violations.sort_ns` probe
/// measures what the single deferred sort costs.
pub(crate) fn sort_violations(v: &mut [Violation]) {
    let t0 = gom_obs::enabled().then(std::time::Instant::now);
    v.sort_by(|a, b| {
        a.constraint
            .cmp(&b.constraint)
            .then_with(|| format!("{:?}", a.source).cmp(&format!("{:?}", b.source)))
    });
    if let Some(t0) = t0 {
        gom_obs::counter_add("check.violations.sort_ns", t0.elapsed().as_nanos() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    fn db_with(text: &str) -> Database {
        let mut db = Database::new();
        parse_program(&mut db, text).expect("program parses");
        db
    }

    fn c(db: &mut Database, s: &str) -> Const {
        db.constant(s)
    }

    #[test]
    fn simple_referential_integrity() {
        let mut db = db_with(
            "base Type(tid, name, sid).\n\
             base Schema(sid, name).\n\
             constraint type_schema_ref \"schema of a type must exist\":\n\
               forall X, Y, Z: Type(X, Y, Z) -> exists N: Schema(Z, N).\n",
        );
        let ty = db.pred_id("Type").unwrap();
        let sc = db.pred_id("Schema").unwrap();
        let (t1, n1, s1) = (c(&mut db, "t1"), c(&mut db, "Person"), c(&mut db, "s1"));
        db.insert(ty, vec![t1, n1, s1]).unwrap();
        let v = db.check().unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].constraint, "type_schema_ref");
        let nm = c(&mut db, "CarSchema");
        db.insert(sc, vec![s1, nm]).unwrap();
        assert!(db.check().unwrap().is_empty());
    }

    #[test]
    fn key_violation_detected() {
        let mut db = Database::new();
        let p = db.declare_base_keyed("P", 2, &[0]).unwrap();
        db.insert(p, vec![Const::Int(1), Const::Int(10)]).unwrap();
        db.insert(p, vec![Const::Int(1), Const::Int(20)]).unwrap();
        db.insert(p, vec![Const::Int(2), Const::Int(10)]).unwrap();
        let v = db.check().unwrap();
        assert_eq!(v.len(), 1);
        assert!(v[0].constraint.starts_with("key("));
    }

    #[test]
    fn acyclicity_constraint() {
        let mut db = db_with(
            "base Sub(a, b).\n\
             derived SubT(a, b).\n\
             SubT(X, Y) :- Sub(X, Y).\n\
             SubT(X, Z) :- Sub(X, Y), SubT(Y, Z).\n\
             constraint acyclic: forall X: !SubT(X, X).\n",
        );
        let sub = db.pred_id("Sub").unwrap();
        let (a, b) = (c(&mut db, "a"), c(&mut db, "b"));
        db.insert(sub, vec![a, b]).unwrap();
        assert!(db.check().unwrap().is_empty());
        db.insert(sub, vec![b, a]).unwrap();
        let v = db.check().unwrap();
        assert_eq!(v.len(), 2); // witnesses: X=a and X=b
        assert_eq!(v[0].constraint, "acyclic");
    }

    #[test]
    fn incremental_skips_unaffected_constraints() {
        let mut db = db_with(
            "base P(x).\n\
             base Q(x).\n\
             constraint p_nonneg: forall X: P(X) -> X >= 0.\n\
             constraint q_nonneg: forall X: Q(X) -> X >= 0.\n",
        );
        let p = db.pred_id("P").unwrap();
        let q = db.pred_id("Q").unwrap();
        db.insert(q, vec![Const::Int(-5)]).unwrap(); // pre-existing violation
        let mut delta = ChangeSet::new();
        delta.insert(p, Tuple::from(vec![Const::Int(3)]));
        db.apply(&delta).unwrap();
        let names = db.affected_constraints(&delta).unwrap();
        assert_eq!(names, vec!["p_nonneg".to_string()]);
        // Incremental check only sees p_nonneg — and P(3) is fine.
        assert!(db.check_delta(&delta).unwrap().is_empty());
        // Full check still reports the stale Q violation.
        assert_eq!(db.check().unwrap().len(), 1);
    }

    #[test]
    fn filtered_check_skips_constraints_outside_the_footprint() {
        let mut db = db_with(
            "base P(x).\n\
             base Q(x).\n\
             constraint p_nonneg: forall X: P(X) -> X >= 0.\n\
             constraint q_nonneg: forall X: Q(X) -> X >= 0.\n",
        );
        let p = db.pred_id("P").unwrap();
        let q = db.pred_id("Q").unwrap();
        let mut delta = ChangeSet::new();
        delta.insert(p, Tuple::from(vec![Const::Int(-1)]));
        delta.insert(q, Tuple::from(vec![Const::Int(-2)]));
        db.apply(&delta).unwrap();
        // Unfiltered: both constraints fire.
        assert_eq!(db.check_delta(&delta).unwrap().len(), 2);
        // A footprint naming only p_nonneg suppresses the q_nonneg check.
        let allowed: FxHashSet<String> = ["p_nonneg".to_string()].into_iter().collect();
        let v = db.check_delta_filtered(&delta, &allowed).unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].constraint, "p_nonneg");
        // An all-inclusive footprint is identical to the unfiltered check.
        let all: FxHashSet<String> = ["p_nonneg".to_string(), "q_nonneg".to_string()]
            .into_iter()
            .collect();
        assert_eq!(
            format!("{:?}", db.check_delta_filtered(&delta, &all).unwrap()),
            format!("{:?}", db.check_delta(&delta).unwrap())
        );
    }

    #[test]
    fn incremental_finds_new_violation() {
        let mut db = db_with(
            "base P(x).\n\
             constraint p_nonneg: forall X: P(X) -> X >= 0.\n",
        );
        let p = db.pred_id("P").unwrap();
        let mut delta = ChangeSet::new();
        delta.insert(p, Tuple::from(vec![Const::Int(-1)]));
        db.apply(&delta).unwrap();
        let v = db.check_delta(&delta).unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].constraint, "p_nonneg");
    }

    #[test]
    fn incremental_key_check_only_looks_at_inserts() {
        let mut db = Database::new();
        let p = db.declare_base_keyed("P", 2, &[0]).unwrap();
        db.insert(p, vec![Const::Int(1), Const::Int(10)]).unwrap();
        let mut delta = ChangeSet::new();
        delta.insert(p, Tuple::from(vec![Const::Int(1), Const::Int(20)]));
        db.apply(&delta).unwrap();
        let v = db.check_delta(&delta).unwrap();
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn violation_render_includes_witness() {
        let mut db = db_with(
            "base P(x).\n\
             constraint p_nonneg \"P must be non-negative\": forall X: P(X) -> X >= 0.\n",
        );
        let p = db.pred_id("P").unwrap();
        db.insert(p, vec![Const::Int(-2)]).unwrap();
        let v = db.check().unwrap();
        let line = v[0].render(&db);
        assert!(line.contains("p_nonneg"), "{line}");
        assert!(line.contains("X=-2"), "{line}");
        assert!(line.contains("non-negative"), "{line}");
    }
}
