//! # gom-deductive — the deductive database substrate
//!
//! A from-scratch deductive database in the style the paper's Consistency
//! Control relies on (Moerkotte & Zachmann, ICDE 1993, and their refs
//! [18–20]):
//!
//! * **EDB** — extensional base predicates with declared arities, optional
//!   keys, and journalled updates (`+`/`−` operations, evolution sessions
//!   with rollback),
//! * **IDB** — Datalog rules with stratified negation, evaluated bottom-up
//!   with the semi-naive strategy,
//! * **CDB** — consistency constraints stated declaratively as closed
//!   range-restricted first-order formulas, compiled into violation rules
//!   by a guarded Lloyd–Topor transformation,
//! * **repairs** — generated per violation from derivation trees: delete a
//!   supporting base fact (premise invalidation) or insert the missing base
//!   facts (conclusion completion, binding existentials against the current
//!   database).
//!
//! ```
//! use gom_deductive::Database;
//!
//! let mut db = Database::new();
//! db.load(
//!     "base SubTypRel(sub, super).
//!      derived SubTypRelT(sub, super).
//!      SubTypRelT(X, Y) :- SubTypRel(X, Y).
//!      SubTypRelT(X, Z) :- SubTypRel(X, Y), SubTypRelT(Y, Z).
//!      constraint subtype_acyclic \"subtype graph must be acyclic\":
//!        forall X: !SubTypRelT(X, X).",
//! ).unwrap();
//! let p = db.pred_id("SubTypRel").unwrap();
//! let (person, any) = (db.constant("Person"), db.constant("ANY"));
//! db.insert(p, vec![person, any]).unwrap();
//! assert!(db.check().unwrap().is_empty());
//! db.insert(p, vec![any, person]).unwrap();
//! let violations = db.check().unwrap();
//! assert_eq!(violations.len(), 2); // X=Person and X=ANY both witness a cycle
//! let repairs = db.repairs(&violations[0]).unwrap();
//! assert!(!repairs.is_empty());
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod changes;
mod check;
mod compile;
pub mod constraint;
mod db;
mod error;
mod eval;
pub mod incr;
pub mod parse;
mod plan;
pub mod pred;
pub mod provenance;
mod relation;
mod repair;
mod storage;
mod stratify;
pub mod symbol;
pub mod tuple;
pub mod value;

pub use changes::{ChangeSet, Op};
pub use check::Violation;
pub use compile::ProgramView;
pub use constraint::{Constraint, Formula};
pub use db::{Database, SourceInfo};
pub use error::{Error, Result};
pub use incr::Materialized;
pub use parse::{parse_program_lenient, LenientReport};
pub use pred::{PredId, PredKind};
pub use provenance::Derivation;
pub use relation::{BucketIter, Matches, Relation};
pub use repair::{Repair, RepairKind};
pub use storage::debug_tuple_copies;
pub use stratify::{stratify, Stratification};
pub use symbol::{FxHashMap, FxHashSet, Interner, Symbol};
pub use tuple::Tuple;
pub use value::Const;
