//! Incremental IDB maintenance: delete–rederive (DRed) for stratified
//! programs.
//!
//! This is the engine-level counterpart of the paper's "efficient
//! consistency checking" citation (\[20\]): instead of re-deriving the whole
//! IDB after a change set, a [`Materialized`] state is updated with the
//! classic three-phase DRed algorithm per stratum:
//!
//! 1. **over-delete** — propagate deletions (and insertions through
//!    negation) against the *old* state, removing a superset of the facts
//!    that lost support,
//! 2. **re-derive** — reinsert over-deleted facts that still have an
//!    alternative derivation in the *new* state,
//! 3. **insert** — propagate insertions (and deletions through negation)
//!    against the new state.
//!
//! Net per-predicate deltas flow upward through the strata. Phase 1 needs
//! the pre-change database, but cloning the EDB/IDB per application is
//! O(database) — exactly the cost this module exists to avoid. Instead the
//! old state is reconstructed *in place*: net-deleted facts are temporarily
//! re-inserted and net-added facts temporarily removed, the over-deletion
//! joins run, and the store flips back before re-derivation
//! ([`Database::flip_restore`]). The flip only ever touches the Δ facts,
//! so one application costs O(Δ · strata) regardless of database size.
//!
//! On top of `apply_incremental` (explicit [`Materialized`] handed to the
//! caller) the database can *arm* an internal maintained state
//! ([`Database::ensure_maintained`]): every subsequent base-fact insert or
//! remove feeds its singleton delta through the same DRed core, so the
//! violation relations of compiled constraints are correct at all times and
//! an EES commit check becomes a read ([`Database::check_maintained`]).
//!
//! The property test `incremental_equals_scratch` checks the result against
//! from-scratch evaluation on random programs and mutation batches; the
//! `tests/maintained_soundness.rs` sweep does the same for the maintained
//! session path against full [`Database::check`].
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::ast::Literal;
use crate::changes::ChangeSet;
use crate::check::Violation;
use crate::compile::Compiled;
use crate::db::Database;
use crate::error::{Error, Result};
use crate::eval::{exec_plan, instantiate_head, Binding, DeltaSrc, Store};
use crate::plan::RulePlans;
use crate::pred::PredId;
use crate::relation::Relation;
use crate::symbol::{FxHashMap, FxHashSet};
use crate::tuple::Tuple;

/// Net per-predicate change relations. Only touched predicates carry an
/// entry, so building one is O(Δ), not O(#preds).
pub(crate) type DeltaMap = FxHashMap<PredId, Relation>;

fn internal(msg: &str) -> Error {
    Error::SessionProtocol(format!("internal: {msg}"))
}

/// A materialised IDB that can be maintained incrementally.
pub struct Materialized {
    pub(crate) rels: Vec<Relation>,
    fingerprint: (usize, usize), // (pred_count, rule_count incl. aux)
    /// Derived-side indexes ensured once per materialisation instead of per
    /// application (the old per-call loop re-walked every index mask).
    indexed: bool,
}

impl Materialized {
    /// Sorted facts of a derived predicate in this materialisation.
    pub fn facts_sorted(&self, pred: PredId) -> Vec<Tuple> {
        self.rels[pred.index()].sorted()
    }

    /// Membership test.
    pub fn contains(&self, pred: PredId, t: &Tuple) -> bool {
        self.rels[pred.index()].contains(t)
    }

    /// Does this materialisation match the given definition fingerprint?
    pub(crate) fn fingerprint_matches(&self, pred_count: usize, rule_count: usize) -> bool {
        self.fingerprint == (pred_count, rule_count)
    }
}

impl Database {
    /// Materialise the current IDB for incremental maintenance.
    pub fn materialize(&mut self) -> Result<Materialized> {
        let _sp = gom_obs::span("dred.materialize");
        self.evaluate()?;
        let rels = match self.idb.as_ref() {
            Some(idb) => idb.rels.clone(),
            None => return Err(internal("IDB missing after evaluation")),
        };
        let rule_count = match self.compiled.as_ref() {
            Some(c) => c.rules.len(),
            None => return Err(internal("program missing after evaluation")),
        };
        Ok(Materialized {
            rels,
            fingerprint: (self.pred_count(), rule_count),
            indexed: false,
        })
    }

    /// Apply `delta` to the extensional store and maintain `mat`
    /// incrementally (DRed). Returns the effective base changes. Falls back
    /// to full re-materialisation when the rule set changed since
    /// [`Database::materialize`].
    pub fn apply_incremental(
        &mut self,
        mat: &mut Materialized,
        delta: &ChangeSet,
    ) -> Result<ChangeSet> {
        let _sp = gom_obs::span("dred.apply");
        self.ensure_compiled()?;
        let rule_count = self.compiled.as_ref().map_or(0, |c| c.rules.len());
        if mat.fingerprint != (self.pred_count(), rule_count) {
            let effective = self.apply(delta)?;
            *mat = self.materialize()?;
            return Ok(effective);
        }
        // Net per-fact changes, observed around the apply: presence before
        // vs after. No snapshot of the store is taken — the DRed core
        // reconstructs the old state in place from these nets.
        self.ensure_base_indexes();
        let mut touched: Vec<(PredId, Tuple)> = Vec::new();
        for op in &delta.ops {
            let entry = (op.pred(), op.tuple().clone());
            if !touched.contains(&entry) {
                touched.push(entry);
            }
        }
        let was: Vec<bool> = touched.iter().map(|(p, t)| self.contains(*p, t)).collect();
        let effective = self.apply(delta)?;
        let mut del = DeltaMap::default();
        let mut add = DeltaMap::default();
        for ((p, t), was) in touched.into_iter().zip(was) {
            let is = self.contains(p, &t);
            if was && !is {
                del.entry(p).or_default().insert(t);
            } else if !was && is {
                add.entry(p).or_default().insert(t);
            }
        }
        let Some(compiled) = self.compiled.take() else {
            return Err(internal("program missing after compilation"));
        };
        self.ensure_derived_indexes(&compiled, mat);
        self.dred(mat, &compiled, del, add);
        self.compiled = Some(compiled);
        Ok(effective)
    }

    /// Violations computed from a materialised state (no re-evaluation).
    pub fn violations_from(&mut self, mat: &Materialized) -> Result<Vec<Violation>> {
        let _sp = gom_obs::span("dred.check");
        self.ensure_compiled()?;
        let nconstraints = self.compiled.as_ref().map_or(0, |c| c.constraints.len());
        let indices: Vec<usize> = (0..nconstraints).collect();
        let mut out = self.collect_violations_public(&mat.rels, &indices)?;
        out.extend(self.key_violations_public());
        crate::check::sort_violations(&mut out);
        Ok(out)
    }

    // ----- maintained session state --------------------------------------------

    /// Arm (or refresh) the internal maintained materialisation. After this
    /// every base-fact [`Database::insert`]/[`Database::remove`] feeds its
    /// delta through DRed maintenance, keeping all derived predicates —
    /// including compiled constraint violation relations — correct at all
    /// times. A no-op when an up-to-date maintained state is already armed,
    /// so re-arming at every session begin is cheap.
    pub fn ensure_maintained(&mut self) -> Result<()> {
        self.ensure_compiled()?;
        let rule_count = self.compiled.as_ref().map_or(0, |c| c.rules.len());
        let fp = (self.pred_count(), rule_count);
        if self
            .maintained
            .as_ref()
            .is_some_and(|m| m.fingerprint == fp)
        {
            return Ok(());
        }
        self.maintained = None;
        self.ensure_base_indexes();
        let mut mat = self.materialize()?;
        if let Some(compiled) = self.compiled.take() {
            self.ensure_derived_indexes(&compiled, &mut mat);
            self.compiled = Some(compiled);
        }
        self.maintained = Some(mat);
        Ok(())
    }

    /// Is a maintained materialisation currently armed?
    pub fn maintenance_active(&self) -> bool {
        self.maintained.is_some()
    }

    /// Drop the maintained materialisation (definition change, rollback, or
    /// any maintenance irregularity). The next [`Database::ensure_maintained`]
    /// rebuilds from scratch.
    pub fn discard_maintained(&mut self) {
        self.maintained = None;
    }

    /// All violations recorded by the maintained state, or `None` when no
    /// maintained state is armed. Unlike [`Database::check_delta`] this sees
    /// *every* violation, not just those reachable from a session delta.
    pub fn maintained_violations(&mut self) -> Result<Option<Vec<Violation>>> {
        let Some(mat) = self.maintained.take() else {
            return Ok(None);
        };
        let out = self.violations_from(&mat);
        self.maintained = Some(mat);
        out.map(Some)
    }

    /// Feed one applied base-fact change through DRed maintenance. Called by
    /// `insert`/`remove` *after* the store changed; a no-op when no
    /// maintained state is armed. On any irregularity the maintained state
    /// is discarded — EES then falls back down the check ladder; fact
    /// mutation itself never fails because of maintenance.
    pub(crate) fn maintain_change(&mut self, pred: PredId, tuple: Tuple, inserted: bool) {
        let Some(mut mat) = self.maintained.take() else {
            return;
        };
        let _sp = gom_obs::span("dred.maintain");
        let Some(compiled) = self.compiled.take() else {
            gom_obs::counter_add("check.maintenance.discards", 1);
            return;
        };
        if mat.fingerprint != (self.pred_count(), compiled.rules.len()) {
            gom_obs::counter_add("check.maintenance.discards", 1);
            self.compiled = Some(compiled);
            return;
        }
        self.ensure_derived_indexes(&compiled, &mut mat);
        let mut del = DeltaMap::default();
        let mut add = DeltaMap::default();
        if inserted {
            add.entry(pred).or_default().insert(tuple);
        } else {
            del.entry(pred).or_default().insert(tuple);
        }
        self.dred(&mut mat, &compiled, del, add);
        self.compiled = Some(compiled);
        self.maintained = Some(mat);
    }

    /// Ensure the derived-side indexes the compiled plans expect exist on
    /// `mat` (once per materialisation, flagged by `mat.indexed`).
    fn ensure_derived_indexes(&self, compiled: &Compiled, mat: &mut Materialized) {
        if mat.indexed {
            return;
        }
        for (p, cols) in &compiled.index_masks {
            if !self.pred_decl(*p).is_base() {
                mat.rels[p.index()].ensure_index(cols);
            }
        }
        mat.indexed = true;
    }

    /// Flip the live store between the new state and the old (pre-delta)
    /// state, in place: with `to_old` the net-deleted facts are re-inserted
    /// and the net-added ones removed (base facts into the live EDB, derived
    /// facts into `mat`); with `!to_old` the exact inverse. Phase 1 of DRed
    /// must see the *old* database — including under every negated literal,
    /// where a merely-superset state would silently skip over-deletions —
    /// and this reconstructs it at O(Δ) cost instead of cloning.
    fn flip_restore(
        &mut self,
        mat: &mut Materialized,
        del: &DeltaMap,
        add: &DeltaMap,
        to_old: bool,
    ) {
        let (ins, rem) = if to_old { (del, add) } else { (add, del) };
        for (p, r) in ins {
            let target = if self.preds[p.index()].is_base() {
                &mut self.rels[p.index()]
            } else {
                &mut mat.rels[p.index()]
            };
            for t in r.iter() {
                target.insert(t.clone());
            }
        }
        for (p, r) in rem {
            let target = if self.preds[p.index()].is_base() {
                &mut self.rels[p.index()]
            } else {
                &mut mat.rels[p.index()]
            };
            for t in r.iter() {
                target.remove(t);
            }
        }
    }

    /// The DRed core: maintain `mat` for the net base changes `del`/`add`,
    /// which must already be applied to the live store. Shared by
    /// [`Database::apply_incremental`] (batch) and
    /// [`Database::maintain_change`] (per-op, singleton delta). Infallible:
    /// plan execution cannot error and no parallel evaluation is involved.
    fn dred(
        &mut self,
        mat: &mut Materialized,
        compiled: &Compiled,
        mut del: DeltaMap,
        mut add: DeltaMap,
    ) {
        if del.is_empty() && add.is_empty() {
            return;
        }
        for stratum in &compiled.strat.rule_strata {
            let rules = &compiled.rules;
            let stratum_preds: FxHashSet<PredId> =
                stratum.iter().map(|&i| rules[i].head.pred).collect();

            // ----- phase 1: over-delete (old state, reconstructed in place) -----
            // `del`/`add` hold base facts plus the nets of *lower* strata
            // only — this stratum's heads are written in phases 2–3 — so the
            // flip never touches a relation phase 1 derives into.
            self.flip_restore(mat, &del, &add, true);
            let mut over: Vec<(PredId, Tuple)> = Vec::new();
            let mut over_set: FxHashSet<(PredId, Tuple)> = FxHashSet::default();
            let mut frontier: Vec<(PredId, Tuple)> = Vec::new();
            for &ri in stratum {
                let rule = &rules[ri];
                for (li, lit) in rule.body.iter().enumerate() {
                    let (src_pred, neg) = match lit {
                        Literal::Pos(a) if !stratum_preds.contains(&a.pred) => (a.pred, false),
                        Literal::Neg(a) => (a.pred, true),
                        _ => continue,
                    };
                    let src = if neg {
                        add.get(&src_pred)
                    } else {
                        del.get(&src_pred)
                    };
                    let Some(src) = src.filter(|r| !r.is_empty()) else {
                        continue;
                    };
                    delta_join(
                        self,
                        &mat.rels,
                        None,
                        &compiled.plans[ri],
                        li,
                        src,
                        neg,
                        &mut |h| {
                            if mat.rels[rule.head.pred.index()].contains(&h)
                                && over_set.insert((rule.head.pred, h.clone()))
                            {
                                frontier.push((rule.head.pred, h));
                            }
                        },
                    );
                }
            }
            // iterate: stratum-pred deletions propagate
            while let Some((dp, dt)) = frontier.pop() {
                over.push((dp, dt.clone()));
                let mut dr = Relation::new();
                dr.insert(dt);
                for &ri in stratum {
                    let rule = &rules[ri];
                    for (li, lit) in rule.body.iter().enumerate() {
                        let Literal::Pos(a) = lit else {
                            continue;
                        };
                        if a.pred != dp {
                            continue;
                        }
                        delta_join(
                            self,
                            &mat.rels,
                            None,
                            &compiled.plans[ri],
                            li,
                            &dr,
                            false,
                            &mut |h| {
                                if mat.rels[rule.head.pred.index()].contains(&h)
                                    && over_set.insert((rule.head.pred, h.clone()))
                                {
                                    frontier.push((rule.head.pred, h));
                                }
                            },
                        );
                    }
                }
            }
            // back to the new state, then take out the over-deleted facts
            self.flip_restore(mat, &del, &add, false);
            for (p, t) in &over {
                mat.rels[p.index()].remove(t);
            }
            gom_obs::counter_add("dred.overdeleted", over.len() as u64);

            // ----- phase 2: re-derive (new state) ------------------------------------
            let mut still_deleted = over;
            let over_count = still_deleted.len();
            loop {
                let mut rederived: Vec<usize> = Vec::new();
                for (i, (p, t)) in still_deleted.iter().enumerate() {
                    if derivable(self, &mat.rels, compiled, *p, t) {
                        rederived.push(i);
                    }
                }
                if rederived.is_empty() {
                    break;
                }
                for &i in rederived.iter().rev() {
                    let (p, t) = still_deleted.remove(i);
                    mat.rels[p.index()].insert(t);
                }
            }
            gom_obs::counter_add("dred.rederived", (over_count - still_deleted.len()) as u64);
            for (p, t) in still_deleted {
                del.entry(p).or_default().insert(t);
            }

            // ----- phase 3: insert (new state) -----------------------------------------
            let mut frontier: Vec<(PredId, Tuple)> = Vec::new();
            for &ri in stratum {
                let rule = &rules[ri];
                for (li, lit) in rule.body.iter().enumerate() {
                    let (src_pred, neg) = match lit {
                        Literal::Pos(a) if !stratum_preds.contains(&a.pred) => (a.pred, false),
                        Literal::Neg(a) => (a.pred, true),
                        _ => continue,
                    };
                    let src = if neg {
                        del.get(&src_pred)
                    } else {
                        add.get(&src_pred)
                    };
                    let Some(src) = src.filter(|r| !r.is_empty()) else {
                        continue;
                    };
                    delta_join(
                        self,
                        &mat.rels,
                        None,
                        &compiled.plans[ri],
                        li,
                        src,
                        neg,
                        &mut |h| {
                            if !mat.rels[rule.head.pred.index()].contains(&h) {
                                frontier.push((rule.head.pred, h));
                            }
                        },
                    );
                }
            }
            while let Some((ap, at)) = frontier.pop() {
                if mat.rels[ap.index()].contains(&at) {
                    continue;
                }
                gom_obs::counter_add("dred.inserted", 1);
                mat.rels[ap.index()].insert(at.clone());
                add.entry(ap).or_default().insert(at.clone());
                let mut dr = Relation::new();
                dr.insert(at);
                for &ri in stratum {
                    let rule = &rules[ri];
                    for (li, lit) in rule.body.iter().enumerate() {
                        let Literal::Pos(a) = lit else {
                            continue;
                        };
                        if a.pred != ap {
                            continue;
                        }
                        delta_join(
                            self,
                            &mat.rels,
                            None,
                            &compiled.plans[ri],
                            li,
                            &dr,
                            false,
                            &mut |h| {
                                if !mat.rels[rule.head.pred.index()].contains(&h) {
                                    frontier.push((rule.head.pred, h));
                                }
                            },
                        );
                    }
                }
            }
            // ----- net bookkeeping for upper strata -------------------------------------
            for &p in &stratum_preds {
                let both: Vec<Tuple> = match (del.get(&p), add.get(&p)) {
                    (Some(d), Some(a)) => d.iter().filter(|t| a.contains(t)).cloned().collect(),
                    _ => continue,
                };
                if both.is_empty() {
                    continue;
                }
                if let Some(d) = del.get_mut(&p) {
                    for t in &both {
                        d.remove(t);
                    }
                }
                if let Some(a) = add.get_mut(&p) {
                    for t in &both {
                        a.remove(t);
                    }
                }
            }
        }
    }
}

/// Evaluate one rule with literal `li` bound from `delta_rel`, executing
/// the rule's precompiled delta plan. When the literal is negative, the
/// precompiled generator plan treats it as a positive scan over the delta
/// facts (the classic DRed trick: an inserted fact falsifies, a deleted
/// fact enables, the negation for exactly its own ground instance).
#[allow(clippy::too_many_arguments)]
fn delta_join(
    db: &Database,
    idb: &[Relation],
    base_override: Option<&[Relation]>,
    rp: &RulePlans,
    li: usize,
    delta_rel: &Relation,
    neg_as_generator: bool,
    sink: &mut dyn FnMut(Tuple),
) {
    let plan = if neg_as_generator {
        rp.neg_delta_plan(li)
    } else {
        rp.delta_plan(li)
    };
    let mut binding: Binding = vec![None; plan.var_count];
    let store = Store::new(db, idb, base_override);
    exec_plan(
        &store,
        plan,
        Some((li, DeltaSrc::Rel(delta_rel))),
        &mut binding,
        &mut |b| {
            sink(instantiate_head(&rp.head, b));
            true
        },
    );
    if gom_obs::enabled() {
        gom_obs::counter_add("dred.probes", store.probes.get());
    }
}

/// Is `t` derivable for `pred` by any rule against the given state? Runs
/// each candidate rule's precompiled derivability plan (head variables
/// pre-bound from `t`).
fn derivable(
    db: &Database,
    idb: &[Relation],
    compiled: &crate::compile::Compiled,
    pred: PredId,
    t: &Tuple,
) -> bool {
    use crate::ast::Term;
    let Some(rule_ixs) = compiled.rules_by_head.get(&pred) else {
        return false;
    };
    for &ri in rule_ixs {
        let rule = &compiled.rules[ri];
        let rp = &compiled.plans[ri];
        let mut binding: Binding = vec![None; rule.var_count()];
        let mut ok = true;
        for (j, &term) in rule.head.args.iter().enumerate() {
            match term {
                Term::Const(c) => {
                    if t.get(j) != c {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match binding[v.index()] {
                    Some(prev) if prev != t.get(j) => {
                        ok = false;
                        break;
                    }
                    _ => binding[v.index()] = Some(t.get(j)),
                },
            }
        }
        if !ok {
            continue;
        }
        let store = Store::new(db, idb, None);
        let mut found = false;
        exec_plan(&store, &rp.derivable, None, &mut binding, &mut |_| {
            found = true;
            false
        });
        if gom_obs::enabled() {
            gom_obs::counter_add("dred.probes", store.probes.get());
        }
        if found {
            return true;
        }
    }
    false
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::value::Const;

    fn tc_db() -> (Database, PredId, PredId) {
        let mut db = Database::new();
        db.load(
            "base Edge(a, b).
             derived Path(a, b).
             Path(X, Y) :- Edge(X, Y).
             Path(X, Z) :- Edge(X, Y), Path(Y, Z).",
        )
        .unwrap();
        let e = db.pred_id("Edge").unwrap();
        let p = db.pred_id("Path").unwrap();
        (db, e, p)
    }

    fn t2(a: i64, b: i64) -> Tuple {
        Tuple::from(vec![Const::Int(a), Const::Int(b)])
    }

    #[test]
    fn insertions_maintain_closure() {
        let (mut db, e, p) = tc_db();
        db.insert(e, t2(0, 1)).unwrap();
        let mut mat = db.materialize().unwrap();
        assert_eq!(mat.facts_sorted(p).len(), 1);
        let mut cs = ChangeSet::new();
        cs.insert(e, t2(1, 2));
        cs.insert(e, t2(2, 3));
        db.apply_incremental(&mut mat, &cs).unwrap();
        assert_eq!(mat.facts_sorted(p).len(), 6);
        // agrees with scratch evaluation
        db.invalidate_caches();
        assert_eq!(db.derived_facts(p).unwrap(), mat.facts_sorted(p));
    }

    #[test]
    fn deletions_with_rederivation() {
        let (mut db, e, p) = tc_db();
        // diamond: two paths 0→3
        for (a, b) in [(0, 1), (1, 3), (0, 2), (2, 3)] {
            db.insert(e, t2(a, b)).unwrap();
        }
        let mut mat = db.materialize().unwrap();
        assert!(mat.contains(p, &t2(0, 3)));
        // delete one branch: 0→3 must survive via the other
        let mut cs = ChangeSet::new();
        cs.delete(e, t2(0, 1));
        db.apply_incremental(&mut mat, &cs).unwrap();
        assert!(mat.contains(p, &t2(0, 3)));
        assert!(!mat.contains(p, &t2(1, 3)) || db.contains(e, &t2(1, 3)));
        db.invalidate_caches();
        assert_eq!(db.derived_facts(p).unwrap(), mat.facts_sorted(p));
        // delete the second branch too: 0→3 disappears
        let mut cs = ChangeSet::new();
        cs.delete(e, t2(0, 2));
        db.apply_incremental(&mut mat, &cs).unwrap();
        assert!(!mat.contains(p, &t2(0, 3)));
        db.invalidate_caches();
        assert_eq!(db.derived_facts(p).unwrap(), mat.facts_sorted(p));
    }

    #[test]
    fn negation_insert_deletes_derived() {
        let mut db = Database::new();
        db.load(
            "base Node(x).
             base Broken(x).
             derived Healthy(x).
             Healthy(X) :- Node(X), not Broken(X).",
        )
        .unwrap();
        let n = db.pred_id("Node").unwrap();
        let b = db.pred_id("Broken").unwrap();
        let h = db.pred_id("Healthy").unwrap();
        let one = Tuple::from(vec![Const::Int(1)]);
        db.insert(n, one.clone()).unwrap();
        let mut mat = db.materialize().unwrap();
        assert!(mat.contains(h, &one));
        // Inserting Broken(1) must DELETE Healthy(1) through the negation.
        let mut cs = ChangeSet::new();
        cs.insert(b, one.clone());
        db.apply_incremental(&mut mat, &cs).unwrap();
        assert!(!mat.contains(h, &one));
        // And deleting it re-enables.
        let mut cs = ChangeSet::new();
        cs.delete(b, one.clone());
        db.apply_incremental(&mut mat, &cs).unwrap();
        assert!(mat.contains(h, &one));
        db.invalidate_caches();
        assert_eq!(db.derived_facts(h).unwrap(), mat.facts_sorted(h));
    }

    #[test]
    fn multiple_negations_in_one_batch_over_delete() {
        // Regression guard for the in-place restore: with two negated
        // literals falsified by the *same* batch, phase 1 must evaluate the
        // other negation against the OLD state — a merely-new-state context
        // would see it already falsified and never over-delete H(1).
        let mut db = Database::new();
        db.load(
            "base A(x).
             base Q(x).
             base R(x).
             derived H(x).
             H(X) :- A(X), not Q(X), not R(X).",
        )
        .unwrap();
        let a = db.pred_id("A").unwrap();
        let q = db.pred_id("Q").unwrap();
        let r = db.pred_id("R").unwrap();
        let h = db.pred_id("H").unwrap();
        let one = Tuple::from(vec![Const::Int(1)]);
        db.insert(a, one.clone()).unwrap();
        let mut mat = db.materialize().unwrap();
        assert!(mat.contains(h, &one));
        let mut cs = ChangeSet::new();
        cs.insert(q, one.clone());
        cs.insert(r, one.clone());
        db.apply_incremental(&mut mat, &cs).unwrap();
        assert!(!mat.contains(h, &one));
        db.invalidate_caches();
        assert_eq!(db.derived_facts(h).unwrap(), mat.facts_sorted(h));
    }

    #[test]
    fn rule_change_falls_back_to_rematerialise() {
        let (mut db, e, p) = tc_db();
        db.insert(e, t2(0, 1)).unwrap();
        let mut mat = db.materialize().unwrap();
        db.load("derived Loop(x). Loop(X) :- Path(X, X).").unwrap();
        let mut cs = ChangeSet::new();
        cs.insert(e, t2(1, 0));
        db.apply_incremental(&mut mat, &cs).unwrap();
        let lp = db.pred_id("Loop").unwrap();
        assert_eq!(mat.facts_sorted(lp).len(), 2);
        let _ = p;
    }

    #[test]
    fn violations_from_materialized_state() {
        let mut db = Database::new();
        db.load(
            "base Sub(a, b).
             derived SubT(a, b).
             SubT(X, Y) :- Sub(X, Y).
             SubT(X, Z) :- Sub(X, Y), SubT(Y, Z).
             constraint acyclic: forall X: !SubT(X, X).",
        )
        .unwrap();
        let sub = db.pred_id("Sub").unwrap();
        let (a, b) = (db.constant("a"), db.constant("b"));
        db.insert(sub, vec![a, b]).unwrap();
        let mut mat = db.materialize().unwrap();
        assert!(db.violations_from(&mat).unwrap().is_empty());
        let mut cs = ChangeSet::new();
        cs.insert(sub, Tuple::from(vec![b, a]));
        db.apply_incremental(&mut mat, &cs).unwrap();
        let v = db.violations_from(&mat).unwrap();
        assert_eq!(v.len(), 2); // X=a, X=b
                                // undo: back to consistent
        let mut cs = ChangeSet::new();
        cs.delete(sub, Tuple::from(vec![b, a]));
        db.apply_incremental(&mut mat, &cs).unwrap();
        assert!(db.violations_from(&mat).unwrap().is_empty());
    }

    #[test]
    fn maintained_state_tracks_per_op_changes() {
        let (mut db, e, p) = tc_db();
        db.insert(e, t2(0, 1)).unwrap();
        db.ensure_maintained().unwrap();
        assert!(db.maintenance_active());
        db.insert(e, t2(1, 2)).unwrap();
        db.insert(e, t2(2, 3)).unwrap();
        db.remove(e, &t2(0, 1)).unwrap();
        let got: Vec<Tuple> = {
            let mat = db.maintained.as_ref().unwrap();
            mat.facts_sorted(p)
        };
        db.invalidate_caches();
        assert_eq!(db.derived_facts(p).unwrap(), got);
        // maintained survives invalidate_caches of the eval cache? No —
        // invalidate_caches retires the IDB only; the maintained state is
        // discarded on decompile, not on IDB retirement.
        assert!(db.maintenance_active());
    }

    #[test]
    fn maintained_state_discarded_on_definition_change() {
        let (mut db, e, _p) = tc_db();
        db.insert(e, t2(0, 1)).unwrap();
        db.ensure_maintained().unwrap();
        db.load("derived Loop(x). Loop(X) :- Path(X, X).").unwrap();
        assert!(!db.maintenance_active());
        // re-arming picks up the new program
        db.ensure_maintained().unwrap();
        db.insert(e, t2(1, 0)).unwrap();
        let lp = db.pred_id("Loop").unwrap();
        let got = db.maintained.as_ref().unwrap().facts_sorted(lp);
        assert_eq!(got.len(), 2);
    }
}
