//! Incremental IDB maintenance: delete–rederive (DRed) for stratified
//! programs.
//!
//! This is the engine-level counterpart of the paper's "efficient
//! consistency checking" citation (\[20\]): instead of re-deriving the whole
//! IDB after a change set, a [`Materialized`] state is updated with the
//! classic three-phase DRed algorithm per stratum:
//!
//! 1. **over-delete** — propagate deletions (and insertions through
//!    negation) against the *old* state, removing a superset of the facts
//!    that lost support,
//! 2. **re-derive** — reinsert over-deleted facts that still have an
//!    alternative derivation in the *new* state,
//! 3. **insert** — propagate insertions (and deletions through negation)
//!    against the new state.
//!
//! Net per-predicate deltas flow upward through the strata. The property
//! test `incremental_equals_scratch` checks the result against from-scratch
//! evaluation on random programs and mutation batches.

use crate::ast::Literal;
use crate::changes::ChangeSet;
use crate::check::Violation;
use crate::db::Database;
use crate::error::Result;
use crate::eval::{exec_plan, instantiate_head, Binding, DeltaSrc, Store};
use crate::plan::RulePlans;
use crate::pred::PredId;
use crate::relation::Relation;
use crate::symbol::FxHashSet;
use crate::tuple::Tuple;

/// A materialised IDB that can be maintained incrementally.
pub struct Materialized {
    pub(crate) rels: Vec<Relation>,
    fingerprint: (usize, usize), // (pred_count, rule_count incl. aux)
}

impl Materialized {
    /// Sorted facts of a derived predicate in this materialisation.
    pub fn facts_sorted(&self, pred: PredId) -> Vec<Tuple> {
        self.rels[pred.index()].sorted()
    }

    /// Membership test.
    pub fn contains(&self, pred: PredId, t: &Tuple) -> bool {
        self.rels[pred.index()].contains(t)
    }
}

impl Database {
    /// Materialise the current IDB for incremental maintenance.
    pub fn materialize(&mut self) -> Result<Materialized> {
        let _sp = gom_obs::span("dred.materialize");
        self.evaluate()?;
        let rels = self.idb.as_ref().expect("evaluated").rels.clone();
        let compiled = self.compiled.as_ref().expect("compiled");
        Ok(Materialized {
            rels,
            fingerprint: (self.pred_count(), compiled.rules.len()),
        })
    }

    /// Apply `delta` to the extensional store and maintain `mat`
    /// incrementally (DRed). Returns the effective base changes. Falls back
    /// to full re-materialisation when the rule set changed since
    /// [`Database::materialize`].
    pub fn apply_incremental(
        &mut self,
        mat: &mut Materialized,
        delta: &ChangeSet,
    ) -> Result<ChangeSet> {
        let _sp = gom_obs::span("dred.apply");
        self.ensure_compiled()?;
        {
            let compiled = self.compiled.as_ref().expect("compiled");
            if mat.fingerprint != (self.pred_count(), compiled.rules.len()) {
                let effective = self.apply(delta)?;
                *mat = self.materialize()?;
                return Ok(effective);
            }
        }
        // Snapshots of the old state. Base indexes are ensured first so the
        // clones carry them; in-place maintenance keeps the live EDB's
        // indexes valid across `apply`.
        self.ensure_base_indexes();
        let old_edb: Vec<Relation> = self.rels.clone();
        let mut old_idb: Vec<Relation> = mat.rels.clone();
        // Apply the base delta; compute net per-fact changes.
        let effective = self.apply(delta)?;
        let npred = self.pred_count();
        let mut del: Vec<Relation> = vec![Relation::new(); npred];
        let mut add: Vec<Relation> = vec![Relation::new(); npred];
        {
            let mut touched: Vec<(PredId, Tuple)> = Vec::new();
            for op in &effective.ops {
                let entry = (op.pred(), op.tuple().clone());
                if !touched.contains(&entry) {
                    touched.push(entry);
                }
            }
            for (p, t) in touched {
                let was = old_edb[p.index()].contains(&t);
                let is = self.contains(p, &t);
                if was && !is {
                    del[p.index()].insert(t);
                } else if !was && is {
                    add[p.index()].insert(t);
                }
            }
        }

        let compiled = self.compiled.take().expect("compiled");
        // Derived-side indexes on both the old snapshot and the maintained
        // materialisation (no-ops when already present).
        for (p, cols) in &compiled.index_masks {
            if !self.pred_decl(*p).is_base() {
                old_idb[p.index()].ensure_index(cols);
                mat.rels[p.index()].ensure_index(cols);
            }
        }
        let old_idb = old_idb;
        for stratum in &compiled.strat.rule_strata {
            let rules = &compiled.rules;
            let stratum_preds: FxHashSet<PredId> =
                stratum.iter().map(|&i| rules[i].head.pred).collect();

            // ----- phase 1: over-delete (old state) ---------------------------------
            let mut over: Vec<(PredId, Tuple)> = Vec::new();
            let mut over_rel: Vec<Relation> = vec![Relation::new(); npred];
            // round 0: deltas from base + lower strata
            let mut frontier: Vec<(PredId, Tuple)> = Vec::new();
            for &ri in stratum {
                let rule = &rules[ri];
                for (li, lit) in rule.body.iter().enumerate() {
                    let (src_pred, src_rel, neg) = match lit {
                        Literal::Pos(a) if !stratum_preds.contains(&a.pred) => {
                            (a.pred, &del, false)
                        }
                        Literal::Neg(a) => (a.pred, &add, true),
                        _ => continue,
                    };
                    if src_rel[src_pred.index()].is_empty() {
                        continue;
                    }
                    delta_join(
                        self,
                        &old_idb,
                        Some(&old_edb),
                        &compiled.plans[ri],
                        li,
                        &src_rel[src_pred.index()],
                        neg,
                        &mut |h| {
                            if old_idb[rule.head.pred.index()].contains(&h)
                                && !over_rel[rule.head.pred.index()].contains(&h)
                            {
                                over_rel[rule.head.pred.index()].insert(h.clone());
                                frontier.push((rule.head.pred, h));
                            }
                        },
                    );
                }
            }
            // iterate: stratum-pred deletions propagate
            while let Some((dp, dt)) = frontier.pop() {
                over.push((dp, dt.clone()));
                let mut dr = Relation::new();
                dr.insert(dt);
                for &ri in stratum {
                    let rule = &rules[ri];
                    for (li, lit) in rule.body.iter().enumerate() {
                        let Literal::Pos(a) = lit else {
                            continue;
                        };
                        if a.pred != dp {
                            continue;
                        }
                        delta_join(
                            self,
                            &old_idb,
                            Some(&old_edb),
                            &compiled.plans[ri],
                            li,
                            &dr,
                            false,
                            &mut |h| {
                                if old_idb[rule.head.pred.index()].contains(&h)
                                    && !over_rel[rule.head.pred.index()].contains(&h)
                                {
                                    over_rel[rule.head.pred.index()].insert(h.clone());
                                    frontier.push((rule.head.pred, h));
                                }
                            },
                        );
                    }
                }
            }
            // remove over-deleted facts
            for (p, t) in &over {
                mat.rels[p.index()].remove(t);
            }
            gom_obs::counter_add("dred.overdeleted", over.len() as u64);

            // ----- phase 2: re-derive (new state) ------------------------------------
            let mut still_deleted = over;
            let over_count = still_deleted.len();
            loop {
                let mut rederived: Vec<usize> = Vec::new();
                for (i, (p, t)) in still_deleted.iter().enumerate() {
                    if derivable(self, &mat.rels, &compiled, *p, t) {
                        rederived.push(i);
                    }
                }
                if rederived.is_empty() {
                    break;
                }
                for &i in rederived.iter().rev() {
                    let (p, t) = still_deleted.remove(i);
                    mat.rels[p.index()].insert(t);
                }
            }
            gom_obs::counter_add("dred.rederived", (over_count - still_deleted.len()) as u64);
            for (p, t) in still_deleted {
                del[p.index()].insert(t);
            }

            // ----- phase 3: insert (new state) -----------------------------------------
            let mut frontier: Vec<(PredId, Tuple)> = Vec::new();
            for &ri in stratum {
                let rule = &rules[ri];
                for (li, lit) in rule.body.iter().enumerate() {
                    let (src_pred, src_rel, neg) = match lit {
                        Literal::Pos(a) if !stratum_preds.contains(&a.pred) => {
                            (a.pred, &add, false)
                        }
                        Literal::Neg(a) => (a.pred, &del, true),
                        _ => continue,
                    };
                    if src_rel[src_pred.index()].is_empty() {
                        continue;
                    }
                    delta_join(
                        self,
                        &mat.rels,
                        None,
                        &compiled.plans[ri],
                        li,
                        &src_rel[src_pred.index()],
                        neg,
                        &mut |h| {
                            if !mat.rels[rule.head.pred.index()].contains(&h) {
                                frontier.push((rule.head.pred, h));
                            }
                        },
                    );
                }
            }
            while let Some((ap, at)) = frontier.pop() {
                if mat.rels[ap.index()].contains(&at) {
                    continue;
                }
                gom_obs::counter_add("dred.inserted", 1);
                mat.rels[ap.index()].insert(at.clone());
                add[ap.index()].insert(at.clone());
                let mut dr = Relation::new();
                dr.insert(at);
                for &ri in stratum {
                    let rule = &rules[ri];
                    for (li, lit) in rule.body.iter().enumerate() {
                        let Literal::Pos(a) = lit else {
                            continue;
                        };
                        if a.pred != ap {
                            continue;
                        }
                        delta_join(
                            self,
                            &mat.rels,
                            None,
                            &compiled.plans[ri],
                            li,
                            &dr,
                            false,
                            &mut |h| {
                                if !mat.rels[rule.head.pred.index()].contains(&h) {
                                    frontier.push((rule.head.pred, h));
                                }
                            },
                        );
                    }
                }
            }
            // ----- net bookkeeping for upper strata -------------------------------------
            for &p in &stratum_preds {
                let both: Vec<Tuple> = del[p.index()]
                    .iter()
                    .filter(|t| add[p.index()].contains(t))
                    .cloned()
                    .collect();
                for t in both {
                    del[p.index()].remove(&t);
                    add[p.index()].remove(&t);
                }
            }
        }
        self.compiled = Some(compiled);
        // The live cache, if any, is stale relative to mat semantics; keep
        // them decoupled (mat is authoritative for its user).
        Ok(effective)
    }

    /// Violations computed from a materialised state (no re-evaluation).
    pub fn violations_from(&mut self, mat: &Materialized) -> Result<Vec<Violation>> {
        let _sp = gom_obs::span("dred.check");
        self.ensure_compiled()?;
        let compiled = self.compiled.take().expect("compiled");
        let indices: Vec<usize> = (0..compiled.constraints.len()).collect();
        self.compiled = Some(compiled);
        let mut out = self.collect_violations_public(&mat.rels, &indices)?;
        out.extend(self.key_violations_public());
        Ok(out)
    }
}

/// Evaluate one rule with literal `li` bound from `delta_rel`, executing
/// the rule's precompiled delta plan. When the literal is negative, the
/// precompiled generator plan treats it as a positive scan over the delta
/// facts (the classic DRed trick: an inserted fact falsifies, a deleted
/// fact enables, the negation for exactly its own ground instance).
#[allow(clippy::too_many_arguments)]
fn delta_join(
    db: &Database,
    idb: &[Relation],
    base_override: Option<&[Relation]>,
    rp: &RulePlans,
    li: usize,
    delta_rel: &Relation,
    neg_as_generator: bool,
    sink: &mut dyn FnMut(Tuple),
) {
    let plan = if neg_as_generator {
        rp.neg_delta_plan(li)
    } else {
        rp.delta_plan(li)
    };
    let mut binding: Binding = vec![None; plan.var_count];
    let store = Store::new(db, idb, base_override);
    exec_plan(
        &store,
        plan,
        Some((li, DeltaSrc::Rel(delta_rel))),
        &mut binding,
        &mut |b| {
            sink(instantiate_head(&rp.head, b));
            true
        },
    );
    if gom_obs::enabled() {
        gom_obs::counter_add("dred.probes", store.probes.get());
    }
}

/// Is `t` derivable for `pred` by any rule against the given state? Runs
/// each candidate rule's precompiled derivability plan (head variables
/// pre-bound from `t`).
fn derivable(
    db: &Database,
    idb: &[Relation],
    compiled: &crate::compile::Compiled,
    pred: PredId,
    t: &Tuple,
) -> bool {
    use crate::ast::Term;
    let Some(rule_ixs) = compiled.rules_by_head.get(&pred) else {
        return false;
    };
    for &ri in rule_ixs {
        let rule = &compiled.rules[ri];
        let rp = &compiled.plans[ri];
        let mut binding: Binding = vec![None; rule.var_count()];
        let mut ok = true;
        for (j, &term) in rule.head.args.iter().enumerate() {
            match term {
                Term::Const(c) => {
                    if t.get(j) != c {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match binding[v.index()] {
                    Some(prev) if prev != t.get(j) => {
                        ok = false;
                        break;
                    }
                    _ => binding[v.index()] = Some(t.get(j)),
                },
            }
        }
        if !ok {
            continue;
        }
        let store = Store::new(db, idb, None);
        let mut found = false;
        exec_plan(&store, &rp.derivable, None, &mut binding, &mut |_| {
            found = true;
            false
        });
        if gom_obs::enabled() {
            gom_obs::counter_add("dred.probes", store.probes.get());
        }
        if found {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Const;

    fn tc_db() -> (Database, PredId, PredId) {
        let mut db = Database::new();
        db.load(
            "base Edge(a, b).
             derived Path(a, b).
             Path(X, Y) :- Edge(X, Y).
             Path(X, Z) :- Edge(X, Y), Path(Y, Z).",
        )
        .unwrap();
        let e = db.pred_id("Edge").unwrap();
        let p = db.pred_id("Path").unwrap();
        (db, e, p)
    }

    fn t2(a: i64, b: i64) -> Tuple {
        Tuple::from(vec![Const::Int(a), Const::Int(b)])
    }

    #[test]
    fn insertions_maintain_closure() {
        let (mut db, e, p) = tc_db();
        db.insert(e, t2(0, 1)).unwrap();
        let mut mat = db.materialize().unwrap();
        assert_eq!(mat.facts_sorted(p).len(), 1);
        let mut cs = ChangeSet::new();
        cs.insert(e, t2(1, 2));
        cs.insert(e, t2(2, 3));
        db.apply_incremental(&mut mat, &cs).unwrap();
        assert_eq!(mat.facts_sorted(p).len(), 6);
        // agrees with scratch evaluation
        db.invalidate_caches();
        assert_eq!(db.derived_facts(p).unwrap(), mat.facts_sorted(p));
    }

    #[test]
    fn deletions_with_rederivation() {
        let (mut db, e, p) = tc_db();
        // diamond: two paths 0→3
        for (a, b) in [(0, 1), (1, 3), (0, 2), (2, 3)] {
            db.insert(e, t2(a, b)).unwrap();
        }
        let mut mat = db.materialize().unwrap();
        assert!(mat.contains(p, &t2(0, 3)));
        // delete one branch: 0→3 must survive via the other
        let mut cs = ChangeSet::new();
        cs.delete(e, t2(0, 1));
        db.apply_incremental(&mut mat, &cs).unwrap();
        assert!(mat.contains(p, &t2(0, 3)));
        assert!(!mat.contains(p, &t2(1, 3)) || db.contains(e, &t2(1, 3)));
        db.invalidate_caches();
        assert_eq!(db.derived_facts(p).unwrap(), mat.facts_sorted(p));
        // delete the second branch too: 0→3 disappears
        let mut cs = ChangeSet::new();
        cs.delete(e, t2(0, 2));
        db.apply_incremental(&mut mat, &cs).unwrap();
        assert!(!mat.contains(p, &t2(0, 3)));
        db.invalidate_caches();
        assert_eq!(db.derived_facts(p).unwrap(), mat.facts_sorted(p));
    }

    #[test]
    fn negation_insert_deletes_derived() {
        let mut db = Database::new();
        db.load(
            "base Node(x).
             base Broken(x).
             derived Healthy(x).
             Healthy(X) :- Node(X), not Broken(X).",
        )
        .unwrap();
        let n = db.pred_id("Node").unwrap();
        let b = db.pred_id("Broken").unwrap();
        let h = db.pred_id("Healthy").unwrap();
        let one = Tuple::from(vec![Const::Int(1)]);
        db.insert(n, one.clone()).unwrap();
        let mut mat = db.materialize().unwrap();
        assert!(mat.contains(h, &one));
        // Inserting Broken(1) must DELETE Healthy(1) through the negation.
        let mut cs = ChangeSet::new();
        cs.insert(b, one.clone());
        db.apply_incremental(&mut mat, &cs).unwrap();
        assert!(!mat.contains(h, &one));
        // And deleting it re-enables.
        let mut cs = ChangeSet::new();
        cs.delete(b, one.clone());
        db.apply_incremental(&mut mat, &cs).unwrap();
        assert!(mat.contains(h, &one));
        db.invalidate_caches();
        assert_eq!(db.derived_facts(h).unwrap(), mat.facts_sorted(h));
    }

    #[test]
    fn rule_change_falls_back_to_rematerialise() {
        let (mut db, e, p) = tc_db();
        db.insert(e, t2(0, 1)).unwrap();
        let mut mat = db.materialize().unwrap();
        db.load("derived Loop(x). Loop(X) :- Path(X, X).").unwrap();
        let mut cs = ChangeSet::new();
        cs.insert(e, t2(1, 0));
        db.apply_incremental(&mut mat, &cs).unwrap();
        let lp = db.pred_id("Loop").unwrap();
        assert_eq!(mat.facts_sorted(lp).len(), 2);
        let _ = p;
    }

    #[test]
    fn violations_from_materialized_state() {
        let mut db = Database::new();
        db.load(
            "base Sub(a, b).
             derived SubT(a, b).
             SubT(X, Y) :- Sub(X, Y).
             SubT(X, Z) :- Sub(X, Y), SubT(Y, Z).
             constraint acyclic: forall X: !SubT(X, X).",
        )
        .unwrap();
        let sub = db.pred_id("Sub").unwrap();
        let (a, b) = (db.constant("a"), db.constant("b"));
        db.insert(sub, vec![a, b]).unwrap();
        let mut mat = db.materialize().unwrap();
        assert!(db.violations_from(&mat).unwrap().is_empty());
        let mut cs = ChangeSet::new();
        cs.insert(sub, Tuple::from(vec![b, a]));
        db.apply_incremental(&mut mat, &cs).unwrap();
        let v = db.violations_from(&mat).unwrap();
        assert_eq!(v.len(), 2); // X=a, X=b
                                // undo: back to consistent
        let mut cs = ChangeSet::new();
        cs.delete(sub, Tuple::from(vec![b, a]));
        db.apply_incremental(&mut mat, &cs).unwrap();
        assert!(db.violations_from(&mat).unwrap().is_empty());
    }
}
