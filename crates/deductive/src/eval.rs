//! Bottom-up evaluation: semi-naive fixpoint per stratum over compiled
//! join plans (see [`crate::plan`]), plus ad-hoc conjunctive queries.
//!
//! Plans are precomputed once per rule at compile time; each fixpoint round
//! only resolves key constants and walks index buckets. Within a stratum,
//! rule/delta activations are independent, so they can be evaluated across
//! threads (scoped, no external dependencies): each worker fills a private
//! fact buffer, and the buffers are merged, sorted, and deduplicated at the
//! round barrier — insertion order (and therefore every downstream output)
//! is identical for every thread count.

use crate::ast::{Atom, Literal, Rule, Term, Var};
use crate::compile::Compiled;
use crate::db::Database;
use crate::error::{Error, Result};
use crate::plan::{order_body, Plan, RulePlans, ScanStep, Src, Step};
use crate::pred::PredId;
use crate::relation::{IndexRef, Relation};
use crate::symbol::FxHashSet;
use crate::tuple::Tuple;
use crate::value::Const;

/// Materialised extensions of derived predicates (indexed by `PredId`).
pub(crate) struct Idb {
    pub rels: Vec<Relation>,
}

/// A variable binding environment for one rule activation.
pub(crate) type Binding = Vec<Option<Const>>;

fn resolve(t: Term, binding: &Binding) -> Option<Const> {
    match t {
        Term::Const(c) => Some(c),
        Term::Var(v) => binding[v.index()],
    }
}

#[inline]
fn resolve_src(s: Src, binding: &Binding) -> Const {
    match s {
        Src::Const(c) => c,
        Src::Var(v) => binding[v.index()].expect("plan: variable bound before use"),
    }
}

/// Evaluation context giving access to base and derived relations. When
/// `base_override` is set, base predicates are read from it instead of the
/// live EDB (used by incremental maintenance to join against the old
/// state).
pub(crate) struct Store<'a> {
    pub(crate) db: &'a Database,
    pub(crate) idb: &'a [Relation],
    pub(crate) base_override: Option<&'a [Relation]>,
    /// Tuples touched by plan scans through this store. Counted
    /// unconditionally (one register add per scan batch — cheaper than a
    /// branch), read out into `gom-obs` only when collection is enabled.
    pub(crate) probes: std::cell::Cell<u64>,
}

impl<'a> Store<'a> {
    pub(crate) fn new(
        db: &'a Database,
        idb: &'a [Relation],
        base_override: Option<&'a [Relation]>,
    ) -> Self {
        Store {
            db,
            idb,
            base_override,
            probes: std::cell::Cell::new(0),
        }
    }
}

impl Store<'_> {
    pub(crate) fn rel(&self, p: PredId) -> &Relation {
        if self.db.pred_decl(p).is_base() {
            match self.base_override {
                Some(base) => &base[p.index()],
                None => self.db.relation(p),
            }
        } else {
            &self.idb[p.index()]
        }
    }
}

// ---------------------------------------------------------------------------
// Plan execution
// ---------------------------------------------------------------------------

/// The substitute fact source for the delta literal of a semi-naive or
/// DRed plan execution.
///
/// The fixpoint loop stages each round's new facts as **row ids** into the
/// IDB relation they were just inserted into — no tuple clones, no hash
/// bookkeeping ([`DeltaSrc::Ids`]). Incremental maintenance (DRed) owns
/// materialised add/delete sets and passes them as whole relations
/// ([`DeltaSrc::Rel`]).
#[derive(Clone, Copy)]
pub(crate) enum DeltaSrc<'a> {
    /// Row ids into the relation `Store::rel` resolves for the delta
    /// literal's predicate (valid: the fixpoint never removes rows).
    Ids(&'a [u32]),
    /// A standalone relation replacing the delta literal's extension.
    Rel(&'a Relation),
}

/// Execute a compiled plan, calling `sink` for every complete binding.
/// `delta` substitutes the fact source used for the scan whose original
/// body index equals `delta.0`. The sink returns `false` to abort.
pub(crate) fn exec_plan<'s>(
    store: &'s Store<'s>,
    plan: &Plan,
    delta: Option<(usize, DeltaSrc<'s>)>,
    binding: &mut Binding,
    sink: &mut dyn FnMut(&Binding) -> bool,
) -> bool {
    // Resolve every keyed scan's index once up front: the inner probe loop
    // (once per outer tuple of the join) then goes straight to the
    // postings, skipping the per-call column-set map lookup.
    let idx: Vec<Option<IndexRef<'s>>> = plan
        .steps
        .iter()
        .map(|step| match step {
            Step::Scan(sc) if !sc.index_cols.is_empty() => match delta {
                Some((di, DeltaSrc::Rel(d))) if di == sc.lit => d.index_ref(&sc.index_cols),
                // Id-list deltas are scanned, never bucket-probed.
                Some((di, DeltaSrc::Ids(_))) if di == sc.lit => None,
                _ => store.rel(sc.pred).index_ref(&sc.index_cols),
            },
            _ => None,
        })
        .collect();
    exec_steps(store, &plan.steps, 0, delta, &idx, binding, sink)
}

fn exec_steps<'s>(
    store: &'s Store<'s>,
    steps: &[Step],
    depth: usize,
    delta: Option<(usize, DeltaSrc<'s>)>,
    idx: &[Option<IndexRef<'s>>],
    binding: &mut Binding,
    sink: &mut dyn FnMut(&Binding) -> bool,
) -> bool {
    let Some(step) = steps.get(depth) else {
        return sink(binding);
    };
    match step {
        Step::Scan(sc) => {
            let dsrc = match delta {
                Some((di, d)) if di == sc.lit => Some(d),
                _ => None,
            };
            if sc.index_cols.is_empty() {
                match dsrc {
                    Some(DeltaSrc::Ids(ids)) => {
                        let rel = store.rel(sc.pred);
                        let tuples = ids.iter().map(|&id| rel.row(id));
                        scan_tuples(
                            store,
                            steps,
                            depth,
                            delta,
                            idx,
                            binding,
                            sink,
                            sc,
                            tuples,
                            &[],
                        )
                    }
                    Some(DeltaSrc::Rel(d)) => scan_tuples(
                        store,
                        steps,
                        depth,
                        delta,
                        idx,
                        binding,
                        sink,
                        sc,
                        d.iter(),
                        &[],
                    ),
                    None => {
                        let rel = store.rel(sc.pred);
                        scan_tuples(
                            store,
                            steps,
                            depth,
                            delta,
                            idx,
                            binding,
                            sink,
                            sc,
                            rel.iter(),
                            &[],
                        )
                    }
                }
            } else {
                // Resolve the key on the stack; keyed scans run once per
                // candidate tuple of the outer loops, so a heap allocation
                // here is measurable.
                let mut kbuf = [Const::Int(0); 8];
                let kvec: Vec<Const>;
                let key: &[Const] = if sc.key.len() <= kbuf.len() {
                    for (i, &s) in sc.key.iter().enumerate() {
                        kbuf[i] = resolve_src(s, binding);
                    }
                    &kbuf[..sc.key.len()]
                } else {
                    kvec = sc.key.iter().map(|&s| resolve_src(s, binding)).collect();
                    &kvec
                };
                match (dsrc, idx.get(depth).copied().flatten()) {
                    // The bucket iterator verifies the key columns itself.
                    (_, Some(ix)) => {
                        let bucket = ix.bucket(&sc.index_cols, key);
                        scan_tuples(
                            store,
                            steps,
                            depth,
                            delta,
                            idx,
                            binding,
                            sink,
                            sc,
                            bucket,
                            &[],
                        )
                    }
                    // Id-list delta: filtered scan over the staged rows,
                    // verifying the key columns per tuple.
                    (Some(DeltaSrc::Ids(ids)), None) => {
                        let rel = store.rel(sc.pred);
                        let tuples = ids.iter().map(|&id| rel.row(id));
                        scan_tuples(
                            store, steps, depth, delta, idx, binding, sink, sc, tuples, key,
                        )
                    }
                    // No index (delta / repair contexts): filtered scan.
                    (Some(DeltaSrc::Rel(d)), None) => scan_tuples(
                        store,
                        steps,
                        depth,
                        delta,
                        idx,
                        binding,
                        sink,
                        sc,
                        d.iter(),
                        key,
                    ),
                    (None, None) => {
                        let rel = store.rel(sc.pred);
                        scan_tuples(
                            store,
                            steps,
                            depth,
                            delta,
                            idx,
                            binding,
                            sink,
                            sc,
                            rel.iter(),
                            key,
                        )
                    }
                }
            }
        }
        Step::Neg { pred, args } => {
            let vals = args.iter().map(|&s| resolve_src(s, binding));
            if !store.rel(*pred).contains_vals(vals) {
                exec_steps(store, steps, depth + 1, delta, idx, binding, sink)
            } else {
                true
            }
        }
        Step::Cmp { op, l, r } => {
            if op.eval(resolve_src(*l, binding), resolve_src(*r, binding)) {
                exec_steps(store, steps, depth + 1, delta, idx, binding, sink)
            } else {
                true
            }
        }
    }
}

/// Drive one scan step over an iterator of candidate tuples. `verify_key`
/// lists `(column → expected constant)` pairs to re-check per tuple (empty
/// when the tuples come from a matching index bucket).
#[allow(clippy::too_many_arguments)]
fn scan_tuples<'a, 's>(
    store: &'s Store<'s>,
    steps: &[Step],
    depth: usize,
    delta: Option<(usize, DeltaSrc<'s>)>,
    idx: &[Option<IndexRef<'s>>],
    binding: &mut Binding,
    sink: &mut dyn FnMut(&Binding) -> bool,
    sc: &ScanStep,
    tuples: impl Iterator<Item = &'a Tuple>,
    verify_key: &[Const],
) -> bool {
    let mut scanned = 0u64;
    let mut keep = true;
    'tuples: for t in tuples {
        scanned += 1;
        if !verify_key.is_empty() {
            for (i, &c) in sc.index_cols.iter().enumerate() {
                if t.get(c) != verify_key[i] {
                    continue 'tuples;
                }
            }
        }
        for &(c, v) in sc.bind_cols.iter() {
            binding[v.index()] = Some(t.get(c));
        }
        let mut ok = true;
        for &(c, v) in sc.check_cols.iter() {
            if binding[v.index()] != Some(t.get(c)) {
                ok = false;
                break;
            }
        }
        let keep_going = if ok {
            exec_steps(store, steps, depth + 1, delta, idx, binding, sink)
        } else {
            true
        };
        for &(_, v) in sc.bind_cols.iter() {
            binding[v.index()] = None;
        }
        if !keep_going {
            keep = false;
            break;
        }
    }
    store.probes.set(store.probes.get() + scanned);
    keep
}

/// Instantiate a plan's head template under a complete binding.
pub(crate) fn instantiate_head(head: &[Src], binding: &Binding) -> Tuple {
    Tuple::from(
        head.iter()
            .map(|&s| resolve_src(s, binding))
            .collect::<Vec<_>>(),
    )
}

/// A derived fact staged for the round flush. Heads of arity ≤ 2 (the
/// overwhelmingly common case) stay inline, so a derivation allocates its
/// stored tuple only once it is confirmed new — duplicate derivations,
/// which dominate dense fixpoints, never touch the allocator.
pub(crate) enum Staged {
    Inline(PredId, u8, [Const; 2]),
    Boxed(PredId, Tuple),
}

#[inline]
fn stage_head(pred: PredId, head: &[Src], binding: &Binding) -> Staged {
    if head.len() <= 2 {
        let mut arr = [Const::Int(0); 2];
        for (i, &s) in head.iter().enumerate() {
            arr[i] = resolve_src(s, binding);
        }
        Staged::Inline(pred, head.len() as u8, arr)
    } else {
        Staged::Boxed(pred, instantiate_head(head, binding))
    }
}

/// Publish one rule activation's derivation and probe counts into the
/// observability aggregator. No-op (one relaxed load) when collection is
/// off; the `format!` for the per-rule key only happens when it is on.
#[inline]
fn publish_rule_stats(db: &Database, head: PredId, ri: usize, derivations: u64, store: &Store) {
    if !gom_obs::enabled() {
        return;
    }
    gom_obs::counter_add("eval.probes", store.probes.get());
    gom_obs::counter_add(
        &format!("eval.rule.derivations:{}#{ri}", db.pred_name(head)),
        derivations,
    );
}

// ---------------------------------------------------------------------------
// Parallel work distribution
// ---------------------------------------------------------------------------

/// Extract a printable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f` over `items`, splitting across up to `threads` scoped threads.
/// Each worker appends into a private buffer; buffers are concatenated in
/// chunk order. Callers needing thread-count-independent output sort the
/// result. With `threads <= 1` this runs inline with no thread overhead.
///
/// Panics inside `f` are contained at the worker boundary and surface as
/// [`Error::EvalPanic`] — identically on the inline and threaded paths —
/// so a panicking rule evaluation cannot take the process (or an open
/// evolution session) down with it.
pub(crate) fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Result<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(&T, &mut Vec<R>) + Sync,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};
    if threads <= 1 || items.len() <= 1 {
        let t0 = gom_obs::enabled().then(std::time::Instant::now);
        let mut buf = Vec::new();
        for it in items {
            catch_unwind(AssertUnwindSafe(|| f(it, &mut buf)))
                .map_err(|p| Error::EvalPanic(panic_message(p)))?;
        }
        if let Some(t0) = t0 {
            gom_obs::record(
                "eval.worker.busy_ns",
                t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
            );
        }
        return Ok(buf);
    }
    let chunk = items.len().div_ceil(threads.min(items.len()));
    let mut out: Vec<R> = Vec::new();
    let mut failed: Option<Error> = None;
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|ch| {
                s.spawn(move || {
                    let t0 = gom_obs::enabled().then(std::time::Instant::now);
                    let mut buf = Vec::new();
                    for it in ch {
                        f(it, &mut buf);
                    }
                    if let Some(t0) = t0 {
                        gom_obs::record(
                            "eval.worker.busy_ns",
                            t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
                        );
                    }
                    buf
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(buf) => out.extend(buf),
                Err(p) => {
                    // Keep joining the remaining workers (scoped threads
                    // must finish anyway); report the first panic.
                    if failed.is_none() {
                        failed = Some(Error::EvalPanic(panic_message(p)));
                    }
                }
            }
        }
    });
    match failed {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

// ---------------------------------------------------------------------------
// Fixpoint
// ---------------------------------------------------------------------------

/// Merge a round's derived facts into `idb`/`delta`.
///
/// Probe-first: every derivation is checked against the membership table
/// (re-derivations of known facts — the bulk of the traffic on dense
/// inputs — cost one probe and nothing else), and only the genuinely new
/// facts are sorted before insertion. Sorting that small set keeps
/// insertion order — and thus all downstream iteration order — sorted per
/// round and independent of thread count and work-chunk layout, and it
/// keeps the row vector a concatenation of sorted runs, which the final
/// [`Relation::sorted`] merge exploits. Each fact is hashed once; the
/// probe and the insert share it.
fn flush_round(facts: Vec<Staged>, idb: &mut [Relation], delta: &mut [Vec<u32>]) {
    // The membership probe is latency-bound: each duplicate hit touches
    // the slot line and then the stored row to verify equality. Hashing
    // the whole batch up front lets us issue each slot fetch a dozen
    // facts ahead of its probe, overlapping the misses.
    const LOOKAHEAD: usize = 12;
    let meta: Vec<(u32, u64)> = facts
        .iter()
        .map(|s| match s {
            Staged::Inline(p, len, arr) => (
                p.index() as u32,
                Relation::fact_hash_vals(&arr[..*len as usize]),
            ),
            Staged::Boxed(p, t) => (p.index() as u32, Relation::fact_hash(t)),
        })
        .collect();
    let total = meta.len() as u64;
    let mut fresh_count = 0u64;
    for (i, s) in facts.into_iter().enumerate() {
        if let Some(&(lp, lh)) = meta.get(i + LOOKAHEAD) {
            idb[lp as usize].prefetch_slot(lh);
        }
        let h = meta[i].1;
        let (p, fresh) = match s {
            Staged::Inline(p, len, arr) => (p, idb[p.index()].insert_vals(h, &arr[..len as usize])),
            Staged::Boxed(p, t) => (p, idb[p.index()].insert_hashed(h, t)),
        };
        if let Some(id) = fresh {
            fresh_count += 1;
            delta[p.index()].push(id);
        }
    }
    if gom_obs::enabled() {
        gom_obs::counter_add("eval.tuples.derived", fresh_count);
        gom_obs::counter_add("eval.tuples.deduped", total - fresh_count);
    }
}

/// Evaluate one stratum to fixpoint, semi-naively, executing compiled
/// plans. `plans` is parallel to `rules`.
fn eval_stratum(
    db: &Database,
    idb: &mut [Relation],
    rules: &[Rule],
    plans: &[RulePlans],
    rule_ixs: &[usize],
    threads: usize,
) -> Result<()> {
    let stratum_preds: FxHashSet<PredId> = rule_ixs.iter().map(|&i| rules[i].head.pred).collect();
    let mut delta: Vec<Vec<u32>> = vec![Vec::new(); idb.len()];
    // Round 0: full evaluation of every rule against the stratum input.
    let round0 = par_map(threads, rule_ixs, |&ri, buf| {
        if db.eval_failpoint() {
            panic!("injected evaluation failpoint");
        }
        let rp = &plans[ri];
        let store = Store::new(db, idb, None);
        let before = buf.len();
        let mut binding: Binding = vec![None; rp.full.var_count];
        exec_plan(&store, &rp.full, None, &mut binding, &mut |b| {
            buf.push(stage_head(rp.head_pred, &rp.head, b));
            true
        });
        publish_rule_stats(db, rp.head_pred, ri, (buf.len() - before) as u64, &store);
    })?;
    flush_round(round0, idb, &mut delta);
    let mut rounds = 1u64;
    // Semi-naive iteration: one work item per (rule, delta literal).
    loop {
        let work: Vec<(usize, usize)> = rule_ixs
            .iter()
            .flat_map(|&ri| {
                rules[ri]
                    .body
                    .iter()
                    .enumerate()
                    .filter(|(_, lit)| {
                        matches!(lit, Literal::Pos(a)
                            if stratum_preds.contains(&a.pred)
                                && !delta[a.pred.index()].is_empty())
                    })
                    .map(move |(li, _)| (ri, li))
            })
            .collect();
        if work.is_empty() {
            break;
        }
        let round = par_map(threads, &work, |&(ri, li), buf| {
            let rp = &plans[ri];
            let Literal::Pos(atom) = &rules[ri].body[li] else {
                unreachable!("delta work items are positive literals");
            };
            let store = Store::new(db, idb, None);
            let before = buf.len();
            let plan = rp.delta_plan(li);
            let mut binding: Binding = vec![None; plan.var_count];
            exec_plan(
                &store,
                plan,
                Some((li, DeltaSrc::Ids(&delta[atom.pred.index()]))),
                &mut binding,
                &mut |b| {
                    buf.push(stage_head(rp.head_pred, &rp.head, b));
                    true
                },
            );
            publish_rule_stats(db, rp.head_pred, ri, (buf.len() - before) as u64, &store);
        })?;
        for p in &stratum_preds {
            delta[p.index()].clear();
        }
        flush_round(round, idb, &mut delta);
        rounds += 1;
    }
    gom_obs::counter_add("eval.rounds", rounds);
    Ok(())
}

/// Evaluate one stratum into `idb` (crate-internal entry point used by the
/// incremental checker).
pub(crate) fn eval_stratum_public(
    db: &Database,
    idb: &mut [Relation],
    compiled: &Compiled,
    rule_ixs: &[usize],
    threads: usize,
) -> Result<()> {
    eval_stratum(db, idb, &compiled.rules, &compiled.plans, rule_ixs, threads)
}

/// Solve a body against the current EDB + a given IDB, with some variables
/// preset, returning up to `limit` full bindings. Crate-internal helper for
/// repair generation and provenance; compiles a one-off plan seeded with
/// the preset variables.
pub(crate) fn solve_body(
    db: &Database,
    idb: &[Relation],
    body: &[Literal],
    var_count: usize,
    preset: &[(Var, Const)],
    limit: usize,
) -> Vec<Binding> {
    let seed: Vec<Var> = preset.iter().map(|&(v, _)| v).collect();
    let plan = Plan::compile(body, var_count, None, &seed);
    let mut binding: Binding = vec![None; var_count];
    for &(v, c) in preset {
        binding[v.index()] = Some(c);
    }
    let store = Store::new(db, idb, None);
    let mut out: Vec<Binding> = Vec::new();
    exec_plan(&store, &plan, None, &mut binding, &mut |b| {
        out.push(b.clone());
        out.len() < limit
    });
    if gom_obs::enabled() {
        gom_obs::counter_add("repair.probes", store.probes.get());
    }
    out
}

pub(crate) fn instantiate(head: &Atom, binding: &Binding) -> Tuple {
    Tuple::from(
        head.args
            .iter()
            .map(|&t| resolve(t, binding).expect("safe rule: head fully bound"))
            .collect::<Vec<_>>(),
    )
}

/// Ensure every derived-predicate index demanded by the compiled plans
/// exists on `rels`. Base-predicate indexes are ensured separately on the
/// live EDB (or its snapshots) by the callers owning them mutably.
pub(crate) fn ensure_idb_indexes(db: &Database, compiled: &Compiled, rels: &mut [Relation]) {
    for (p, cols) in &compiled.index_masks {
        if !db.pred_decl(*p).is_base() {
            rels[p.index()].ensure_index(cols);
        }
    }
}

pub(crate) fn eval_program(
    db: &Database,
    compiled: &Compiled,
    threads: usize,
    size_hints: &[usize],
    spare: Option<Idb>,
) -> Result<Idb> {
    // Recycle the previously invalidated IDB when its shape still fits:
    // slot arrays, index maps, and tuple buffers all carry over, so a
    // re-evaluation allocates almost nothing.
    let mut rels: Vec<Relation> = match spare {
        Some(mut old) if old.rels.len() == db.pred_count() => {
            for r in &mut old.rels {
                r.recycle();
            }
            old.rels
        }
        _ => vec![Relation::new(); db.pred_count()],
    };
    for (r, &n) in rels.iter_mut().zip(size_hints) {
        if n > 0 {
            r.reserve(n);
        }
    }
    ensure_idb_indexes(db, compiled, &mut rels);
    let _fix = gom_obs::span("eval.fixpoint");
    for (si, stratum) in compiled.strat.rule_strata.iter().enumerate() {
        let _sp =
            gom_obs::enabled().then(|| gom_obs::span_labeled("eval.stratum", &si.to_string()));
        eval_stratum(
            db,
            &mut rels,
            &compiled.rules,
            &compiled.plans,
            stratum,
            threads,
        )?;
    }
    Ok(Idb { rels })
}

// ---------------------------------------------------------------------------
// Naive tuple-at-a-time interpreter
// ---------------------------------------------------------------------------
// Kept as the differential-test oracle and the `datalog_eval` benchmark
// ablation: no plans, no bucket fast path, strictly single-threaded.

/// Match one rule body (already ordered) against the store, calling `sink`
/// for every complete binding.
fn match_body(
    store: &Store<'_>,
    body: &[Literal],
    order: &[usize],
    depth: usize,
    binding: &mut Binding,
    sink: &mut dyn FnMut(&Binding) -> bool,
) -> bool {
    if depth == order.len() {
        return sink(binding);
    }
    let li = order[depth];
    match &body[li] {
        Literal::Pos(atom) => {
            let rel = store.rel(atom.pred);
            let mut bound_cols: Vec<(usize, Const)> = Vec::new();
            for (j, &t) in atom.args.iter().enumerate() {
                if let Some(c) = resolve(t, binding) {
                    bound_cols.push((j, c));
                }
            }
            'tuples: for tuple in rel.select(&bound_cols) {
                let mut newly: Vec<Var> = Vec::new();
                for (j, &t) in atom.args.iter().enumerate() {
                    match t {
                        Term::Const(c) => {
                            if tuple.get(j) != c {
                                for v in newly.drain(..) {
                                    binding[v.index()] = None;
                                }
                                continue 'tuples;
                            }
                        }
                        Term::Var(v) => match binding[v.index()] {
                            Some(c) => {
                                if tuple.get(j) != c {
                                    for v in newly.drain(..) {
                                        binding[v.index()] = None;
                                    }
                                    continue 'tuples;
                                }
                            }
                            None => {
                                binding[v.index()] = Some(tuple.get(j));
                                newly.push(v);
                            }
                        },
                    }
                }
                let keep_going = match_body(store, body, order, depth + 1, binding, sink);
                for v in newly {
                    binding[v.index()] = None;
                }
                if !keep_going {
                    return false;
                }
            }
            true
        }
        Literal::Neg(atom) => {
            let ground: Vec<Const> = atom
                .args
                .iter()
                .map(|&t| resolve(t, binding).expect("safe rule: negation fully bound"))
                .collect();
            if !store.rel(atom.pred).contains(&Tuple::from(ground)) {
                match_body(store, body, order, depth + 1, binding, sink)
            } else {
                true
            }
        }
        Literal::Cmp(op, l, r) => {
            let a = resolve(*l, binding).expect("safe rule: comparison fully bound");
            let b = resolve(*r, binding).expect("safe rule: comparison fully bound");
            if op.eval(a, b) {
                match_body(store, body, order, depth + 1, binding, sink)
            } else {
                true
            }
        }
    }
}

/// Evaluate one stratum naively (re-deriving everything each round) with
/// the tuple-at-a-time interpreter. Returns the number of rounds.
fn eval_stratum_naive(
    db: &Database,
    idb: &mut [Relation],
    rules: &[Rule],
    rule_ixs: &[usize],
) -> usize {
    let mut rounds = 0;
    loop {
        rounds += 1;
        let mut new_facts: Vec<(PredId, Tuple)> = Vec::new();
        for &ri in rule_ixs {
            let rule = &rules[ri];
            let order = order_body(&rule.body, rule.var_count(), None, &[]);
            let mut binding: Binding = vec![None; rule.var_count()];
            let store = Store::new(db, idb, None);
            match_body(&store, &rule.body, &order, 0, &mut binding, &mut |b| {
                new_facts.push((rule.head.pred, instantiate(&rule.head, b)));
                true
            });
        }
        let mut changed = false;
        for (p, t) in new_facts {
            if idb[p.index()].insert(t) {
                changed = true;
            }
        }
        if !changed {
            return rounds;
        }
    }
}

impl Database {
    /// Ensure rules/constraints are compiled and the IDB is materialised.
    pub fn evaluate(&mut self) -> Result<()> {
        self.ensure_compiled()?;
        if self.idb.is_some() {
            return Ok(());
        }
        self.ensure_base_indexes();
        let threads = self.eval_threads();
        let compiled = self.compiled.take().expect("just compiled");
        let hints = std::mem::take(&mut self.idb_size_hints);
        let spare = self.spare_idb.take();
        let idb = eval_program(self, &compiled, threads, &hints, spare);
        // Restore the compiled program before propagating any evaluation
        // error: a contained worker panic must leave the database usable
        // (base facts intact, open session still rollbackable) — only the
        // derived facts of the failed run are discarded.
        self.compiled = Some(compiled);
        let idb = idb?;
        self.idb_size_hints = idb.rels.iter().map(|r| r.len()).collect();
        self.idb = Some(idb);
        Ok(())
    }

    /// Evaluate the whole program with the naive (non-semi-naive, unplanned)
    /// strategy, returning the number of fixpoint rounds. Benchmark ablation
    /// only; the result is not cached.
    pub fn evaluate_naive_for_bench(&mut self) -> Result<usize> {
        self.ensure_compiled()?;
        let compiled = self.compiled.take().expect("just compiled");
        let mut rels: Vec<Relation> = vec![Relation::new(); self.pred_count()];
        let mut rounds = 0;
        for stratum in &compiled.strat.rule_strata {
            rounds += eval_stratum_naive(self, &mut rels, &compiled.rules, stratum);
        }
        self.compiled = Some(compiled);
        Ok(rounds)
    }

    /// Sorted facts of a derived predicate computed by the naive
    /// tuple-at-a-time interpreter (no plans, no maintained indexes, no
    /// threads). Differential-test oracle; not cached.
    #[doc(hidden)]
    pub fn reference_facts(&mut self, pred: PredId) -> Result<Vec<Tuple>> {
        self.ensure_compiled()?;
        let compiled = self.compiled.take().expect("just compiled");
        let mut rels: Vec<Relation> = vec![Relation::new(); self.pred_count()];
        for stratum in &compiled.strat.rule_strata {
            eval_stratum_naive(self, &mut rels, &compiled.rules, stratum);
        }
        self.compiled = Some(compiled);
        Ok(rels[pred.index()].sorted())
    }

    /// Sorted facts of a derived predicate (materialising if necessary).
    pub fn derived_facts(&mut self, pred: PredId) -> Result<Vec<Tuple>> {
        self.evaluate()?;
        Ok(self.idb.as_ref().expect("evaluated").rels[pred.index()].sorted())
    }

    /// Does the (possibly derived) predicate contain this fact?
    pub fn holds(&mut self, pred: PredId, tuple: &Tuple) -> Result<bool> {
        if self.pred_decl(pred).is_base() {
            return Ok(self.contains(pred, tuple));
        }
        self.evaluate()?;
        Ok(self.idb.as_ref().expect("evaluated").rels[pred.index()].contains(tuple))
    }

    /// Evaluate an ad-hoc conjunctive query: return every binding of `out`
    /// that satisfies all `body` literals, deduplicated, sorted.
    ///
    /// The body must be range-restricted: every variable in `out`, in a
    /// negation, or in a comparison must occur in a positive literal. The
    /// body is compiled to a plan and any indexes it wants are built (and
    /// from then on maintained) before execution.
    pub fn query(&mut self, body: &[Literal], out: &[Var]) -> Result<Vec<Tuple>> {
        // Safety check.
        let mut positive: FxHashSet<Var> = FxHashSet::default();
        for lit in body {
            if let Literal::Pos(a) = lit {
                positive.extend(a.vars());
            }
        }
        let check = |v: Var| -> Result<()> {
            if positive.contains(&v) {
                Ok(())
            } else {
                Err(Error::UnsafeRule {
                    rule: "<query>".into(),
                    var: format!("#{}", v.0),
                })
            }
        };
        for &v in out {
            check(v)?;
        }
        for lit in body {
            match lit {
                Literal::Pos(_) => {}
                Literal::Neg(a) => {
                    for v in a.vars() {
                        check(v)?;
                    }
                }
                Literal::Cmp(_, l, r) => {
                    for v in [l.as_var(), r.as_var()].into_iter().flatten() {
                        check(v)?;
                    }
                }
            }
        }
        self.evaluate()?;
        let var_count = body
            .iter()
            .flat_map(|l| l.vars())
            .chain(out.iter().copied())
            .map(|v| v.index() + 1)
            .max()
            .unwrap_or(0);
        let plan = Plan::compile(body, var_count, None, &[]);
        // Build the indexes the query plan wants; they stay maintained.
        let mut idb = self.idb.take().expect("evaluated");
        for (p, cols) in plan.masks() {
            if self.pred_decl(p).is_base() {
                self.rels[p.index()].ensure_index(cols);
            } else {
                idb.rels[p.index()].ensure_index(cols);
            }
        }
        let mut binding: Binding = vec![None; var_count];
        let store = Store::new(self, &idb.rels, None);
        let mut results: FxHashSet<Tuple> = FxHashSet::default();
        let _sp = gom_obs::span("eval.query");
        exec_plan(&store, &plan, None, &mut binding, &mut |b| {
            results.insert(Tuple::from(
                out.iter()
                    .map(|v| b[v.index()].expect("out var bound"))
                    .collect::<Vec<_>>(),
            ));
            true
        });
        if gom_obs::enabled() {
            gom_obs::counter_add("eval.probes", store.probes.get());
        }
        drop(_sp);
        self.idb = Some(idb);
        let mut v: Vec<Tuple> = results.into_iter().collect();
        v.sort();
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;

    fn setup_path() -> (Database, PredId, PredId) {
        let mut db = Database::new();
        let edge = db.declare_base("Edge", 2).unwrap();
        let path = db.declare_derived("Path", 2).unwrap();
        let v = |n: u32| Term::Var(Var(n));
        db.add_rule(Rule::new(
            Atom::new(path, vec![v(0), v(1)]),
            vec![Literal::Pos(Atom::new(edge, vec![v(0), v(1)]))],
        ))
        .unwrap();
        db.add_rule(Rule::new(
            Atom::new(path, vec![v(0), v(2)]),
            vec![
                Literal::Pos(Atom::new(edge, vec![v(0), v(1)])),
                Literal::Pos(Atom::new(path, vec![v(1), v(2)])),
            ],
        ))
        .unwrap();
        (db, edge, path)
    }

    fn t2(a: i64, b: i64) -> Tuple {
        Tuple::from(vec![Const::Int(a), Const::Int(b)])
    }

    #[test]
    fn transitive_closure_of_chain() {
        let (mut db, edge, path) = setup_path();
        for i in 0..5 {
            db.insert(edge, t2(i, i + 1)).unwrap();
        }
        let facts = db.derived_facts(path).unwrap();
        // chain of 6 nodes: 5+4+3+2+1 = 15 paths
        assert_eq!(facts.len(), 15);
        assert!(facts.contains(&t2(0, 5)));
        assert!(!facts.contains(&t2(5, 0)));
    }

    #[test]
    fn cycle_closure_terminates() {
        let (mut db, edge, path) = setup_path();
        db.insert(edge, t2(0, 1)).unwrap();
        db.insert(edge, t2(1, 2)).unwrap();
        db.insert(edge, t2(2, 0)).unwrap();
        let facts = db.derived_facts(path).unwrap();
        assert_eq!(facts.len(), 9); // complete on 3 nodes
        assert!(facts.contains(&t2(0, 0)));
    }

    #[test]
    fn naive_and_seminaive_agree() {
        let (mut db, edge, path) = setup_path();
        for i in 0..8 {
            db.insert(edge, t2(i, i + 1)).unwrap();
        }
        db.insert(edge, t2(3, 0)).unwrap();
        let semi = db.derived_facts(path).unwrap();
        let rounds = db.evaluate_naive_for_bench().unwrap();
        assert!(rounds > 1);
        assert_eq!(semi.len(), db.derived_facts(path).unwrap().len());
        assert_eq!(semi, db.reference_facts(path).unwrap());
    }

    #[test]
    fn parallel_evaluation_matches_serial() {
        let build = || {
            let (mut db, edge, _) = setup_path();
            for i in 0..12 {
                db.insert(edge, t2(i, i + 1)).unwrap();
            }
            db.insert(edge, t2(7, 2)).unwrap();
            db.insert(edge, t2(11, 0)).unwrap();
            db
        };
        let mut serial = build();
        let path = serial.pred_id("Path").unwrap();
        let expected = serial.derived_facts(path).unwrap();
        let mut par = build();
        par.set_eval_threads(4);
        assert_eq!(par.derived_facts(path).unwrap(), expected);
    }

    #[test]
    fn negation_across_strata() {
        let mut db = Database::new();
        let node = db.declare_base("Node", 1).unwrap();
        let edge = db.declare_base("Edge", 2).unwrap();
        let covered = db.declare_derived("Covered", 1).unwrap();
        let isolated = db.declare_derived("Isolated", 1).unwrap();
        let v = |n: u32| Term::Var(Var(n));
        db.add_rule(Rule::new(
            Atom::new(covered, vec![v(0)]),
            vec![Literal::Pos(Atom::new(edge, vec![v(0), v(1)]))],
        ))
        .unwrap();
        db.add_rule(Rule::new(
            Atom::new(isolated, vec![v(0)]),
            vec![
                Literal::Pos(Atom::new(node, vec![v(0)])),
                Literal::Neg(Atom::new(covered, vec![v(0)])),
            ],
        ))
        .unwrap();
        let one = Tuple::from(vec![Const::Int(1)]);
        let two = Tuple::from(vec![Const::Int(2)]);
        db.insert(node, one.clone()).unwrap();
        db.insert(node, two.clone()).unwrap();
        db.insert(edge, t2(1, 9)).unwrap();
        let iso = db.derived_facts(isolated).unwrap();
        assert_eq!(iso, vec![two]);
    }

    #[test]
    fn query_with_comparison() {
        let (mut db, edge, path) = setup_path();
        for i in 0..4 {
            db.insert(edge, t2(i, i + 1)).unwrap();
        }
        // ?- Path(X, Y), X >= 2.
        let v = |n: u32| Term::Var(Var(n));
        let body = vec![
            Literal::Pos(Atom::new(path, vec![v(0), v(1)])),
            Literal::Cmp(CmpOp::Ge, v(0), Term::Const(Const::Int(2))),
        ];
        let res = db.query(&body, &[Var(0), Var(1)]).unwrap();
        assert_eq!(res, vec![t2(2, 3), t2(2, 4), t2(3, 4)]);
    }

    #[test]
    fn query_rejects_unsafe_out_var() {
        let (mut db, _, path) = setup_path();
        let v = |n: u32| Term::Var(Var(n));
        let body = vec![Literal::Pos(Atom::new(path, vec![v(0), v(1)]))];
        assert!(db.query(&body, &[Var(5)]).is_err());
    }

    #[test]
    fn idb_invalidated_by_fact_change() {
        let (mut db, edge, path) = setup_path();
        db.insert(edge, t2(0, 1)).unwrap();
        assert_eq!(db.derived_facts(path).unwrap().len(), 1);
        db.insert(edge, t2(1, 2)).unwrap();
        assert_eq!(db.derived_facts(path).unwrap().len(), 3);
        db.remove(edge, &t2(1, 2)).unwrap();
        assert_eq!(db.derived_facts(path).unwrap().len(), 1);
    }

    #[test]
    fn repeated_variable_in_atom_unifies() {
        let mut db = Database::new();
        let p = db.declare_base("P", 2).unwrap();
        let diag = db.declare_derived("Diag", 1).unwrap();
        let v = |n: u32| Term::Var(Var(n));
        db.add_rule(Rule::new(
            Atom::new(diag, vec![v(0)]),
            vec![Literal::Pos(Atom::new(p, vec![v(0), v(0)]))],
        ))
        .unwrap();
        db.insert(p, t2(1, 1)).unwrap();
        db.insert(p, t2(1, 2)).unwrap();
        let facts = db.derived_facts(diag).unwrap();
        assert_eq!(facts, vec![Tuple::from(vec![Const::Int(1)])]);
    }
}
