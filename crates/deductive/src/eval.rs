//! Bottom-up evaluation: semi-naive fixpoint per stratum, plus ad-hoc
//! conjunctive queries.

use crate::ast::{Atom, Literal, Rule, Term, Var};
use crate::compile::Compiled;
use crate::db::Database;
use crate::error::{Error, Result};
use crate::pred::PredId;
use crate::relation::Relation;
use crate::symbol::FxHashSet;
use crate::tuple::Tuple;
use crate::value::Const;

/// Materialised extensions of derived predicates (indexed by `PredId`).
pub(crate) struct Idb {
    pub rels: Vec<Relation>,
}

/// A variable binding environment for one rule activation.
pub(crate) type Binding = Vec<Option<Const>>;

fn resolve(t: Term, binding: &Binding) -> Option<Const> {
    match t {
        Term::Const(c) => Some(c),
        Term::Var(v) => binding[v.index()],
    }
}

/// Order body literals for left-to-right evaluation: cheap fully-bound
/// filters (comparisons, negations) as early as possible, positive atoms by
/// descending boundness. `first`, when given, pins a literal to the front
/// (the semi-naive delta literal).
pub(crate) fn order_body(body: &[Literal], var_count: usize, first: Option<usize>) -> Vec<usize> {
    let mut order = Vec::with_capacity(body.len());
    let mut bound = vec![false; var_count];
    let mut remaining: Vec<usize> = (0..body.len()).collect();
    let bind_lit = |lit: &Literal, bound: &mut Vec<bool>| {
        for v in lit.vars() {
            bound[v.index()] = true;
        }
    };
    if let Some(f) = first {
        order.push(f);
        bind_lit(&body[f], &mut bound);
        remaining.retain(|&i| i != f);
    }
    while !remaining.is_empty() {
        // 1. any comparison or negation whose vars are all bound
        if let Some(pos) = remaining.iter().position(|&i| match &body[i] {
            Literal::Pos(_) => false,
            lit => lit.vars().iter().all(|v| bound[v.index()]),
        }) {
            let i = remaining.remove(pos);
            order.push(i);
            continue;
        }
        // 2. the positive atom binding the most already-bound variables
        let best = remaining
            .iter()
            .enumerate()
            .filter(|(_, &i)| body[i].is_positive())
            .max_by_key(|(_, &i)| body[i].vars().iter().filter(|v| bound[v.index()]).count())
            .map(|(pos, _)| pos);
        match best {
            Some(pos) => {
                let i = remaining.remove(pos);
                bind_lit(&body[i], &mut bound);
                order.push(i);
            }
            None => {
                // Only unbound negations/comparisons left; safe rules never
                // reach here, but take them in order to terminate.
                order.append(&mut remaining);
            }
        }
    }
    order
}

/// Evaluation context giving access to base and derived relations. When
/// `base_override` is set, base predicates are read from it instead of the
/// live EDB (used by incremental maintenance to join against the old
/// state).
pub(crate) struct Store<'a> {
    pub(crate) db: &'a Database,
    pub(crate) idb: &'a [Relation],
    pub(crate) base_override: Option<&'a [Relation]>,
}

impl Store<'_> {
    pub(crate) fn rel(&self, p: PredId) -> &Relation {
        if self.db.pred_decl(p).is_base() {
            match self.base_override {
                Some(base) => &base[p.index()],
                None => self.db.relation(p),
            }
        } else {
            &self.idb[p.index()]
        }
    }
}

/// Match one rule body (already ordered) against the store, calling `sink`
/// for every complete binding. `delta` substitutes the relation used for the
/// literal at body index `delta.0`. The sink returns `false` to abort the
/// search; `match_body` propagates that as its own return value.
#[allow(clippy::too_many_arguments)]
pub(crate) fn match_body(
    store: &Store<'_>,
    body: &[Literal],
    order: &[usize],
    depth: usize,
    binding: &mut Binding,
    delta: Option<(usize, &Relation)>,
    sink: &mut dyn FnMut(&Binding) -> bool,
) -> bool {
    if depth == order.len() {
        return sink(binding);
    }
    let li = order[depth];
    match &body[li] {
        Literal::Pos(atom) => {
            let rel = match delta {
                Some((di, d)) if di == li => d,
                _ => store.rel(atom.pred),
            };
            let mut bound_cols: Vec<(usize, Const)> = Vec::new();
            for (j, &t) in atom.args.iter().enumerate() {
                if let Some(c) = resolve(t, binding) {
                    bound_cols.push((j, c));
                }
            }
            'tuples: for tuple in rel.select(&bound_cols) {
                let mut newly: Vec<Var> = Vec::new();
                for (j, &t) in atom.args.iter().enumerate() {
                    match t {
                        Term::Const(c) => {
                            if tuple.get(j) != c {
                                for v in newly.drain(..) {
                                    binding[v.index()] = None;
                                }
                                continue 'tuples;
                            }
                        }
                        Term::Var(v) => match binding[v.index()] {
                            Some(c) => {
                                if tuple.get(j) != c {
                                    for v in newly.drain(..) {
                                        binding[v.index()] = None;
                                    }
                                    continue 'tuples;
                                }
                            }
                            None => {
                                binding[v.index()] = Some(tuple.get(j));
                                newly.push(v);
                            }
                        },
                    }
                }
                let keep_going = match_body(store, body, order, depth + 1, binding, delta, sink);
                for v in newly {
                    binding[v.index()] = None;
                }
                if !keep_going {
                    return false;
                }
            }
            true
        }
        Literal::Neg(atom) => {
            let ground: Vec<Const> = atom
                .args
                .iter()
                .map(|&t| resolve(t, binding).expect("safe rule: negation fully bound"))
                .collect();
            if !store.rel(atom.pred).contains(&Tuple::from(ground)) {
                match_body(store, body, order, depth + 1, binding, delta, sink)
            } else {
                true
            }
        }
        Literal::Cmp(op, l, r) => {
            let a = resolve(*l, binding).expect("safe rule: comparison fully bound");
            let b = resolve(*r, binding).expect("safe rule: comparison fully bound");
            if op.eval(a, b) {
                match_body(store, body, order, depth + 1, binding, delta, sink)
            } else {
                true
            }
        }
    }
}

/// Evaluate one stratum into `idb` (crate-internal entry point used by the
/// incremental checker).
pub(crate) fn eval_stratum_public(
    db: &Database,
    idb: &mut Vec<Relation>,
    rules: &[Rule],
    rule_ixs: &[usize],
) {
    eval_stratum(db, idb, rules, rule_ixs);
}

/// Solve a body against the current EDB + a given IDB, with some variables
/// preset, returning up to `limit` full bindings. Crate-internal helper for
/// repair generation.
pub(crate) fn solve_body(
    db: &Database,
    idb: &[Relation],
    body: &[Literal],
    var_count: usize,
    preset: &[(Var, Const)],
    limit: usize,
) -> Vec<Binding> {
    let mut binding: Binding = vec![None; var_count];
    for &(v, c) in preset {
        binding[v.index()] = Some(c);
    }
    // Ordering: treat preset vars as already bound by pretending the body has
    // a virtual first literal; easiest is to order with boundness seeded.
    let order = order_body_seeded(body, var_count, preset);
    let store = Store {
        db,
        idb,
        base_override: None,
    };
    let mut out: Vec<Binding> = Vec::new();
    match_body(&store, body, &order, 0, &mut binding, None, &mut |b| {
        out.push(b.clone());
        out.len() < limit
    });
    out
}

/// Like [`order_body`] but with an initial set of bound variables.
fn order_body_seeded(body: &[Literal], var_count: usize, preset: &[(Var, Const)]) -> Vec<usize> {
    let mut order = Vec::with_capacity(body.len());
    let mut bound = vec![false; var_count];
    for &(v, _) in preset {
        bound[v.index()] = true;
    }
    let mut remaining: Vec<usize> = (0..body.len()).collect();
    while !remaining.is_empty() {
        if let Some(pos) = remaining.iter().position(|&i| match &body[i] {
            Literal::Pos(_) => false,
            lit => lit.vars().iter().all(|v| bound[v.index()]),
        }) {
            let i = remaining.remove(pos);
            order.push(i);
            continue;
        }
        let best = remaining
            .iter()
            .enumerate()
            .filter(|(_, &i)| body[i].is_positive())
            .max_by_key(|(_, &i)| body[i].vars().iter().filter(|v| bound[v.index()]).count())
            .map(|(pos, _)| pos);
        match best {
            Some(pos) => {
                let i = remaining.remove(pos);
                for v in body[i].vars() {
                    bound[v.index()] = true;
                }
                order.push(i);
            }
            None => {
                order.append(&mut remaining);
            }
        }
    }
    order
}

pub(crate) fn instantiate(head: &Atom, binding: &Binding) -> Tuple {
    Tuple::from(
        head.args
            .iter()
            .map(|&t| resolve(t, binding).expect("safe rule: head fully bound"))
            .collect::<Vec<_>>(),
    )
}

/// Evaluate one stratum to fixpoint, semi-naively.
fn eval_stratum(db: &Database, idb: &mut Vec<Relation>, rules: &[Rule], rule_ixs: &[usize]) {
    let stratum_preds: FxHashSet<PredId> = rule_ixs.iter().map(|&i| rules[i].head.pred).collect();
    // Round 0: full evaluation of every rule.
    let mut delta: Vec<Relation> = vec![Relation::new(); idb.len()];
    for &ri in rule_ixs {
        let rule = &rules[ri];
        let order = order_body(&rule.body, rule.var_count(), None);
        let mut binding: Binding = vec![None; rule.var_count()];
        let mut new_facts: Vec<Tuple> = Vec::new();
        {
            let store = Store {
                db,
                idb,
                base_override: None,
            };
            match_body(
                &store,
                &rule.body,
                &order,
                0,
                &mut binding,
                None,
                &mut |b| {
                    new_facts.push(instantiate(&rule.head, b));
                    true
                },
            );
        }
        let h = rule.head.pred.index();
        for t in new_facts {
            if idb[h].insert(t.clone()) {
                delta[h].insert(t);
            }
        }
    }
    // Semi-naive iteration.
    loop {
        let has_delta = stratum_preds.iter().any(|p| !delta[p.index()].is_empty());
        if !has_delta {
            break;
        }
        let mut next_delta: Vec<(PredId, Tuple)> = Vec::new();
        for &ri in rule_ixs {
            let rule = &rules[ri];
            for (li, lit) in rule.body.iter().enumerate() {
                let Literal::Pos(atom) = lit else {
                    continue;
                };
                if !stratum_preds.contains(&atom.pred) || delta[atom.pred.index()].is_empty() {
                    continue;
                }
                let order = order_body(&rule.body, rule.var_count(), Some(li));
                let mut binding: Binding = vec![None; rule.var_count()];
                let store = Store {
                    db,
                    idb,
                    base_override: None,
                };
                let d = &delta[atom.pred.index()];
                match_body(
                    &store,
                    &rule.body,
                    &order,
                    0,
                    &mut binding,
                    Some((li, d)),
                    &mut |b| {
                        next_delta.push((rule.head.pred, instantiate(&rule.head, b)));
                        true
                    },
                );
            }
        }
        for p in &stratum_preds {
            delta[p.index()].clear();
        }
        for (p, t) in next_delta {
            if idb[p.index()].insert(t.clone()) {
                delta[p.index()].insert(t);
            }
        }
    }
}

/// Evaluate one stratum naively (re-deriving everything each round). Used
/// only by the `datalog_eval` benchmark as the ablation baseline.
fn eval_stratum_naive(
    db: &Database,
    idb: &mut Vec<Relation>,
    rules: &[Rule],
    rule_ixs: &[usize],
) -> usize {
    let mut rounds = 0;
    loop {
        rounds += 1;
        let mut new_facts: Vec<(PredId, Tuple)> = Vec::new();
        for &ri in rule_ixs {
            let rule = &rules[ri];
            let order = order_body(&rule.body, rule.var_count(), None);
            let mut binding: Binding = vec![None; rule.var_count()];
            let store = Store {
                db,
                idb,
                base_override: None,
            };
            match_body(
                &store,
                &rule.body,
                &order,
                0,
                &mut binding,
                None,
                &mut |b| {
                    new_facts.push((rule.head.pred, instantiate(&rule.head, b)));
                    true
                },
            );
        }
        let mut changed = false;
        for (p, t) in new_facts {
            if idb[p.index()].insert(t) {
                changed = true;
            }
        }
        if !changed {
            return rounds;
        }
    }
}

pub(crate) fn eval_program(db: &Database, compiled: &Compiled) -> Idb {
    let mut rels: Vec<Relation> = vec![Relation::new(); db.pred_count()];
    for stratum in &compiled.strat.rule_strata {
        eval_stratum(db, &mut rels, &compiled.rules, stratum);
    }
    Idb { rels }
}

impl Database {
    /// Ensure rules/constraints are compiled and the IDB is materialised.
    pub fn evaluate(&mut self) -> Result<()> {
        self.ensure_compiled()?;
        if self.idb.is_some() {
            return Ok(());
        }
        let compiled = self.compiled.take().expect("just compiled");
        let idb = eval_program(self, &compiled);
        self.compiled = Some(compiled);
        self.idb = Some(idb);
        Ok(())
    }

    /// Evaluate the whole program with the naive (non-semi-naive) strategy,
    /// returning the number of fixpoint rounds. Benchmark ablation only; the
    /// result is not cached.
    pub fn evaluate_naive_for_bench(&mut self) -> Result<usize> {
        self.ensure_compiled()?;
        let compiled = self.compiled.take().expect("just compiled");
        let mut rels: Vec<Relation> = vec![Relation::new(); self.pred_count()];
        let mut rounds = 0;
        for stratum in &compiled.strat.rule_strata {
            rounds += eval_stratum_naive(self, &mut rels, &compiled.rules, stratum);
        }
        self.compiled = Some(compiled);
        Ok(rounds)
    }

    /// Sorted facts of a derived predicate (materialising if necessary).
    pub fn derived_facts(&mut self, pred: PredId) -> Result<Vec<Tuple>> {
        self.evaluate()?;
        Ok(self.idb.as_ref().expect("evaluated").rels[pred.index()].sorted())
    }

    /// Does the (possibly derived) predicate contain this fact?
    pub fn holds(&mut self, pred: PredId, tuple: &Tuple) -> Result<bool> {
        if self.pred_decl(pred).is_base() {
            return Ok(self.contains(pred, tuple));
        }
        self.evaluate()?;
        Ok(self.idb.as_ref().expect("evaluated").rels[pred.index()].contains(tuple))
    }

    /// Evaluate an ad-hoc conjunctive query: return every binding of `out`
    /// that satisfies all `body` literals, deduplicated, sorted.
    ///
    /// The body must be range-restricted: every variable in `out`, in a
    /// negation, or in a comparison must occur in a positive literal.
    pub fn query(&mut self, body: &[Literal], out: &[Var]) -> Result<Vec<Tuple>> {
        // Safety check.
        let mut positive: FxHashSet<Var> = FxHashSet::default();
        for lit in body {
            if let Literal::Pos(a) = lit {
                positive.extend(a.vars());
            }
        }
        let check = |v: Var| -> Result<()> {
            if positive.contains(&v) {
                Ok(())
            } else {
                Err(Error::UnsafeRule {
                    rule: "<query>".into(),
                    var: format!("#{}", v.0),
                })
            }
        };
        for &v in out {
            check(v)?;
        }
        for lit in body {
            match lit {
                Literal::Pos(_) => {}
                Literal::Neg(a) => {
                    for v in a.vars() {
                        check(v)?;
                    }
                }
                Literal::Cmp(_, l, r) => {
                    for v in [l.as_var(), r.as_var()].into_iter().flatten() {
                        check(v)?;
                    }
                }
            }
        }
        self.evaluate()?;
        let var_count = body
            .iter()
            .flat_map(|l| l.vars())
            .chain(out.iter().copied())
            .map(|v| v.index() + 1)
            .max()
            .unwrap_or(0);
        let order = order_body(body, var_count, None);
        let mut binding: Binding = vec![None; var_count];
        let idb = self.idb.as_ref().expect("evaluated");
        let store = Store {
            db: self,
            idb: &idb.rels,
            base_override: None,
        };
        let mut results: FxHashSet<Tuple> = FxHashSet::default();
        match_body(&store, body, &order, 0, &mut binding, None, &mut |b| {
            results.insert(Tuple::from(
                out.iter()
                    .map(|v| b[v.index()].expect("out var bound"))
                    .collect::<Vec<_>>(),
            ));
            true
        });
        let mut v: Vec<Tuple> = results.into_iter().collect();
        v.sort();
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;

    fn setup_path() -> (Database, PredId, PredId) {
        let mut db = Database::new();
        let edge = db.declare_base("Edge", 2).unwrap();
        let path = db.declare_derived("Path", 2).unwrap();
        let v = |n: u32| Term::Var(Var(n));
        db.add_rule(Rule::new(
            Atom::new(path, vec![v(0), v(1)]),
            vec![Literal::Pos(Atom::new(edge, vec![v(0), v(1)]))],
        ))
        .unwrap();
        db.add_rule(Rule::new(
            Atom::new(path, vec![v(0), v(2)]),
            vec![
                Literal::Pos(Atom::new(edge, vec![v(0), v(1)])),
                Literal::Pos(Atom::new(path, vec![v(1), v(2)])),
            ],
        ))
        .unwrap();
        (db, edge, path)
    }

    fn t2(a: i64, b: i64) -> Tuple {
        Tuple::from(vec![Const::Int(a), Const::Int(b)])
    }

    #[test]
    fn transitive_closure_of_chain() {
        let (mut db, edge, path) = setup_path();
        for i in 0..5 {
            db.insert(edge, t2(i, i + 1)).unwrap();
        }
        let facts = db.derived_facts(path).unwrap();
        // chain of 6 nodes: 5+4+3+2+1 = 15 paths
        assert_eq!(facts.len(), 15);
        assert!(facts.contains(&t2(0, 5)));
        assert!(!facts.contains(&t2(5, 0)));
    }

    #[test]
    fn cycle_closure_terminates() {
        let (mut db, edge, path) = setup_path();
        db.insert(edge, t2(0, 1)).unwrap();
        db.insert(edge, t2(1, 2)).unwrap();
        db.insert(edge, t2(2, 0)).unwrap();
        let facts = db.derived_facts(path).unwrap();
        assert_eq!(facts.len(), 9); // complete on 3 nodes
        assert!(facts.contains(&t2(0, 0)));
    }

    #[test]
    fn naive_and_seminaive_agree() {
        let (mut db, edge, path) = setup_path();
        for i in 0..8 {
            db.insert(edge, t2(i, i + 1)).unwrap();
        }
        db.insert(edge, t2(3, 0)).unwrap();
        let semi = db.derived_facts(path).unwrap();
        let rounds = db.evaluate_naive_for_bench().unwrap();
        assert!(rounds > 1);
        assert_eq!(semi.len(), db.derived_facts(path).unwrap().len());
    }

    #[test]
    fn negation_across_strata() {
        let mut db = Database::new();
        let node = db.declare_base("Node", 1).unwrap();
        let edge = db.declare_base("Edge", 2).unwrap();
        let covered = db.declare_derived("Covered", 1).unwrap();
        let isolated = db.declare_derived("Isolated", 1).unwrap();
        let v = |n: u32| Term::Var(Var(n));
        db.add_rule(Rule::new(
            Atom::new(covered, vec![v(0)]),
            vec![Literal::Pos(Atom::new(edge, vec![v(0), v(1)]))],
        ))
        .unwrap();
        db.add_rule(Rule::new(
            Atom::new(isolated, vec![v(0)]),
            vec![
                Literal::Pos(Atom::new(node, vec![v(0)])),
                Literal::Neg(Atom::new(covered, vec![v(0)])),
            ],
        ))
        .unwrap();
        let one = Tuple::from(vec![Const::Int(1)]);
        let two = Tuple::from(vec![Const::Int(2)]);
        db.insert(node, one.clone()).unwrap();
        db.insert(node, two.clone()).unwrap();
        db.insert(edge, t2(1, 9)).unwrap();
        let iso = db.derived_facts(isolated).unwrap();
        assert_eq!(iso, vec![two]);
    }

    #[test]
    fn query_with_comparison() {
        let (mut db, edge, path) = setup_path();
        for i in 0..4 {
            db.insert(edge, t2(i, i + 1)).unwrap();
        }
        // ?- Path(X, Y), X >= 2.
        let v = |n: u32| Term::Var(Var(n));
        let body = vec![
            Literal::Pos(Atom::new(path, vec![v(0), v(1)])),
            Literal::Cmp(CmpOp::Ge, v(0), Term::Const(Const::Int(2))),
        ];
        let res = db.query(&body, &[Var(0), Var(1)]).unwrap();
        assert_eq!(res, vec![t2(2, 3), t2(2, 4), t2(3, 4)]);
    }

    #[test]
    fn query_rejects_unsafe_out_var() {
        let (mut db, _, path) = setup_path();
        let v = |n: u32| Term::Var(Var(n));
        let body = vec![Literal::Pos(Atom::new(path, vec![v(0), v(1)]))];
        assert!(db.query(&body, &[Var(5)]).is_err());
    }

    #[test]
    fn idb_invalidated_by_fact_change() {
        let (mut db, edge, path) = setup_path();
        db.insert(edge, t2(0, 1)).unwrap();
        assert_eq!(db.derived_facts(path).unwrap().len(), 1);
        db.insert(edge, t2(1, 2)).unwrap();
        assert_eq!(db.derived_facts(path).unwrap().len(), 3);
        db.remove(edge, &t2(1, 2)).unwrap();
        assert_eq!(db.derived_facts(path).unwrap().len(), 1);
    }

    #[test]
    fn repeated_variable_in_atom_unifies() {
        let mut db = Database::new();
        let p = db.declare_base("P", 2).unwrap();
        let diag = db.declare_derived("Diag", 1).unwrap();
        let v = |n: u32| Term::Var(Var(n));
        db.add_rule(Rule::new(
            Atom::new(diag, vec![v(0)]),
            vec![Literal::Pos(Atom::new(p, vec![v(0), v(0)]))],
        ))
        .unwrap();
        db.insert(p, t2(1, 1)).unwrap();
        db.insert(p, t2(1, 2)).unwrap();
        let facts = db.derived_facts(diag).unwrap();
        assert_eq!(facts, vec![Tuple::from(vec![Const::Int(1)])]);
    }
}
