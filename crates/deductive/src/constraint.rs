//! Declarative consistency constraints.
//!
//! Constraints are closed, range-restricted first-order formulas over the
//! base and derived predicates — exactly the formalism of paper §3.3. A
//! constraint *holds* when the formula is true in the (perfect) model of the
//! deductive database; a *violation* is a binding of the outermost
//! universally quantified variables witnessing falsity.

use crate::ast::{Atom, CmpOp, Term, Var};
use crate::symbol::FxHashSet;

/// A first-order formula.
///
/// Variables are numbered densely per constraint; quantifier var lists bind
/// them. The text DSL (see [`crate::parse`]) guarantees unique numbering per
/// quantifier (no shadowing survives parsing).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Formula {
    /// Constant truth.
    True,
    /// Constant falsity.
    False,
    /// A predicate atom.
    Atom(Atom),
    /// Comparison between two terms.
    Cmp(CmpOp, Term, Term),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
    /// Negation.
    Not(Box<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Universal quantification.
    Forall(Vec<Var>, Box<Formula>),
    /// Existential quantification.
    Exists(Vec<Var>, Box<Formula>),
}

impl Formula {
    /// Conjunction smart constructor (flattens, drops `True`).
    pub fn and(fs: Vec<Formula>) -> Formula {
        let mut out = Vec::new();
        for f in fs {
            match f {
                Formula::True => {}
                Formula::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::True,
            1 => out.pop().unwrap(),
            _ => Formula::And(out),
        }
    }

    /// Disjunction smart constructor (flattens, drops `False`).
    pub fn or(fs: Vec<Formula>) -> Formula {
        let mut out = Vec::new();
        for f in fs {
            match f {
                Formula::False => {}
                Formula::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::False,
            1 => out.pop().unwrap(),
            _ => Formula::Or(out),
        }
    }

    /// Free variables of the formula.
    pub fn free_vars(&self) -> FxHashSet<Var> {
        let mut acc = FxHashSet::default();
        self.collect_free(&mut Vec::new(), &mut acc);
        acc
    }

    fn collect_free(&self, bound: &mut Vec<Var>, acc: &mut FxHashSet<Var>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(a) => {
                for v in a.vars() {
                    if !bound.contains(&v) {
                        acc.insert(v);
                    }
                }
            }
            Formula::Cmp(_, l, r) => {
                for v in [l.as_var(), r.as_var()].into_iter().flatten() {
                    if !bound.contains(&v) {
                        acc.insert(v);
                    }
                }
            }
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_free(bound, acc);
                }
            }
            Formula::Not(f) => f.collect_free(bound, acc),
            Formula::Implies(p, c) => {
                p.collect_free(bound, acc);
                c.collect_free(bound, acc);
            }
            Formula::Forall(vs, f) | Formula::Exists(vs, f) => {
                let n = bound.len();
                bound.extend(vs.iter().copied());
                f.collect_free(bound, acc);
                bound.truncate(n);
            }
        }
    }

    /// Push existential quantifiers through disjunctions so that each `Or`
    /// branch carries its own existentials:
    /// `∃ȳ (A ∨ B)  ⇒  (∃ȳ A) ∨ (∃ȳ B)`.
    ///
    /// This normalisation lets the compiler translate every `Or` branch into
    /// a separate rule without leaking local variables across branches.
    pub fn push_exists(self) -> Formula {
        match self {
            Formula::Exists(vs, f) => match f.push_exists() {
                Formula::Or(branches) => Formula::or(
                    branches
                        .into_iter()
                        .map(|b| Formula::Exists(vs.clone(), Box::new(b)).push_exists())
                        .collect(),
                ),
                other => Formula::Exists(vs, Box::new(other)),
            },
            Formula::And(fs) => Formula::and(fs.into_iter().map(Formula::push_exists).collect()),
            Formula::Or(fs) => Formula::or(fs.into_iter().map(Formula::push_exists).collect()),
            Formula::Not(f) => Formula::Not(Box::new(f.push_exists())),
            Formula::Implies(p, c) => {
                Formula::Implies(Box::new(p.push_exists()), Box::new(c.push_exists()))
            }
            Formula::Forall(vs, f) => Formula::Forall(vs, Box::new(f.push_exists())),
            other => other,
        }
    }

    /// Number of distinct variables mentioned (max index + 1), for
    /// fresh-variable allocation during compilation.
    pub fn var_count(&self) -> usize {
        fn walk(f: &Formula, max: &mut Option<u32>) {
            let mut consider = |v: Var| {
                *max = Some(max.map_or(v.0, |m| m.max(v.0)));
            };
            match f {
                Formula::True | Formula::False => {}
                Formula::Atom(a) => a.vars().for_each(&mut consider),
                Formula::Cmp(_, l, r) => {
                    [l.as_var(), r.as_var()]
                        .into_iter()
                        .flatten()
                        .for_each(consider);
                }
                Formula::And(fs) | Formula::Or(fs) => fs.iter().for_each(|g| walk(g, max)),
                Formula::Not(g) => walk(g, max),
                Formula::Implies(p, c) => {
                    walk(p, max);
                    walk(c, max);
                }
                Formula::Forall(vs, g) | Formula::Exists(vs, g) => {
                    vs.iter().copied().for_each(&mut consider);
                    walk(g, max);
                }
            }
        }
        let mut max = None;
        walk(self, &mut max);
        max.map_or(0, |m| m as usize + 1)
    }
}

/// A named consistency constraint.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// Unique constraint name (used in violation reports).
    pub name: String,
    /// Optional human-readable description shown with violations.
    pub message: Option<String>,
    /// Variable names by [`Var`] index (for witness rendering).
    pub var_names: Vec<String>,
    /// The closed formula.
    pub formula: Formula,
}

impl Constraint {
    /// Build a constraint; the formula must be closed.
    pub fn new(name: impl Into<String>, var_names: Vec<String>, formula: Formula) -> Self {
        Constraint {
            name: name.into(),
            message: None,
            var_names,
            formula,
        }
    }

    /// Attach a description.
    pub fn with_message(mut self, msg: impl Into<String>) -> Self {
        self.message = Some(msg.into());
        self
    }

    /// Name of a variable for witness rendering.
    pub fn var_name(&self, v: Var) -> &str {
        self.var_names
            .get(v.index())
            .map(String::as_str)
            .unwrap_or("_")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::PredId;

    fn atom(p: u32, vars: &[u32]) -> Formula {
        Formula::Atom(Atom::new(
            PredId(p),
            vars.iter().map(|&v| Term::Var(Var(v))).collect(),
        ))
    }

    #[test]
    fn and_flattens_and_drops_true() {
        let f = Formula::and(vec![
            Formula::True,
            Formula::and(vec![atom(0, &[0]), atom(1, &[1])]),
        ]);
        match f {
            Formula::And(fs) => assert_eq!(fs.len(), 2),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn or_of_one_collapses() {
        let f = Formula::or(vec![Formula::False, atom(0, &[0])]);
        assert!(matches!(f, Formula::Atom(_)));
    }

    #[test]
    fn free_vars_respect_quantifiers() {
        // forall 0: p(0, 1)  -- 1 free
        let f = Formula::Forall(vec![Var(0)], Box::new(atom(0, &[0, 1])));
        let free = f.free_vars();
        assert!(free.contains(&Var(1)));
        assert!(!free.contains(&Var(0)));
    }

    #[test]
    fn push_exists_distributes_over_or() {
        // exists 0: (p(0) | q(0))
        let f = Formula::Exists(
            vec![Var(0)],
            Box::new(Formula::Or(vec![atom(0, &[0]), atom(1, &[0])])),
        );
        match f.push_exists() {
            Formula::Or(branches) => {
                assert_eq!(branches.len(), 2);
                assert!(branches.iter().all(|b| matches!(b, Formula::Exists(..))));
            }
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn var_count_sees_quantified_vars() {
        let f = Formula::Forall(vec![Var(4)], Box::new(atom(0, &[0])));
        assert_eq!(f.var_count(), 5);
    }
}
