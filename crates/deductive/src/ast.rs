//! Rule language: terms, atoms, literals, rules.

use crate::pred::PredId;
use crate::symbol::FxHashSet;
use crate::value::Const;
use std::fmt;

/// A rule-local variable. Variables are numbered densely within each rule or
/// constraint; the number carries no meaning across rules.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub u32);

impl Var {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A term: variable or constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A variable.
    Var(Var),
    /// A constant.
    Const(Const),
}

impl Term {
    /// The variable inside, if any.
    pub fn as_var(self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}

impl From<Const> for Term {
    fn from(c: Const) -> Self {
        Term::Const(c)
    }
}

/// An atom `p(t1, …, tn)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Atom {
    /// The predicate.
    pub pred: PredId,
    /// Argument terms; length must equal the predicate's arity.
    pub args: Vec<Term>,
}

impl Atom {
    /// Build an atom.
    pub fn new(pred: PredId, args: Vec<Term>) -> Self {
        Atom { pred, args }
    }

    /// Variables occurring in the atom.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.args.iter().filter_map(|t| t.as_var())
    }
}

/// Comparison operators usable in rule bodies and constraints.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<` (integers only)
    Lt,
    /// `<=` (integers only)
    Le,
    /// `>` (integers only)
    Gt,
    /// `>=` (integers only)
    Ge,
}

impl CmpOp {
    /// The logical negation of the operator.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Apply the operator to two constants. Ordering comparisons between a
    /// symbol and an integer, or between two symbols, compare by the raw
    /// encoding — callers should only order integers.
    pub fn eval(self, a: Const, b: Const) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A body literal.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Literal {
    /// Positive atom.
    Pos(Atom),
    /// Negated atom (`not p(..)`, stratified).
    Neg(Atom),
    /// Comparison between two terms.
    Cmp(CmpOp, Term, Term),
}

impl Literal {
    /// Variables occurring in the literal.
    pub fn vars(&self) -> Vec<Var> {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => a.vars().collect(),
            Literal::Cmp(_, l, r) => [l.as_var(), r.as_var()].into_iter().flatten().collect(),
        }
    }

    /// True for positive atoms.
    pub fn is_positive(&self) -> bool {
        matches!(self, Literal::Pos(_))
    }
}

/// A rule `head :- body`. An empty body makes the head a fact schema, which
/// the engine rejects unless the head is ground.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    /// The head atom; its predicate must be [`crate::pred::PredKind::Derived`].
    pub head: Atom,
    /// Body literals.
    pub body: Vec<Literal>,
}

impl Rule {
    /// Build a rule.
    pub fn new(head: Atom, body: Vec<Literal>) -> Self {
        Rule { head, body }
    }

    /// Number of distinct variables (assumes dense numbering; returns
    /// max index + 1).
    pub fn var_count(&self) -> usize {
        let mut max: Option<u32> = None;
        let mut consider = |v: Var| {
            max = Some(max.map_or(v.0, |m: u32| m.max(v.0)));
        };
        for v in self.head.vars() {
            consider(v);
        }
        for lit in &self.body {
            for v in lit.vars() {
                consider(v);
            }
        }
        max.map_or(0, |m| m as usize + 1)
    }

    /// Range-restriction (safety) check: every variable in the head, in a
    /// negative literal, or in a comparison must occur in some positive body
    /// literal.
    pub fn check_safety(&self) -> Result<(), Var> {
        let mut positive: FxHashSet<Var> = FxHashSet::default();
        for lit in &self.body {
            if let Literal::Pos(a) = lit {
                positive.extend(a.vars());
            }
        }
        for v in self.head.vars() {
            if !positive.contains(&v) {
                return Err(v);
            }
        }
        for lit in &self.body {
            match lit {
                Literal::Pos(_) => {}
                Literal::Neg(a) => {
                    for v in a.vars() {
                        if !positive.contains(&v) {
                            return Err(v);
                        }
                    }
                }
                Literal::Cmp(_, l, r) => {
                    for v in [l.as_var(), r.as_var()].into_iter().flatten() {
                        if !positive.contains(&v) {
                            return Err(v);
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::PredId;

    fn pid(n: u32) -> PredId {
        PredId(n)
    }

    #[test]
    fn cmp_negate_roundtrip() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.negate().negate(), op);
        }
    }

    #[test]
    fn cmp_eval_on_ints() {
        assert!(CmpOp::Lt.eval(Const::Int(1), Const::Int(2)));
        assert!(!CmpOp::Ge.eval(Const::Int(1), Const::Int(2)));
        assert!(CmpOp::Eq.eval(Const::Int(3), Const::Int(3)));
    }

    #[test]
    fn safety_accepts_bound_rule() {
        // p(X) :- q(X, Y), not r(Y).
        let r = Rule::new(
            Atom::new(pid(0), vec![Term::Var(Var(0))]),
            vec![
                Literal::Pos(Atom::new(
                    pid(1),
                    vec![Term::Var(Var(0)), Term::Var(Var(1))],
                )),
                Literal::Neg(Atom::new(pid(2), vec![Term::Var(Var(1))])),
            ],
        );
        assert!(r.check_safety().is_ok());
    }

    #[test]
    fn safety_rejects_unbound_head_var() {
        // p(X) :- q(Y).
        let r = Rule::new(
            Atom::new(pid(0), vec![Term::Var(Var(0))]),
            vec![Literal::Pos(Atom::new(pid(1), vec![Term::Var(Var(1))]))],
        );
        assert_eq!(r.check_safety(), Err(Var(0)));
    }

    #[test]
    fn safety_rejects_unbound_negation() {
        // p(X) :- q(X), not r(Z).
        let r = Rule::new(
            Atom::new(pid(0), vec![Term::Var(Var(0))]),
            vec![
                Literal::Pos(Atom::new(pid(1), vec![Term::Var(Var(0))])),
                Literal::Neg(Atom::new(pid(2), vec![Term::Var(Var(2))])),
            ],
        );
        assert!(r.check_safety().is_err());
    }

    #[test]
    fn var_count_counts_dense_max() {
        let r = Rule::new(
            Atom::new(pid(0), vec![Term::Var(Var(0))]),
            vec![Literal::Pos(Atom::new(
                pid(1),
                vec![Term::Var(Var(0)), Term::Var(Var(3))],
            ))],
        );
        assert_eq!(r.var_count(), 4);
    }
}
