//! Chunked, copy-on-write tuple storage.
//!
//! Rows live in fixed-size chunks (pages) of [`CHUNK_LEN`] tuples, each
//! behind an `Arc`. Liveness is tracked in parallel chunks of booleans,
//! also `Arc`-shared. All chunks except the open tail hold exactly
//! `CHUNK_LEN` rows, so a row id maps to its page with a shift and mask.
//!
//! The point of the layout is snapshot publication: [`ChunkStore::share`]
//! produces a second store over the same pages in O(#chunks) `Arc` bumps —
//! no tuple is copied. Mutation is copy-on-write via `Arc::make_mut`:
//!
//! * `push` touches only the open tail chunk (first write after a share
//!   re-materialises at most one partial page),
//! * `tombstone` copies only the touched *liveness* page (booleans), never
//!   the tuples, so a writer removing facts under live snapshots stays
//!   cheap,
//! * frozen full pages are never written again until compaction rebuilds
//!   the store densely packed.
//!
//! Row ids are insertion-ordered and stable until compaction, exactly like
//! the previous flat-vector layout — iteration order, `sorted()` output
//! and state digests of a shared store are bit-identical to a deep clone.
//!
//! The store sits behind the small [`TupleStorage`] trait; the in-memory
//! chunked backend is the only implementation today, but the trait is the
//! seam where a paged/mmap backend plugs in later (row access, liveness,
//! append, tombstone, share — everything `Relation` needs).

use crate::tuple::Tuple;
use crate::value::Const;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// log2 of the chunk size: 1024 rows per page.
pub(crate) const CHUNK_BITS: usize = 10;
/// Rows per chunk (all chunks but the tail are exactly this long).
pub(crate) const CHUNK_LEN: usize = 1 << CHUNK_BITS;
const CHUNK_MASK: usize = CHUNK_LEN - 1;

/// Process-wide count of tuple deep copies performed by the storage layer
/// (chunk copy-on-write, compaction of shared pages, bulk loads). Snapshot
/// publication must not move this counter — the CoW tests assert on it.
static TUPLE_COPIES: AtomicU64 = AtomicU64::new(0);

/// Current value of the storage-layer tuple-copy counter. Debug/test
/// support for proving that an operation (e.g. `snapshot_clone`) performed
/// zero tuple copies; not part of the stable API.
#[doc(hidden)]
pub fn debug_tuple_copies() -> u64 {
    TUPLE_COPIES.load(Ordering::Relaxed)
}

#[inline]
pub(crate) fn note_tuple_copies(n: usize) {
    TUPLE_COPIES.fetch_add(n as u64, Ordering::Relaxed);
}

/// One immutable page of tuples. Only the open tail chunk of a store is
/// ever mutated (appends); a shared tail is re-materialised by
/// `Arc::make_mut` through the counting [`Clone`] below.
#[derive(Debug, Default)]
pub(crate) struct Chunk {
    rows: Vec<Tuple>,
}

impl Clone for Chunk {
    fn clone(&self) -> Chunk {
        note_tuple_copies(self.rows.len());
        Chunk {
            rows: self.rows.clone(),
        }
    }
}

/// Liveness page parallel to a [`Chunk`]: one flag per row. Pages are
/// materialised lazily — `None` in the store means "every row live", so
/// relations that never remove pay nothing per push. Tombstoning a row in
/// a frozen page copies this page only — booleans, never tuples.
#[derive(Debug, Default, Clone)]
struct LiveMap {
    live: Vec<bool>,
}

/// The storage operations `Relation` needs from a backend: stable
/// insertion-ordered row ids, row access, liveness, append, tombstone, and
/// an O(#chunks) `share`. The in-memory [`ChunkStore`] is the only backend
/// today; a paged/mmap backend would implement the same surface.
pub(crate) trait TupleStorage: Default {
    /// Total rows including tombstones (the next append's id).
    fn len_rows(&self) -> usize;
    /// Tombstoned rows.
    fn dead(&self) -> usize;
    /// Borrow a row by id (valid for tombstoned rows too, until compaction).
    fn row(&self, id: u32) -> &Tuple;
    /// Is the row with this id live?
    fn is_live(&self, id: u32) -> bool;
    /// Append a row, returning its id (`len_rows` before the call).
    fn push(&mut self, t: Tuple) -> u32;
    /// Mark a row dead. The row stays addressable until compaction.
    fn tombstone(&mut self, id: u32);
    /// A second store over the same pages: O(#chunks) `Arc` bumps, zero
    /// tuple copies. Writes to either store copy-on-write the touched page.
    fn share(&self) -> Self;
    /// Drop all rows (shared pages are released, not copied).
    fn clear(&mut self);
    /// Pre-size for about `n` total rows.
    fn reserve(&mut self, n: usize);
    /// Rebuild densely packed (drop tombstones, renumber ids in live
    /// order). Buffers of uniquely-owned dead rows are parked in `pool`.
    fn compact(&mut self, pool: &mut Vec<Vec<Const>>);
    /// Empty the store, moving every uniquely-owned tuple buffer into
    /// `pool` and parking page shells for reuse (the relation-recycling
    /// path of the fixpoint evaluator).
    fn recycle_into(&mut self, pool: &mut Vec<Vec<Const>>);
}

/// The in-memory chunked backend (see module docs).
#[derive(Debug, Default)]
pub(crate) struct ChunkStore {
    chunks: Vec<Arc<Chunk>>,
    /// Liveness pages parallel to `chunks`; `None` means all rows live.
    lives: Vec<Option<Arc<LiveMap>>>,
    /// Total rows including tombstones.
    len: usize,
    /// Tombstoned rows.
    dead: usize,
    /// Emptied page shells from `recycle_into`/`compact`, reused by `push`
    /// so steady-state re-evaluation allocates no new pages.
    spare_rows: Vec<Vec<Tuple>>,
    spare_live: Vec<Vec<bool>>,
}

#[inline]
fn split(id: u32) -> (usize, usize) {
    let id = id as usize;
    (id >> CHUNK_BITS, id & CHUNK_MASK)
}

impl ChunkStore {
    /// Iterate `(id, tuple)` over live rows in insertion order.
    #[inline]
    pub(crate) fn live_rows(&self) -> LiveRows<'_> {
        LiveRows {
            chunks: &self.chunks,
            lives: if self.dead > 0 { &self.lives } else { &[] },
            next_ci: 0,
            base: 0,
            rows: &[],
            live: None,
            off: 0,
        }
    }

    fn open_tail(&mut self) {
        let mut rows = self.spare_rows.pop().unwrap_or_default();
        rows.clear();
        self.chunks.push(Arc::new(Chunk { rows }));
        self.lives.push(None);
    }

    /// Materialise the liveness page for chunk `ci` (all-true) if absent,
    /// returning a mutable handle (copy-on-write when shared).
    fn live_page(&mut self, ci: usize) -> &mut LiveMap {
        let rows = self.chunks[ci].rows.len();
        let slot = &mut self.lives[ci];
        if slot.is_none() {
            let mut live = self.spare_live.pop().unwrap_or_default();
            live.clear();
            live.resize(rows, true);
            *slot = Some(Arc::new(LiveMap { live }));
        }
        match slot {
            Some(lm) => {
                let lm = Arc::make_mut(lm);
                // A stale recycled page (or a frozen page grown since the
                // map was made) is topped up to the chunk length.
                if lm.live.len() < rows {
                    lm.live.resize(rows, true);
                }
                lm
            }
            None => unreachable!("liveness page was just materialised"),
        }
    }
}

impl TupleStorage for ChunkStore {
    #[inline]
    fn len_rows(&self) -> usize {
        self.len
    }

    #[inline]
    fn dead(&self) -> usize {
        self.dead
    }

    #[inline]
    fn row(&self, id: u32) -> &Tuple {
        let (ci, off) = split(id);
        &self.chunks[ci].rows[off]
    }

    #[inline]
    fn is_live(&self, id: u32) -> bool {
        if self.dead == 0 {
            return true;
        }
        let (ci, off) = split(id);
        match &self.lives[ci] {
            None => true,
            Some(lm) => lm.live.get(off).copied().unwrap_or(true),
        }
    }

    fn push(&mut self, t: Tuple) -> u32 {
        if self.len & CHUNK_MASK == 0 {
            self.open_tail();
        }
        let ci = self.chunks.len() - 1;
        Arc::make_mut(&mut self.chunks[ci]).rows.push(t);
        let id = self.len as u32;
        self.len += 1;
        id
    }

    fn tombstone(&mut self, id: u32) {
        let (ci, off) = split(id);
        let lm = self.live_page(ci);
        if std::mem::replace(&mut lm.live[off], false) {
            self.dead += 1;
        }
    }

    fn share(&self) -> ChunkStore {
        ChunkStore {
            chunks: self.chunks.clone(),
            lives: self.lives.clone(),
            len: self.len,
            dead: self.dead,
            spare_rows: Vec::new(),
            spare_live: Vec::new(),
        }
    }

    fn clear(&mut self) {
        // Reclaim uniquely-owned page shells; shared pages just drop.
        for chunk in self.chunks.drain(..) {
            if let Ok(mut c) = Arc::try_unwrap(chunk) {
                c.rows.clear();
                self.spare_rows.push(std::mem::take(&mut c.rows));
            }
        }
        for lm in self.lives.drain(..).flatten() {
            if let Ok(mut l) = Arc::try_unwrap(lm) {
                l.live.clear();
                self.spare_live.push(std::mem::take(&mut l.live));
            }
        }
        self.len = 0;
        self.dead = 0;
    }

    fn reserve(&mut self, n: usize) {
        if n <= self.len {
            return;
        }
        // Size the tail page for the rows that will land in it; later rows
        // open fresh pages, which allocate on demand. Only uniquely-owned
        // tails are touched — reserving is not worth a page copy.
        if let Some(tail) = self.chunks.last_mut() {
            if let Some(c) = Arc::get_mut(tail) {
                let want = (c.rows.len() + (n - self.len)).min(CHUNK_LEN);
                c.rows.reserve(want.saturating_sub(c.rows.len()));
            }
        }
        let pages = n.div_ceil(CHUNK_LEN);
        self.chunks.reserve(pages.saturating_sub(self.chunks.len()));
        self.lives.reserve(pages.saturating_sub(self.lives.len()));
    }

    fn compact(&mut self, pool: &mut Vec<Vec<Const>>) {
        let chunks = std::mem::take(&mut self.chunks);
        let lives = std::mem::take(&mut self.lives);
        self.len = 0;
        self.dead = 0;
        for (chunk, lm) in chunks.into_iter().zip(lives) {
            let alive = |off: usize| match &lm {
                None => true,
                Some(l) => l.live.get(off).copied().unwrap_or(true),
            };
            match Arc::try_unwrap(chunk) {
                // Uniquely owned: move live tuples, recycle dead buffers.
                Ok(mut c) => {
                    for (off, t) in c.rows.drain(..).enumerate() {
                        if alive(off) {
                            self.push(t);
                        } else {
                            pool.push(t.into_vec());
                        }
                    }
                    c.rows.clear();
                    self.spare_rows.push(std::mem::take(&mut c.rows));
                }
                // A snapshot still references this page: copy the live rows.
                Err(shared) => {
                    for (off, t) in shared.rows.iter().enumerate() {
                        if alive(off) {
                            note_tuple_copies(1);
                            self.push(t.clone());
                        }
                    }
                }
            }
            if let Some(lm) = lm {
                if let Ok(mut l) = Arc::try_unwrap(lm) {
                    l.live.clear();
                    self.spare_live.push(std::mem::take(&mut l.live));
                }
            }
        }
    }

    fn recycle_into(&mut self, pool: &mut Vec<Vec<Const>>) {
        for chunk in self.chunks.drain(..) {
            if let Ok(mut c) = Arc::try_unwrap(chunk) {
                pool.extend(c.rows.drain(..).map(Tuple::into_vec));
                self.spare_rows.push(std::mem::take(&mut c.rows));
            }
        }
        for lm in self.lives.drain(..).flatten() {
            if let Ok(mut l) = Arc::try_unwrap(lm) {
                l.live.clear();
                self.spare_live.push(std::mem::take(&mut l.live));
            }
        }
        self.len = 0;
        self.dead = 0;
    }
}

/// Iterator over `(id, tuple)` pairs of live rows, in insertion order.
/// Iterates one cached page slice at a time; a store with no tombstones
/// (the common case) skips liveness checks entirely.
pub(crate) struct LiveRows<'a> {
    chunks: &'a [Arc<Chunk>],
    /// Empty when the store has no tombstones — liveness is not consulted.
    lives: &'a [Option<Arc<LiveMap>>],
    /// Next chunk to load into the cached page fields below.
    next_ci: usize,
    /// Row id of the current page's first row.
    base: u32,
    rows: &'a [Tuple],
    /// Liveness slice for the current page; `None` = all rows live.
    live: Option<&'a [bool]>,
    off: usize,
}

impl<'a> Iterator for LiveRows<'a> {
    type Item = (u32, &'a Tuple);

    fn next(&mut self) -> Option<(u32, &'a Tuple)> {
        loop {
            if self.off >= self.rows.len() {
                let chunk = self.chunks.get(self.next_ci)?;
                self.rows = &chunk.rows;
                self.live = self
                    .lives
                    .get(self.next_ci)
                    .and_then(|lm| lm.as_ref())
                    .map(|lm| lm.live.as_slice());
                self.base = (self.next_ci << CHUNK_BITS) as u32;
                self.next_ci += 1;
                self.off = 0;
                continue;
            }
            let off = self.off;
            self.off += 1;
            let alive = match self.live {
                None => true,
                Some(l) => l.get(off).copied().unwrap_or(true),
            };
            if alive {
                return Some((self.base | off as u32, &self.rows[off]));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: i64) -> Tuple {
        Tuple::from(vec![Const::Int(x)])
    }

    #[test]
    fn push_and_row_across_chunk_boundary() {
        let mut s = ChunkStore::default();
        let n = CHUNK_LEN + 7;
        for i in 0..n {
            assert_eq!(s.push(t(i as i64)), i as u32);
        }
        assert_eq!(s.len_rows(), n);
        assert_eq!(s.row((CHUNK_LEN - 1) as u32), &t((CHUNK_LEN - 1) as i64));
        assert_eq!(s.row(CHUNK_LEN as u32), &t(CHUNK_LEN as i64));
        assert_eq!(s.live_rows().count(), n);
    }

    #[test]
    fn share_is_copy_free_and_isolated() {
        let mut s = ChunkStore::default();
        for i in 0..(CHUNK_LEN + 10) {
            s.push(t(i as i64));
        }
        let before = debug_tuple_copies();
        let shared = s.share();
        assert_eq!(debug_tuple_copies() - before, 0, "share must not copy");

        // Writer mutates: tombstone copies booleans only, push CoWs the
        // partial tail page (bounded by one page of tuples).
        s.tombstone(3);
        assert!(shared.is_live(3), "snapshot unaffected by tombstone");
        s.push(t(-1));
        assert_eq!(shared.len_rows(), CHUNK_LEN + 10);
        assert_eq!(s.len_rows(), CHUNK_LEN + 11);
        let ids: Vec<u32> = shared.live_rows().map(|(id, _)| id).collect();
        assert_eq!(ids.len(), CHUNK_LEN + 10);
    }

    #[test]
    fn tombstone_never_copies_tuples() {
        let mut s = ChunkStore::default();
        for i in 0..(2 * CHUNK_LEN) {
            s.push(t(i as i64));
        }
        let _snap = s.share();
        let before = debug_tuple_copies();
        s.tombstone(5); // frozen first page: CoWs the liveness map only
        assert_eq!(debug_tuple_copies() - before, 0);
        assert!(!s.is_live(5));
        assert_eq!(s.dead(), 1);
    }

    #[test]
    fn compact_renumbers_and_preserves_order() {
        let mut s = ChunkStore::default();
        for i in 0..10 {
            s.push(t(i));
        }
        s.tombstone(0);
        s.tombstone(4);
        let mut pool = Vec::new();
        s.compact(&mut pool);
        assert_eq!(s.len_rows(), 8);
        assert_eq!(s.dead(), 0);
        assert_eq!(pool.len(), 2, "dead buffers recycled");
        let got: Vec<i64> = s
            .live_rows()
            .map(|(_, t)| match t.get(0) {
                Const::Int(n) => n,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got, vec![1, 2, 3, 5, 6, 7, 8, 9]);
    }
}
