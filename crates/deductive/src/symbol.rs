//! String interning.
//!
//! Every identifier that enters the deductive database — predicate names,
//! schema names, type names, attribute names, opaque id constants — is
//! interned once and afterwards handled as a 4-byte [`Symbol`]. Fact tuples
//! therefore compare and hash as machine words.
//!
//! Like the relation chunk store, the string table lives in `Arc`-shared
//! append-only chunks so snapshot publication shares it with O(#chunks)
//! refcount bumps ([`Interner::share`]). The string → symbol lookup map is
//! keyed by string *hash* (candidates verified against the chunk store),
//! so it stores no second copy of any string, and shares rebuild it lazily
//! — [`Interner::resolve`], the only operation digests need, always works
//! straight off the shared chunks.
//!
//! The hasher is an FxHash-style multiplicative hash (the algorithm used by
//! rustc). It is implemented locally because the crate set for this project
//! is deliberately minimal; the algorithm is ~20 lines.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasher, BuildHasherDefault, Hasher};
use std::sync::Arc;

/// An interned string. `Symbol`s are only meaningful relative to the
/// [`Interner`] that produced them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub(crate) u32);

impl Symbol {
    /// The raw index of this symbol in its interner.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct a symbol from a raw index previously obtained via
    /// [`Symbol::index`]. The caller must guarantee the index came from the
    /// same interner.
    #[inline]
    pub fn from_index(ix: usize) -> Symbol {
        Symbol(ix as u32)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// FxHash: multiplicative word hash, very fast for short keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Strings per interner chunk (must be a power of two).
const STR_CHUNK_BITS: usize = 10;
const STR_CHUNK_LEN: usize = 1 << STR_CHUNK_BITS;
const STR_CHUNK_MASK: usize = STR_CHUNK_LEN - 1;

/// Symbols whose string hashes to one value (collisions are verified
/// against the chunk store; duplicates cannot occur).
#[derive(Clone)]
enum SymIds {
    One(Symbol),
    Many(Vec<Symbol>),
}

impl SymIds {
    fn as_slice(&self) -> &[Symbol] {
        match self {
            SymIds::One(s) => std::slice::from_ref(s),
            SymIds::Many(v) => v,
        }
    }

    fn push(&mut self, sym: Symbol) {
        match self {
            SymIds::One(s) => *self = SymIds::Many(vec![*s, sym]),
            SymIds::Many(v) => v.push(sym),
        }
    }
}

#[inline]
fn str_hash(s: &str) -> u64 {
    FxBuildHasher::default().hash_one(s.as_bytes())
}

/// A string interner: bijective map between strings and [`Symbol`]s.
///
/// Strings live in `Arc`-shared append-only chunks; [`Interner::share`]
/// publishes a snapshot view with refcount bumps only. The lookup map keys
/// by string hash (no owned string keys) and is rebuilt lazily in shares.
#[derive(Default, Clone)]
pub struct Interner {
    /// Interned strings in insertion order; all chunks except the tail
    /// hold exactly [`STR_CHUNK_LEN`] strings.
    chunks: Vec<Arc<Vec<Box<str>>>>,
    /// Total interned strings (the tail chunk may be partial).
    len: usize,
    /// String hash → candidate symbols. Never authoritative on its own:
    /// every hit is verified against the chunk store.
    map: FxHashMap<u64, SymIds>,
    /// Set when `map` lags the chunks ([`Interner::share`] publishes with
    /// an empty map). [`Interner::intern`] resyncs; read-only
    /// [`Interner::get`] falls back to a scan.
    map_stale: bool,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn string_at(&self, ix: usize) -> &str {
        &self.chunks[ix >> STR_CHUNK_BITS][ix & STR_CHUNK_MASK]
    }

    /// Rebuild the hash-keyed lookup map when it lags the chunks (after a
    /// [`Interner::share`]). No-op when synced.
    pub(crate) fn ensure_lookup(&mut self) {
        if !self.map_stale {
            return;
        }
        self.map.clear();
        self.map.reserve(self.len);
        for ix in 0..self.len {
            let h = str_hash(self.string_at(ix));
            let sym = Symbol(ix as u32);
            match self.map.entry(h) {
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(sym),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(SymIds::One(sym));
                }
            }
        }
        self.map_stale = false;
    }

    /// Intern `s`, returning its symbol. Idempotent.
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.ensure_lookup();
        let h = str_hash(s);
        if let Some(ids) = self.map.get(&h) {
            for &sym in ids.as_slice() {
                if self.string_at(sym.index()) == s {
                    return sym;
                }
            }
        }
        let sym = Symbol(self.len as u32);
        if self.len & STR_CHUNK_MASK == 0 {
            self.chunks
                .push(Arc::new(Vec::with_capacity(STR_CHUNK_LEN)));
        }
        // CoW: only a partial tail chunk can still be shared with a
        // snapshot, so at most `STR_CHUNK_LEN - 1` strings are ever copied
        // here, once, regardless of interner size.
        let tail = self.chunks.last_mut().expect("tail chunk exists");
        Arc::make_mut(tail).push(s.into());
        self.len += 1;
        match self.map.entry(h) {
            std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(sym),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(SymIds::One(sym));
            }
        }
        sym
    }

    /// Look up an already-interned string without inserting. In an
    /// unsynced share this scans the chunk store; mutable holders stay on
    /// the hash path.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        if self.map_stale {
            return (0..self.len)
                .find(|&ix| self.string_at(ix) == s)
                .map(|ix| Symbol(ix as u32));
        }
        let ids = self.map.get(&str_hash(s))?;
        ids.as_slice()
            .iter()
            .copied()
            .find(|&sym| self.string_at(sym.index()) == s)
    }

    /// Resolve a symbol back to its string. Always served straight from
    /// the (possibly shared) chunks — never needs the lookup map.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        assert!(sym.index() < self.len, "symbol from another interner");
        self.string_at(sym.index())
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Intern a fresh symbol guaranteed not to collide with any existing
    /// string, using `prefix` for readability (e.g. `new_slot_1`).
    pub fn fresh(&mut self, prefix: &str) -> Symbol {
        self.ensure_lookup();
        let mut n = self.len;
        loop {
            let candidate = format!("{prefix}_{n}");
            if self.get(&candidate).is_none() {
                return self.intern(&candidate);
            }
            n += 1;
        }
    }

    /// Share the string table into a snapshot view: O(#chunks) `Arc`
    /// bumps, no string copies, empty lookup map (rebuilt lazily if the
    /// share is ever mutated; `resolve`/`get` work without it).
    pub(crate) fn share(&self) -> Interner {
        Interner {
            chunks: self.chunks.clone(),
            len: self.len,
            map: FxHashMap::default(),
            map_stale: self.len > 0,
        }
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interner").field("len", &self.len).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("Person");
        let b = i.intern("Person");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("Person");
        let b = i.intern("Car");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "Person");
        assert_eq!(i.resolve(b), "Car");
    }

    #[test]
    fn get_does_not_insert() {
        let mut i = Interner::new();
        assert!(i.get("x").is_none());
        i.intern("x");
        assert!(i.get("x").is_some());
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn fresh_never_collides() {
        let mut i = Interner::new();
        i.intern("new_slot_0");
        let f = i.fresh("new_slot");
        assert_ne!(i.resolve(f), "new_slot_0");
    }

    #[test]
    fn empty_and_len() {
        let mut i = Interner::new();
        assert!(i.is_empty());
        i.intern("a");
        assert!(!i.is_empty());
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn share_resolves_and_scans_without_map() {
        let mut i = Interner::new();
        let syms: Vec<Symbol> = (0..2500).map(|n| i.intern(&format!("sym{n}"))).collect();
        let s = i.share();
        assert_eq!(s.len(), 2500);
        for (n, &sym) in syms.iter().enumerate() {
            assert_eq!(s.resolve(sym), format!("sym{n}"));
        }
        assert_eq!(s.get("sym1234"), Some(syms[1234]));
        assert!(s.get("absent").is_none());
        // Writer growth after the share is invisible to it.
        i.intern("later");
        assert_eq!(s.len(), 2500);
        assert!(s.get("later").is_none());
    }

    #[test]
    fn share_can_be_mutated_independently() {
        let mut i = Interner::new();
        let a = i.intern("alpha");
        let mut s = i.share();
        assert_eq!(s.intern("alpha"), a, "resync keeps old symbols stable");
        let b = s.intern("beta");
        assert_eq!(s.resolve(b), "beta");
        assert!(i.get("beta").is_none());
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn clone_across_chunk_boundary_stays_consistent() {
        let mut i = Interner::new();
        for n in 0..1500 {
            i.intern(&format!("s{n}"));
        }
        let mut c = i.clone();
        let x = c.intern("only_in_clone");
        assert_eq!(c.resolve(x), "only_in_clone");
        assert!(i.get("only_in_clone").is_none());
        assert_eq!(i.get("s700"), c.get("s700"));
    }

    #[test]
    fn fx_hasher_differs_on_inputs() {
        use std::hash::BuildHasher;
        let bh = FxBuildHasher::default();
        let h = |s: &str| bh.hash_one(s);
        assert_ne!(h("a"), h("b"));
        assert_eq!(h("abc"), h("abc"));
    }
}
