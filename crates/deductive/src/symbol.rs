//! String interning.
//!
//! Every identifier that enters the deductive database — predicate names,
//! schema names, type names, attribute names, opaque id constants — is
//! interned once and afterwards handled as a 4-byte [`Symbol`]. Fact tuples
//! therefore compare and hash as machine words.
//!
//! The hasher is an FxHash-style multiplicative hash (the algorithm used by
//! rustc). It is implemented locally because the crate set for this project
//! is deliberately minimal; the algorithm is ~20 lines.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// An interned string. `Symbol`s are only meaningful relative to the
/// [`Interner`] that produced them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub(crate) u32);

impl Symbol {
    /// The raw index of this symbol in its interner.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct a symbol from a raw index previously obtained via
    /// [`Symbol::index`]. The caller must guarantee the index came from the
    /// same interner.
    #[inline]
    pub fn from_index(ix: usize) -> Symbol {
        Symbol(ix as u32)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// FxHash: multiplicative word hash, very fast for short keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// A string interner: bijective map between strings and [`Symbol`]s.
#[derive(Default, Clone)]
pub struct Interner {
    map: FxHashMap<Box<str>, Symbol>,
    strings: Vec<Box<str>>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its symbol. Idempotent.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(self.strings.len() as u32);
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Look up an already-interned string without inserting.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Resolve a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Intern a fresh symbol guaranteed not to collide with any existing
    /// string, using `prefix` for readability (e.g. `new_slot_1`).
    pub fn fresh(&mut self, prefix: &str) -> Symbol {
        let mut n = self.strings.len();
        loop {
            let candidate = format!("{prefix}_{n}");
            if self.get(&candidate).is_none() {
                return self.intern(&candidate);
            }
            n += 1;
        }
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interner")
            .field("len", &self.strings.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("Person");
        let b = i.intern("Person");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("Person");
        let b = i.intern("Car");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "Person");
        assert_eq!(i.resolve(b), "Car");
    }

    #[test]
    fn get_does_not_insert() {
        let mut i = Interner::new();
        assert!(i.get("x").is_none());
        i.intern("x");
        assert!(i.get("x").is_some());
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn fresh_never_collides() {
        let mut i = Interner::new();
        i.intern("new_slot_0");
        let f = i.fresh("new_slot");
        assert_ne!(i.resolve(f), "new_slot_0");
    }

    #[test]
    fn empty_and_len() {
        let mut i = Interner::new();
        assert!(i.is_empty());
        i.intern("a");
        assert!(!i.is_empty());
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn fx_hasher_differs_on_inputs() {
        use std::hash::BuildHasher;
        let bh = FxBuildHasher::default();
        let h = |s: &str| bh.hash_one(s);
        assert_ne!(h("a"), h("b"));
        assert_eq!(h("abc"), h("abc"));
    }
}
