//! Text DSL for declaring predicates, rules, and constraints.
//!
//! This is what makes consistency *declaratively specifiable* (the paper's
//! central requirement): the entire consistency definition of a schema
//! manager is a text document fed to [`parse_program`].
//!
//! ```text
//! // predicate declarations ( `!` marks key columns )
//! base Type(tid!, name, sid).
//! derived SubTypRelT(sub, super).
//!
//! // rules (Prolog-ish; Upper-case initial = variable)
//! SubTypRelT(X, Y) :- SubTypRel(X, Y).
//! SubTypRelT(X, Z) :- SubTypRel(X, Y), SubTypRelT(Y, Z).
//!
//! // constraints (closed range-restricted FOL)
//! constraint subtype_acyclic "subtype graph must be acyclic":
//!   forall X: !SubTypRelT(X, X).
//! constraint decl_has_code:
//!   forall D, Tc, O, Tt: Decl(D, Tc, O, Tt) -> exists C1, C2: Code(C1, C2, D).
//! ```
//!
//! Constants are lower-case identifiers, single-quoted strings (`'ANY'`), or
//! integers. In constraints every variable must be explicitly quantified.

use crate::ast::{Atom, CmpOp, Literal, Rule, Term, Var};
use crate::constraint::{Constraint, Formula};
use crate::db::Database;
use crate::error::{Error, Result};
use crate::symbol::FxHashMap;
use crate::tuple::Tuple;
use crate::value::Const;

#[derive(Clone, PartialEq, Debug)]
enum Tok {
    Ident(String),
    Int(i64),
    SQuoted(String),
    DQuoted(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Colon,
    Turnstile, // :-
    Arrow,     // ->
    Pipe,
    Amp,
    Bang,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

#[derive(Clone, Debug)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::Parse {
            line: self.line,
            col: self.col,
            msg: msg.into(),
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'%') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn tokenize(mut self) -> Result<Vec<Spanned>> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let (line, col) = (self.line, self.col);
            let Some(b) = self.peek() else {
                break;
            };
            let tok = match b {
                b'(' => {
                    self.bump();
                    Tok::LParen
                }
                b')' => {
                    self.bump();
                    Tok::RParen
                }
                b',' => {
                    self.bump();
                    Tok::Comma
                }
                b'.' => {
                    self.bump();
                    Tok::Dot
                }
                b':' => {
                    self.bump();
                    if self.peek() == Some(b'-') {
                        self.bump();
                        Tok::Turnstile
                    } else {
                        Tok::Colon
                    }
                }
                b'-' => {
                    self.bump();
                    if self.peek() == Some(b'>') {
                        self.bump();
                        Tok::Arrow
                    } else if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                        let mut n: i64 = 0;
                        while let Some(c) = self.peek() {
                            if !c.is_ascii_digit() {
                                break;
                            }
                            n = n * 10 + i64::from(c - b'0');
                            self.bump();
                        }
                        Tok::Int(-n)
                    } else {
                        return Err(self.err("expected `->` or a number after `-`"));
                    }
                }
                b'|' => {
                    self.bump();
                    Tok::Pipe
                }
                b'&' => {
                    self.bump();
                    Tok::Amp
                }
                b'!' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Ne
                    } else {
                        Tok::Bang
                    }
                }
                b'=' => {
                    self.bump();
                    Tok::Eq
                }
                b'<' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Le
                    } else {
                        Tok::Lt
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Ge
                    } else {
                        Tok::Gt
                    }
                }
                b'\'' | b'"' => {
                    let quote = b;
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            Some(c) if c == quote => break,
                            Some(c) => s.push(c as char),
                            None => return Err(self.err("unterminated string")),
                        }
                    }
                    if quote == b'\'' {
                        Tok::SQuoted(s)
                    } else {
                        Tok::DQuoted(s)
                    }
                }
                c if c.is_ascii_digit() => {
                    let mut n: i64 = 0;
                    while let Some(c) = self.peek() {
                        if !c.is_ascii_digit() {
                            break;
                        }
                        n = n * 10 + i64::from(c - b'0');
                        self.bump();
                    }
                    Tok::Int(n)
                }
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    let mut s = String::new();
                    while let Some(c) = self.peek() {
                        if c.is_ascii_alphanumeric() || c == b'_' {
                            s.push(c as char);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    Tok::Ident(s)
                }
                other => return Err(self.err(format!("unexpected character `{}`", other as char))),
            };
            out.push(Spanned { tok, line, col });
        }
        Ok(out)
    }
}

struct Parser<'a> {
    toks: Vec<Spanned>,
    pos: usize,
    db: &'a mut Database,
}

impl<'a> Parser<'a> {
    fn err_at(&self, msg: impl Into<String>) -> Error {
        let (line, col) = self
            .toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or((0, 0), |s| (s.line, s.col));
        Error::Parse {
            line,
            col,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<()> {
        match self.peek() {
            Some(x) if x == t => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.err_at(format!("expected {what}, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err_at(format!("expected {what}, found {other:?}"))),
        }
    }

    fn is_var_name(s: &str) -> bool {
        s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
    }

    fn program(&mut self) -> Result<()> {
        while self.peek().is_some() {
            self.statement()?;
        }
        Ok(())
    }

    /// Position of the current token (falling back to the last token).
    fn here(&self) -> (usize, usize) {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or((1, 1), |s| (s.line, s.col))
    }

    fn statement(&mut self) -> Result<()> {
        let pos = self.here();
        let r = match self.peek() {
            Some(Tok::Ident(kw)) if kw == "base" || kw == "derived" => self.declaration(),
            Some(Tok::Ident(kw)) if kw == "constraint" => self.constraint(pos),
            _ => self.rule(pos),
        };
        // Database-level errors (arity, safety, redeclaration, …) carry no
        // position of their own; anchor them at the statement start.
        r.map_err(|e| e.at(pos.0, pos.1))
    }

    fn declaration(&mut self) -> Result<()> {
        let kw = self.expect_ident("declaration keyword")?;
        let name = self.expect_ident("predicate name")?;
        self.expect(&Tok::LParen, "`(`")?;
        let mut cols: Vec<String> = Vec::new();
        let mut key: Vec<usize> = Vec::new();
        loop {
            let col = self.expect_ident("column name")?;
            if self.peek() == Some(&Tok::Bang) {
                self.bump();
                key.push(cols.len());
            }
            cols.push(col);
            match self.bump() {
                Some(Tok::Comma) => continue,
                Some(Tok::RParen) => break,
                other => return Err(self.err_at(format!("expected `,` or `)`, found {other:?}"))),
            }
        }
        self.expect(&Tok::Dot, "`.`")?;
        let pid = if kw == "base" {
            if key.is_empty() {
                self.db.declare_base(&name, cols.len())?
            } else {
                self.db.declare_base_keyed(&name, cols.len(), &key)?
            }
        } else {
            self.db.declare_derived(&name, cols.len())?
        };
        let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        self.db.set_cols(pid, &refs);
        Ok(())
    }

    // ----- rules ------------------------------------------------------------

    fn rule(&mut self, pos: (usize, usize)) -> Result<()> {
        let mut vars: FxHashMap<String, Var> = FxHashMap::default();
        let head = self.atom(&mut |name, p| rule_term(name, p, &mut vars))?;
        // A ground head on a base predicate followed by `.` is a FACT.
        if self.peek() == Some(&Tok::Dot)
            && self.db.pred_decl(head.pred).is_base()
            && head.args.iter().all(|t| matches!(t, Term::Const(_)))
        {
            self.bump();
            let tuple: Vec<Const> = head
                .args
                .iter()
                .map(|t| match t {
                    Term::Const(c) => *c,
                    Term::Var(_) => unreachable!("checked ground"),
                })
                .collect();
            self.db.insert(head.pred, tuple)?;
            return Ok(());
        }
        let mut body = Vec::new();
        match self.bump() {
            Some(Tok::Dot) => {}
            Some(Tok::Turnstile) => loop {
                let lit = self.literal(&mut |name, p| rule_term(name, p, &mut vars))?;
                body.push(lit);
                match self.bump() {
                    Some(Tok::Comma) => continue,
                    Some(Tok::Dot) => break,
                    other => {
                        return Err(self.err_at(format!("expected `,` or `.`, found {other:?}")))
                    }
                }
            },
            other => return Err(self.err_at(format!("expected `:-` or `.`, found {other:?}"))),
        }
        self.db.add_rule(Rule::new(head, body))?;
        let mut names = vec![String::new(); vars.len()];
        for (name, v) in vars {
            names[v.index()] = name;
        }
        self.db.set_last_rule_info(pos, names);
        Ok(())
    }

    fn atom(
        &mut self,
        term_fn: &mut dyn FnMut(String, &mut Parser<'_>) -> Result<Term>,
    ) -> Result<Atom> {
        let name = self.expect_ident("predicate name")?;
        let pred = self.db.pred_id_req(&name).map_err(|_| {
            self.err_at(format!(
                "unknown predicate `{name}` (declare with `base`/`derived`)"
            ))
        })?;
        self.expect(&Tok::LParen, "`(`")?;
        let mut args = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                args.push(self.term(term_fn)?);
                match self.bump() {
                    Some(Tok::Comma) => continue,
                    Some(Tok::RParen) => break,
                    other => {
                        return Err(self.err_at(format!("expected `,` or `)`, found {other:?}")))
                    }
                }
            }
        } else {
            self.bump();
        }
        let decl = self.db.pred_decl(pred);
        if decl.arity != args.len() {
            let (line, col) = self.here();
            return Err(Error::ArityMismatch {
                pred: name,
                declared: decl.arity,
                used: args.len(),
            }
            .at(line, col));
        }
        Ok(Atom::new(pred, args))
    }

    fn term(
        &mut self,
        term_fn: &mut dyn FnMut(String, &mut Parser<'_>) -> Result<Term>,
    ) -> Result<Term> {
        match self.bump() {
            Some(Tok::Ident(s)) => term_fn(s, self),
            Some(Tok::Int(n)) => Ok(Term::Const(Const::Int(n))),
            Some(Tok::SQuoted(s)) | Some(Tok::DQuoted(s)) => {
                Ok(Term::Const(Const::Sym(self.db.intern(&s))))
            }
            other => Err(self.err_at(format!("expected term, found {other:?}"))),
        }
    }

    fn cmp_op(&mut self) -> Option<CmpOp> {
        let op = match self.peek()? {
            Tok::Eq => CmpOp::Eq,
            Tok::Ne => CmpOp::Ne,
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            _ => return None,
        };
        self.pos += 1;
        Some(op)
    }

    fn literal(
        &mut self,
        term_fn: &mut dyn FnMut(String, &mut Parser<'_>) -> Result<Term>,
    ) -> Result<Literal> {
        // `not Atom`
        if let Some(Tok::Ident(kw)) = self.peek() {
            if kw == "not" {
                self.bump();
                let a = self.atom(term_fn)?;
                return Ok(Literal::Neg(a));
            }
        }
        // Atom or comparison: atom iff ident followed by `(` and known pred…
        // simplest: if ident followed by LParen → atom, else term cmp term.
        let is_atom = matches!(
            (self.peek(), self.toks.get(self.pos + 1).map(|s| &s.tok)),
            (Some(Tok::Ident(_)), Some(Tok::LParen))
        );
        if is_atom {
            Ok(Literal::Pos(self.atom(term_fn)?))
        } else {
            let l = self.term(term_fn)?;
            let op = self
                .cmp_op()
                .ok_or_else(|| self.err_at("expected comparison operator"))?;
            let r = self.term(term_fn)?;
            Ok(Literal::Cmp(op, l, r))
        }
    }

    // ----- constraints --------------------------------------------------------

    fn constraint(&mut self, pos: (usize, usize)) -> Result<()> {
        self.bump(); // `constraint`
        let name = self.expect_ident("constraint name")?;
        let message = match self.peek() {
            Some(Tok::DQuoted(_)) => match self.bump() {
                Some(Tok::DQuoted(s)) => Some(s),
                _ => unreachable!(),
            },
            _ => None,
        };
        self.expect(&Tok::Colon, "`:`")?;
        let mut cx = ConstraintCx {
            scope: Vec::new(),
            names: Vec::new(),
        };
        let formula = self.formula(&mut cx)?;
        self.expect(&Tok::Dot, "`.`")?;
        let free = formula.free_vars();
        if !free.is_empty() {
            return Err(self.err_at(format!(
                "constraint `{name}` is not closed ({} free variable(s))",
                free.len()
            )));
        }
        let mut c = Constraint::new(name, cx.names, formula);
        if let Some(m) = message {
            c = c.with_message(m);
        }
        self.db.add_constraint(c);
        self.db.set_last_constraint_info(pos);
        Ok(())
    }

    fn formula(&mut self, cx: &mut ConstraintCx) -> Result<Formula> {
        // quantifier?
        if let Some(Tok::Ident(kw)) = self.peek() {
            if kw == "forall" || kw == "exists" {
                let is_forall = kw == "forall";
                self.bump();
                let mut vs = Vec::new();
                loop {
                    let vname = self.expect_ident("variable name")?;
                    if !Self::is_var_name(&vname) {
                        return Err(self
                            .err_at("quantified variables must start with an upper-case letter"));
                    }
                    vs.push(cx.push(vname));
                    if self.peek() == Some(&Tok::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.expect(&Tok::Colon, "`:` after quantifier variables")?;
                let body = self.formula(cx)?;
                cx.pop(vs.len());
                return Ok(if is_forall {
                    Formula::Forall(vs, Box::new(body))
                } else {
                    Formula::Exists(vs, Box::new(body))
                });
            }
        }
        let lhs = self.disjunction(cx)?;
        if self.peek() == Some(&Tok::Arrow) {
            self.bump();
            let rhs = self.formula(cx)?; // right associative; allows quantifier
            return Ok(Formula::Implies(Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn disjunction(&mut self, cx: &mut ConstraintCx) -> Result<Formula> {
        let mut parts = vec![self.conjunction(cx)?];
        while self.peek() == Some(&Tok::Pipe) {
            self.bump();
            parts.push(self.conjunction(cx)?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Formula::Or(parts)
        })
    }

    fn conjunction(&mut self, cx: &mut ConstraintCx) -> Result<Formula> {
        let mut parts = vec![self.unary(cx)?];
        while self.peek() == Some(&Tok::Amp) {
            self.bump();
            parts.push(self.unary(cx)?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Formula::And(parts)
        })
    }

    fn unary(&mut self, cx: &mut ConstraintCx) -> Result<Formula> {
        match self.peek() {
            Some(Tok::Bang) => {
                self.bump();
                Ok(Formula::Not(Box::new(self.unary(cx)?)))
            }
            Some(Tok::LParen) => {
                self.bump();
                let f = self.formula(cx)?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(f)
            }
            Some(Tok::Ident(kw)) if kw == "true" => {
                self.bump();
                Ok(Formula::True)
            }
            Some(Tok::Ident(kw)) if kw == "false" => {
                self.bump();
                Ok(Formula::False)
            }
            Some(Tok::Ident(kw)) if kw == "not" => {
                self.bump();
                Ok(Formula::Not(Box::new(self.unary(cx)?)))
            }
            Some(Tok::Ident(kw)) if kw == "forall" || kw == "exists" => self.formula(cx),
            _ => self.atom_or_cmp(cx),
        }
    }

    fn atom_or_cmp(&mut self, cx: &mut ConstraintCx) -> Result<Formula> {
        let is_atom = matches!(
            (self.peek(), self.toks.get(self.pos + 1).map(|s| &s.tok)),
            (Some(Tok::Ident(_)), Some(Tok::LParen))
        );
        if is_atom {
            let mut lookup = |name: String, p: &mut Parser<'_>| formula_term(name, p, cx);
            let a = self.atom_cx(&mut lookup)?;
            return Ok(Formula::Atom(a));
        }
        let l = {
            let mut lookup = |name: String, p: &mut Parser<'_>| formula_term(name, p, cx);
            self.term(&mut lookup)?
        };
        let op = self
            .cmp_op()
            .ok_or_else(|| self.err_at("expected comparison operator"))?;
        let r = {
            let mut lookup = |name: String, p: &mut Parser<'_>| formula_term(name, p, cx);
            self.term(&mut lookup)?
        };
        Ok(Formula::Cmp(op, l, r))
    }

    fn atom_cx(
        &mut self,
        term_fn: &mut dyn FnMut(String, &mut Parser<'_>) -> Result<Term>,
    ) -> Result<Atom> {
        self.atom(term_fn)
    }
}

/// Variable scoping for constraint formulas.
struct ConstraintCx {
    scope: Vec<(String, Var)>,
    names: Vec<String>,
}

impl ConstraintCx {
    fn push(&mut self, name: String) -> Var {
        let v = Var(self.names.len() as u32);
        self.names.push(name.clone());
        self.scope.push((name, v));
        v
    }

    fn pop(&mut self, n: usize) {
        for _ in 0..n {
            self.scope.pop();
        }
    }

    fn lookup(&self, name: &str) -> Option<Var> {
        self.scope
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

fn rule_term(name: String, p: &mut Parser<'_>, vars: &mut FxHashMap<String, Var>) -> Result<Term> {
    if Parser::is_var_name(&name) {
        let next = Var(vars.len() as u32);
        Ok(Term::Var(*vars.entry(name).or_insert(next)))
    } else {
        Ok(Term::Const(Const::Sym(p.db.intern(&name))))
    }
}

fn formula_term(name: String, p: &mut Parser<'_>, cx: &ConstraintCx) -> Result<Term> {
    if Parser::is_var_name(&name) {
        match cx.lookup(&name) {
            Some(v) => Ok(Term::Var(v)),
            None => Err(p.err_at(format!(
                "variable `{name}` is not quantified (constraints must quantify all variables)"
            ))),
        }
    } else {
        Ok(Term::Const(Const::Sym(p.db.intern(&name))))
    }
}

/// Parse a program (declarations, rules, constraints) into `db`.
pub fn parse_program(db: &mut Database, text: &str) -> Result<()> {
    db.bump_load_seq();
    let toks = Lexer::new(text).tokenize()?;
    let mut p = Parser { toks, pos: 0, db };
    p.program()
}

/// Outcome of a lenient parse: how many statements were applied and which
/// statements failed (each error positioned via [`Error::position`]).
#[derive(Debug, Default)]
pub struct LenientReport {
    /// Errors per failed statement, in source order.
    pub errors: Vec<Error>,
    /// Statements successfully applied to the database.
    pub applied: usize,
}

/// Parse a program with statement-level error recovery: every valid
/// statement is applied to `db`; each failing statement is skipped (up to
/// its terminating `.`) and its error collected. Static analyzers use this
/// to report *all* problems in a document instead of stopping at the first.
pub fn parse_program_lenient(db: &mut Database, text: &str) -> LenientReport {
    db.bump_load_seq();
    let toks = match Lexer::new(text).tokenize() {
        Ok(t) => t,
        Err(e) => {
            return LenientReport {
                errors: vec![e],
                applied: 0,
            }
        }
    };
    let mut p = Parser { toks, pos: 0, db };
    let mut report = LenientReport::default();
    while p.peek().is_some() {
        let before = p.pos;
        match p.statement() {
            Ok(()) => report.applied += 1,
            Err(e) => {
                report.errors.push(e);
                if p.pos == before {
                    p.pos += 1; // guarantee progress
                }
                // Skip to the end of the failed statement — unless it was
                // already fully consumed (errors raised after its `.`, e.g.
                // the safety check on a completed rule).
                let after_dot = p
                    .toks
                    .get(p.pos.wrapping_sub(1))
                    .is_some_and(|s| s.tok == Tok::Dot);
                if !after_dot {
                    while let Some(t) = p.bump() {
                        if t == Tok::Dot {
                            break;
                        }
                    }
                }
            }
        }
    }
    report
}

/// A parsed query: body literals plus named variables in first-occurrence
/// order.
pub type ParsedQuery = (Vec<Literal>, Vec<(String, Var)>);

/// Parse a query body, e.g. `Path(X, Y), X != Y` (optional leading `?-`
/// and trailing `.`). Returns the literals and the named variables in
/// first-occurrence order.
pub fn parse_query(db: &mut Database, text: &str) -> Result<ParsedQuery> {
    let toks = Lexer::new(text).tokenize()?;
    let mut p = Parser { toks, pos: 0, db };
    // optional `?-`… our lexer has no `?`; accept plain body.
    let mut vars: FxHashMap<String, Var> = FxHashMap::default();
    let mut order: Vec<(String, Var)> = Vec::new();
    let mut body = Vec::new();
    loop {
        let before = vars.len();
        let lit = p.literal(&mut |name, pp| {
            let term = rule_term(name.clone(), pp, &mut vars)?;
            Ok(term)
        })?;
        if vars.len() > before {
            // record newly named vars in first-occurrence order
            let mut newly: Vec<(&String, &Var)> = vars
                .iter()
                .filter(|(n, _)| !order.iter().any(|(o, _)| o == *n))
                .collect();
            newly.sort_by_key(|(_, v)| v.0);
            for (n, v) in newly {
                order.push((n.clone(), *v));
            }
        }
        body.push(lit);
        match p.peek() {
            Some(Tok::Comma) => {
                p.bump();
            }
            Some(Tok::Dot) => {
                p.bump();
                break;
            }
            None => break,
            other => return Err(p.err_at(format!("expected `,` or end of query, found {other:?}"))),
        }
    }
    Ok((body, order))
}

impl Database {
    /// Run a textual query, e.g. `db.query_text("Path(X, Y), X != Y")`.
    /// Returns the variable names (first-occurrence order) and the result
    /// tuples projected onto them, sorted and deduplicated.
    pub fn query_text(&mut self, text: &str) -> Result<(Vec<String>, Vec<Tuple>)> {
        // Parsing needs `&mut self` for interning; split borrows by taking
        // the parse first.
        let (body, vars) = parse_query(self, text)?;
        let out_vars: Vec<Var> = vars.iter().map(|&(_, v)| v).collect();
        let names: Vec<String> = vars.into_iter().map(|(n, _)| n).collect();
        let rows = self.query(&body, &out_vars)?;
        Ok((names, rows))
    }
}

impl Database {
    /// Parse a program text (declarations, rules, constraints, ground
    /// facts) into this database. See [`parse_program`].
    pub fn load(&mut self, text: &str) -> Result<()> {
        let _sp = gom_obs::span("load.program");
        parse_program(self, text)
    }

    /// Like [`Self::load`] but with statement-level error recovery; see
    /// [`parse_program_lenient`].
    pub fn load_lenient(&mut self, text: &str) -> LenientReport {
        parse_program_lenient(self, text)
    }

    /// Dump all stored base facts as re-loadable program text
    /// (`Pred(a, b).` lines, sorted deterministically). Together with the
    /// declarations this makes a database state round-trippable.
    pub fn dump_facts(&self) -> String {
        let mut out = String::new();
        let mut preds: Vec<PredId> = self.base_preds().collect();
        preds.sort_by_key(|&p| self.pred_name(p).to_string());
        for p in preds {
            for t in self.facts_sorted(p) {
                out.push_str(self.pred_name(p));
                out.push('(');
                for (i, c) in t.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    match c {
                        Const::Int(n) => out.push_str(&n.to_string()),
                        Const::Sym(s) => {
                            let text = self.resolve(s);
                            let plain = !text.is_empty()
                                && text.chars().next().is_some_and(|c| c.is_ascii_lowercase())
                                && text.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
                            if plain {
                                out.push_str(text);
                            } else {
                                out.push('\'');
                                // Symbols containing quotes cannot round-trip
                                // through the DSL; escape by doubling is not
                                // supported, so replace defensively.
                                out.push_str(&text.replace('\'', "\u{2019}"));
                                out.push('\'');
                            }
                        }
                    }
                }
                out.push_str(").\n");
            }
        }
        out
    }
}

use crate::pred::PredId;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declarations_with_keys_and_columns() {
        let mut db = Database::new();
        db.load("base Type(tid!, name, sid). derived SubT(a, b).")
            .unwrap();
        let ty = db.pred_id("Type").unwrap();
        assert_eq!(db.pred_decl(ty).arity, 3);
        assert_eq!(db.pred_decl(ty).key.as_deref(), Some(&[0usize][..]));
        assert!(db.pred_id("SubT").is_some());
    }

    #[test]
    fn rules_parse_and_run() {
        let mut db = Database::new();
        db.load(
            "base Edge(a, b).\n\
             derived Path(a, b).\n\
             Path(X, Y) :- Edge(X, Y).\n\
             Path(X, Z) :- Edge(X, Y), Path(Y, Z).",
        )
        .unwrap();
        let e = db.pred_id("Edge").unwrap();
        let (a, b, c) = (db.constant("a"), db.constant("b"), db.constant("c"));
        db.insert(e, vec![a, b]).unwrap();
        db.insert(e, vec![b, c]).unwrap();
        let p = db.pred_id("Path").unwrap();
        assert_eq!(db.derived_facts(p).unwrap().len(), 3);
    }

    #[test]
    fn rule_with_negation_and_constants() {
        let mut db = Database::new();
        db.load(
            "base T(x, k).\n\
             base Bad(x).\n\
             derived Ok(x).\n\
             Ok(X) :- T(X, flag), not Bad(X).",
        )
        .unwrap();
        let t = db.pred_id("T").unwrap();
        let bad = db.pred_id("Bad").unwrap();
        let (x1, x2, flag) = (db.constant("x1"), db.constant("x2"), db.constant("flag"));
        db.insert(t, vec![x1, flag]).unwrap();
        db.insert(t, vec![x2, flag]).unwrap();
        db.insert(bad, vec![x2]).unwrap();
        let ok = db.pred_id("Ok").unwrap();
        assert_eq!(db.derived_facts(ok).unwrap().len(), 1);
    }

    #[test]
    fn unknown_predicate_is_reported() {
        let mut db = Database::new();
        let err = db.load("P(X) :- Q(X).").unwrap_err();
        assert!(matches!(err, Error::Parse { .. }), "{err:?}");
    }

    #[test]
    fn arity_mismatch_is_reported_with_position() {
        let mut db = Database::new();
        let err = db
            .load("base Q(a, b). derived P(a). P(X) :- Q(X).")
            .unwrap_err();
        assert!(matches!(err.root(), Error::ArityMismatch { .. }), "{err:?}");
        assert!(err.position().is_some(), "{err:?}");
    }

    #[test]
    fn unsafe_rule_is_reported_with_position() {
        let mut db = Database::new();
        let err = db
            .load("base Q(a).\nderived P(a).\nP(X) :- Q(Y).")
            .unwrap_err();
        assert!(matches!(err.root(), Error::UnsafeRule { .. }), "{err:?}");
        assert_eq!(err.position(), Some((3, 1)), "{err:?}");
    }

    #[test]
    fn mid_file_syntax_error_names_the_right_line() {
        let mut db = Database::new();
        // line 1 and 2 are fine; line 3 has the bad statement, starting at
        // column 1 with the error detected at the `)`.
        let err = db
            .load("base Edge(a, b).\nderived Path(a, b).\nPath(X, ) :- Edge(X, Y).")
            .unwrap_err();
        let (line, _) = err.position().expect("positioned");
        assert_eq!(line, 3, "{err:?}");
    }

    #[test]
    fn lenient_parse_recovers_and_collects_all_errors() {
        let mut db = Database::new();
        let report = db.load_lenient(
            "base N(x).\n\
             derived Ok(x).\n\
             derived Bad(x).\n\
             Ok(X) :- N(X).\n\
             Bad(X) :- N(Y).\n\
             Nope(X) :- N(X).\n\
             N(1).",
        );
        assert_eq!(report.errors.len(), 2, "{:?}", report.errors);
        assert!(report.errors.iter().all(|e| e.position().is_some()));
        assert!(matches!(report.errors[0].root(), Error::UnsafeRule { .. }));
        // …and the valid statements all went through.
        assert_eq!(db.rules().len(), 1);
        let ok = db.pred_id("Ok").unwrap();
        assert_eq!(db.derived_facts(ok).unwrap().len(), 1);
    }

    #[test]
    fn rule_and_constraint_metadata_recorded() {
        let mut db = Database::new();
        db.load(
            "base Edge(a, b).\nderived Path(a, b).\n\
             Path(X, Y) :- Edge(X, Y).\n\
             constraint c: forall X: !Path(X, X).",
        )
        .unwrap();
        let info = db.rule_info(0);
        assert_eq!(info.pos, Some((3, 1)));
        assert_eq!(info.var_names, vec!["X".to_string(), "Y".to_string()]);
        assert_eq!(info.src, db.load_seq());
        assert_eq!(db.constraint_info(0).pos, Some((4, 1)));
    }

    #[test]
    fn constraint_with_message_and_quantifiers() {
        let mut db = Database::new();
        db.load(
            "base Decl(d!, tc, o, tt).\n\
             base Code(c!, text, d).\n\
             constraint decl_has_code \"every declaration needs code\":\n\
               forall D, Tc, O, Tt: Decl(D, Tc, O, Tt) -> exists C1, C2: Code(C1, C2, D).",
        )
        .unwrap();
        assert_eq!(db.constraints().len(), 1);
        assert_eq!(
            db.constraint("decl_has_code").unwrap().message.as_deref(),
            Some("every declaration needs code")
        );
    }

    #[test]
    fn unquantified_variable_rejected() {
        let mut db = Database::new();
        let err = db
            .load("base P(x). constraint c: forall X: P(X) -> P(Y).")
            .unwrap_err();
        assert!(matches!(err, Error::Parse { .. }), "{err:?}");
    }

    #[test]
    fn quoted_constants_and_negative_ints() {
        let mut db = Database::new();
        db.load(
            "base P(x, n).\n\
             derived Q(x).\n\
             Q(X) :- P(X, -3).\n\
             Q(X) :- P(X, Y), Y = 'ANY'.",
        )
        .unwrap();
        let p = db.pred_id("P").unwrap();
        let a = db.constant("a");
        let any = db.constant("ANY");
        db.insert(p, vec![a, Const::Int(-3)]).unwrap();
        let b = db.constant("b");
        db.insert(p, vec![b, any]).unwrap();
        let q = db.pred_id("Q").unwrap();
        assert_eq!(db.derived_facts(q).unwrap().len(), 2);
    }

    #[test]
    fn comments_are_skipped() {
        let mut db = Database::new();
        db.load(
            "% a prolog-style comment\n\
             // a C-style comment\n\
             base P(x). % trailing\n",
        )
        .unwrap();
        assert!(db.pred_id("P").is_some());
    }

    #[test]
    fn operator_precedence_arrow_binds_loosest() {
        let mut db = Database::new();
        db.load(
            "base A(x). base B(x). base C(x).\n\
             constraint c: forall X: A(X) -> B(X) | C(X).",
        )
        .unwrap();
        let f = &db.constraint("c").unwrap().formula;
        match f {
            Formula::Forall(_, inner) => {
                assert!(matches!(inner.as_ref(), Formula::Implies(..)), "{inner:?}");
            }
            other => panic!("expected Forall, got {other:?}"),
        }
    }

    #[test]
    fn facts_in_program_text_and_roundtrip() {
        let mut db = Database::new();
        db.load(
            "base Edge(a, b).\n\
             Edge(1, 2).\n\
             Edge(n1, 'Weird Name').\n",
        )
        .unwrap();
        let e = db.pred_id("Edge").unwrap();
        assert_eq!(db.relation(e).len(), 2);
        let dump = db.dump_facts();
        assert!(dump.contains("Edge(1, 2)."), "{dump}");
        assert!(dump.contains("'Weird Name'"), "{dump}");
        // Round trip into a fresh database.
        let mut db2 = Database::new();
        db2.load("base Edge(a, b).").unwrap();
        db2.load(&dump).unwrap();
        let e2 = db2.pred_id("Edge").unwrap();
        assert_eq!(db2.facts_sorted(e2).len(), 2);
        assert_eq!(db2.dump_facts(), dump);
    }

    #[test]
    fn ground_head_on_derived_pred_is_an_axiom() {
        let mut db = Database::new();
        db.load("base E(a). derived D(a). D(X) :- E(X).").unwrap();
        // A ground `D(...)` on a DERIVED predicate is a bodyless rule — a
        // datalog axiom, not a stored fact.
        db.load("D(1).").unwrap();
        let d = db.pred_id("D").unwrap();
        assert_eq!(db.derived_facts(d).unwrap().len(), 1);
        // …and it is not in the extensional store.
        assert!(db.insert(d, vec![Const::Int(2)]).is_err());
    }

    #[test]
    fn query_text_projects_named_vars() {
        let mut db = Database::new();
        db.load(
            "base Edge(a, b).\n\
             derived Path(a, b).\n\
             Path(X, Y) :- Edge(X, Y).\n\
             Path(X, Z) :- Edge(X, Y), Path(Y, Z).",
        )
        .unwrap();
        let e = db.pred_id("Edge").unwrap();
        let (a, b, c) = (db.constant("a"), db.constant("b"), db.constant("c"));
        db.insert(e, vec![a, b]).unwrap();
        db.insert(e, vec![b, c]).unwrap();
        let (names, rows) = db.query_text("Path(X, Y), Y != 'b'.").unwrap();
        assert_eq!(names, vec!["X".to_string(), "Y".to_string()]);
        assert_eq!(rows.len(), 2); // (a,c) and (b,c)
        let (_, rows2) = db.query_text("Path('a', Z)").unwrap();
        assert_eq!(rows2.len(), 2); // Z = b, c
    }

    #[test]
    fn query_text_rejects_garbage() {
        let mut db = Database::new();
        db.load("base P(x).").unwrap();
        assert!(db.query_text("P(X) P(Y)").is_err());
        assert!(db.query_text("Nope(X)").is_err());
    }

    #[test]
    fn shadowing_allocates_fresh_vars() {
        let mut db = Database::new();
        db.load(
            "base P(x).\n\
             constraint c: forall X: P(X) -> exists X: P(X).",
        )
        .unwrap();
        let c = db.constraint("c").unwrap();
        assert_eq!(c.var_names.len(), 2); // two distinct variables both named X
    }
}
