//! Fact storage for one predicate, with incrementally maintained hash
//! indexes.
//!
//! Tuples are stored **once**, in insertion-ordered copy-on-write chunks
//! ([`crate::storage::ChunkStore`]); the membership table and every index
//! are postings lists mapping a 64-bit key hash to compact `u32` row ids.
//! Indexes are created once (eagerly by the evaluator, which knows every
//! bound-column mask from the compiled plans, see [`crate::compile`]) and
//! afterwards **maintained in place** by `insert`/`remove`: an insert
//! costs one hash-and-push per index, with no tuple clones and no per-key
//! allocations — the fixpoint loop mutates derived relations every round,
//! so this is the engine's hottest write path. Lookups return *borrowed*
//! tuples and verify the key columns per candidate (hash collisions are
//! possible, exact matches are not assumed).
//!
//! Iteration order is insertion order with removed rows skipped, so any
//! deterministic insertion sequence yields deterministic scans — the
//! parallel evaluator relies on this (see [`crate::eval`]).
//!
//! Snapshot publication uses [`Relation::share`]: the chunk pages are
//! `Arc`-bumped instead of copied, the membership table and indexes are
//! dropped (index contents depend on query history; an index-free view
//! gives every snapshot of equal facts an identical state digest), and the
//! table is lazily rebuilt on the share's first mutation. Read-only probes
//! on an unsynced share fall back to a live-row scan, so shares are always
//! correct even before any rebuild.

use crate::storage::{note_tuple_copies, ChunkStore, LiveRows, TupleStorage};
use crate::symbol::FxHashMap;
use crate::tuple::Tuple;
use crate::value::Const;
use std::collections::hash_map::Entry;

/// Ids of the rows whose key projection hashes to one value. Almost every
/// hash has exactly one row (collisions and duplicate keys are rare for
/// membership tables; index buckets are small), so the single-id case is
/// stored inline — postings inserts then allocate nothing.
#[derive(Debug, Clone)]
enum Ids {
    One(u32),
    Many(Vec<u32>),
}

impl Ids {
    fn as_slice(&self) -> &[u32] {
        match self {
            Ids::One(x) => std::slice::from_ref(x),
            Ids::Many(v) => v,
        }
    }

    fn push(&mut self, id: u32) {
        match self {
            Ids::One(x) => *self = Ids::Many(vec![*x, id]),
            Ids::Many(v) => v.push(id),
        }
    }

    fn remove_id(&mut self, id: u32) {
        match self {
            Ids::One(x) if *x == id => *self = Ids::Many(Vec::new()),
            Ids::One(_) => {}
            Ids::Many(v) => {
                if let Some(pos) = v.iter().position(|&x| x == id) {
                    v.swap_remove(pos);
                }
            }
        }
    }
}

/// Key hash → ids of the rows whose projection hashes to it.
type Postings = FxHashMap<u64, Ids>;

fn push_posting(map: &mut Postings, kh: u64, id: u32) {
    match map.entry(kh) {
        Entry::Occupied(mut e) => e.get_mut().push(id),
        Entry::Vacant(e) => {
            e.insert(Ids::One(id));
        }
    }
}

/// Slot id sentinel: empty slot.
const EMPTY: u32 = u32::MAX;
/// Slot id sentinel: tombstone left by a removal.
const TOMB: u32 = u32::MAX - 1;

/// The membership table: open addressing with linear probing over packed
/// `(tuple hash, row id)` slots. Purpose-built for the fixpoint insert
/// path, which probes this once per derived fact: slots are 16 bytes (a
/// general-purpose map entry holding a postings value is 2-3x larger), a
/// miss inserts in the same probe sequence, and growth moves plain pairs
/// without touching tuples. Equality on hash hits is delegated to the
/// caller, which owns the row storage.
#[derive(Debug, Clone, Default)]
struct RawTable {
    slots: Vec<(u64, u32)>,
    /// Live entries.
    len: usize,
    /// Occupied slots including tombstones (load-factor accounting).
    used: usize,
}

impl RawTable {
    /// Probe for an existing row with hash `h` (confirmed by `eq`); when
    /// none matches, claim a slot for `id` and return `None`.
    fn insert_or_get(&mut self, h: u64, id: u32, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        if (self.used + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (h as usize) & mask;
        let mut free: Option<usize> = None;
        loop {
            let (sh, sid) = self.slots[i];
            if sid == EMPTY {
                let slot = free.unwrap_or(i);
                if self.slots[slot].1 == EMPTY {
                    self.used += 1;
                }
                self.slots[slot] = (h, id);
                self.len += 1;
                return None;
            }
            if sid == TOMB {
                free.get_or_insert(i);
            } else if sh == h && eq(sid) {
                return Some(sid);
            }
            i = (i + 1) & mask;
        }
    }

    /// Claim a slot for a row known not to be present — no equality
    /// probing, no duplicate check. Bulk loads of already-deduplicated rows
    /// (table rebuilds after a share, `without_indexes`) use this to skip
    /// the per-tuple comparison path entirely.
    fn insert_new(&mut self, h: u64, id: u32) {
        if (self.used + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (h as usize) & mask;
        loop {
            let sid = self.slots[i].1;
            if sid >= TOMB {
                if sid == EMPTY {
                    self.used += 1;
                }
                self.slots[i] = (h, id);
                self.len += 1;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    /// The row with hash `h` for which `eq` holds, if any.
    fn find(&self, h: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (h as usize) & mask;
        loop {
            let (sh, sid) = self.slots[i];
            if sid == EMPTY {
                return None;
            }
            if sid != TOMB && sh == h && eq(sid) {
                return Some(sid);
            }
            i = (i + 1) & mask;
        }
    }

    /// Prefetch the first slot line a probe for `h` would read.
    #[inline]
    fn prefetch(&self, h: u64) {
        #[cfg(target_arch = "x86_64")]
        if !self.slots.is_empty() {
            let i = (h as usize) & (self.slots.len() - 1);
            // SAFETY: `i` is in bounds; prefetch has no side effects.
            unsafe {
                std::arch::x86_64::_mm_prefetch(
                    self.slots.as_ptr().add(i) as *const i8,
                    std::arch::x86_64::_MM_HINT_T0,
                );
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = h;
    }

    /// Tombstone the slot holding (`h`, `id`).
    fn remove(&mut self, h: u64, id: u32) {
        if self.slots.is_empty() {
            return;
        }
        let mask = self.slots.len() - 1;
        let mut i = (h as usize) & mask;
        loop {
            let (sh, sid) = self.slots[i];
            if sid == EMPTY {
                return;
            }
            if sid != TOMB && sh == h && sid == id {
                self.slots[i].1 = TOMB;
                self.len -= 1;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    fn clear(&mut self) {
        self.slots.clear();
        self.len = 0;
        self.used = 0;
    }

    /// Empty the table while keeping the slot array allocated, for the
    /// relation-recycling path.
    fn reset(&mut self) {
        self.slots.fill((0, EMPTY));
        self.len = 0;
        self.used = 0;
    }

    /// Pre-size the slot array for about `n` live entries, respecting the
    /// 7/8 load factor. One rebuild now instead of log₂(n) doublings (and
    /// their rehashes) spread across the insert path.
    fn reserve(&mut self, n: usize) {
        let needed = ((n * 8).div_ceil(7) + 1).next_power_of_two().max(16);
        if needed > self.slots.len() {
            self.rebuild(needed);
        }
    }

    /// Double the slot array (min 16), dropping tombstones.
    fn grow(&mut self) {
        self.rebuild((self.slots.len() * 2).max(16));
    }

    /// Re-seat every live entry into a slot array of capacity `cap` (a
    /// power of two, larger than the current one).
    fn rebuild(&mut self, cap: usize) {
        let old = std::mem::replace(&mut self.slots, vec![(0, EMPTY); cap]);
        let mask = cap - 1;
        for (sh, sid) in old {
            if sid >= TOMB {
                continue;
            }
            let mut i = (sh as usize) & mask;
            while self.slots[i].1 != EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = (sh, sid);
        }
        self.used = self.len;
    }
}

/// FxHash-style multiply-xor fold, one round per constant. Hand-rolled
/// rather than going through the `Hasher` trait: the derived `Hash` for
/// [`Const`] feeds discriminant and payload as separate hasher writes
/// (two multiply rounds per constant), and this fold runs once per
/// derivation in the fixpoint's membership probe — the engine's single
/// hottest instruction sequence.
#[inline]
fn hash_vals(vals: impl Iterator<Item = Const>) -> u64 {
    const K: u64 = 0x517c_c1b7_2722_0a95;
    // Arbitrary salt separating `Sym(x)` from `Int(x)` without a second
    // round; collisions are harmless (buckets verify by value).
    const SYM_SALT: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut h: u64 = 0;
    for v in vals {
        let x = match v {
            Const::Sym(s) => s.index() as u64 ^ SYM_SALT,
            Const::Int(i) => i as u64,
        };
        h = (h.rotate_left(5) ^ x).wrapping_mul(K);
    }
    h
}

/// The set of facts currently stored (or derived) for one predicate.
///
/// Cloning preserves the membership table and indexes while sharing the
/// tuple pages copy-on-write, so snapshots taken by incremental
/// maintenance (DRed) keep their lookup structures without copying a
/// single tuple.
#[derive(Default, Debug)]
pub struct Relation {
    /// Insertion-ordered rows in CoW chunks; removal tombstones instead of
    /// shifting.
    store: ChunkStore,
    /// Full-tuple hash → row id, open-addressed (the membership table).
    table: RawTable,
    /// Set when the table lags the store: [`Relation::share`] drops the
    /// table to keep publication O(#chunks). Mutating entry points rebuild
    /// it first; read-only probes fall back to a live-row scan.
    table_stale: bool,
    /// Sorted column positions → index postings, maintained on mutation.
    indexes: FxHashMap<Box<[usize]>, Postings>,
    /// Recycled tuple buffers from a [`Self::recycle`] reset, drawn on by
    /// `insert_vals` instead of the allocator. A relation's tuples all
    /// share one arity, so every parked buffer fits every future fact.
    pool: Vec<Vec<Const>>,
}

impl Clone for Relation {
    fn clone(&self) -> Relation {
        Relation {
            store: self.store.share(),
            table: self.table.clone(),
            table_stale: self.table_stale,
            indexes: self.indexes.clone(),
            pool: Vec::new(),
        }
    }
}

impl Relation {
    /// Empty relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.store.len_rows() - self.store.dead()
    }

    /// True when no facts are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn find_id(&self, t: &Tuple) -> Option<u32> {
        if self.table_stale {
            return self
                .store
                .live_rows()
                .find_map(|(id, r)| (r == t).then_some(id));
        }
        let h = hash_vals(t.iter());
        self.table.find(h, |id| self.store.row(id) == t)
    }

    /// Borrow a row by its id. Ids are only valid until the next removal
    /// (compaction renumbers); the evaluator uses them within one fixpoint.
    pub(crate) fn row(&self, id: u32) -> &Tuple {
        self.store.row(id)
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.find_id(t).is_some()
    }

    /// Membership test on a sequence of constants, without materialising a
    /// tuple (zero-allocation negation checks in the evaluator).
    pub fn contains_vals<I>(&self, vals: I) -> bool
    where
        I: Iterator<Item = Const> + Clone,
    {
        if self.table_stale {
            return self
                .store
                .live_rows()
                .any(|(_, r)| r.iter().eq(vals.clone()));
        }
        let h = hash_vals(vals.clone());
        self.table
            .find(h, |id| self.store.row(id).iter().eq(vals.clone()))
            .is_some()
    }

    /// Rebuild the membership table when it lags the store (after a
    /// [`Self::share`]). Rows in the store are already deduplicated, so the
    /// rebuild claims slots without equality probes. No-op when synced.
    pub(crate) fn ensure_table(&mut self) {
        if !self.table_stale {
            return;
        }
        self.table.clear();
        self.table.reserve(self.len());
        for (id, t) in self.store.live_rows() {
            self.table.insert_new(hash_vals(t.iter()), id);
        }
        self.table_stale = false;
    }

    /// Insert a fact. Returns `true` when the fact was new. All existing
    /// indexes are updated in place.
    pub fn insert(&mut self, t: Tuple) -> bool {
        self.insert_get_id(t).is_some()
    }

    /// Insert a fact, returning its row id when it was new (`None` for
    /// duplicates). The evaluator stages row ids as its per-round deltas.
    pub(crate) fn insert_get_id(&mut self, t: Tuple) -> Option<u32> {
        let h = hash_vals(t.iter());
        self.insert_hashed(h, t)
    }

    /// The membership hash of a tuple, reusable with
    /// [`Self::insert_hashed`] so the evaluator's flush can batch-hash a
    /// round of derivations and prefetch their probe slots ahead of the
    /// inserts.
    pub(crate) fn fact_hash(t: &Tuple) -> u64 {
        hash_vals(t.iter())
    }

    /// Reset to empty while keeping every allocation: the slot array, the
    /// index postings maps, page shells, and the row tuples themselves,
    /// which are parked in the buffer pool for the next inserts.
    /// Re-evaluation after a cache invalidation then runs nearly
    /// allocation-free.
    pub(crate) fn recycle(&mut self) {
        self.table.reset();
        self.table_stale = false;
        for map in self.indexes.values_mut() {
            map.clear();
        }
        self.store.recycle_into(&mut self.pool);
    }

    /// Pre-size row storage and the membership table for about `n` facts.
    /// Called by the evaluator with the previous fixpoint's relation sizes:
    /// re-evaluation converges to a similar extension, so sizing up front
    /// removes incremental growth and rehashing from the insert path.
    pub fn reserve(&mut self, n: usize) {
        self.store.reserve(n);
        self.table.reserve(n);
    }

    /// As [`Self::fact_hash`], over a constant slice that has not been
    /// materialised into a tuple yet.
    pub(crate) fn fact_hash_vals(vals: &[Const]) -> u64 {
        hash_vals(vals.iter().copied())
    }

    /// Insert a fact given as a constant slice with its precomputed
    /// [`Self::fact_hash_vals`]. The stored tuple is allocated only when
    /// the fact is new — duplicate derivations cost one probe and nothing
    /// else.
    pub(crate) fn insert_vals(&mut self, h: u64, vals: &[Const]) -> Option<u32> {
        self.ensure_table();
        let id = self.store.len_rows() as u32;
        let store = &self.store;
        if self
            .table
            .insert_or_get(h, id, |i| store.row(i).as_slice() == vals)
            .is_some()
        {
            return None;
        }
        let t = match self.pool.pop() {
            Some(mut buf) if buf.capacity() == vals.len() => {
                buf.clear();
                buf.extend_from_slice(vals);
                Tuple::from(buf)
            }
            _ => Tuple::from(vals.to_vec()),
        };
        for (cols, map) in self.indexes.iter_mut() {
            let kh = hash_vals(cols.iter().map(|&c| t.get(c)));
            push_posting(map, kh, id);
        }
        self.store.push(t);
        Some(id)
    }

    /// Hint the cache to load the membership slot that a probe for hash
    /// `h` will touch first. Purely advisory; a no-op off x86-64.
    #[inline]
    pub(crate) fn prefetch_slot(&self, h: u64) {
        self.table.prefetch(h);
    }

    /// As [`Self::insert_get_id`], with a precomputed [`Self::fact_hash`].
    pub(crate) fn insert_hashed(&mut self, h: u64, t: Tuple) -> Option<u32> {
        self.ensure_table();
        let id = self.store.len_rows() as u32;
        let store = &self.store;
        if self
            .table
            .insert_or_get(h, id, |i| store.row(i) == &t)
            .is_some()
        {
            return None;
        }
        for (cols, map) in self.indexes.iter_mut() {
            let kh = hash_vals(cols.iter().map(|&c| t.get(c)));
            push_posting(map, kh, id);
        }
        self.store.push(t);
        Some(id)
    }

    /// Remove a fact. Returns `true` when the fact was present. All existing
    /// indexes are updated in place. Tombstoning copies only the touched
    /// liveness page when the store is shared with a snapshot — never the
    /// tuples.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        self.ensure_table();
        let Some(id) = self.find_id(t) else {
            return false;
        };
        let h = hash_vals(t.iter());
        self.table.remove(h, id);
        for (cols, map) in self.indexes.iter_mut() {
            let kh = hash_vals(cols.iter().map(|&c| t.get(c)));
            if let Some(ids) = map.get_mut(&kh) {
                ids.remove_id(id);
            }
        }
        self.store.tombstone(id);
        if self.store.dead() > 32 && self.store.dead() * 2 > self.store.len_rows() {
            self.compact();
        }
        true
    }

    /// Drop tombstoned rows and rebuild the table and index postings.
    /// Uniquely-owned pages move their tuples; pages still referenced by a
    /// snapshot are copied (the snapshot keeps its own view either way).
    fn compact(&mut self) {
        self.store.compact(&mut self.pool);
        self.table.clear();
        self.table.reserve(self.len());
        for (id, t) in self.store.live_rows() {
            self.table.insert_new(hash_vals(t.iter()), id);
        }
        self.table_stale = false;
        for (cols, map) in self.indexes.iter_mut() {
            map.clear();
            for (id, t) in self.store.live_rows() {
                let kh = hash_vals(cols.iter().map(|&c| t.get(c)));
                push_posting(map, kh, id);
            }
        }
    }

    /// Iterate over all facts in insertion order, borrowed.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.store.live_rows().map(|(_, t)| t)
    }

    /// Share this relation's pages into a new relation with no membership
    /// table, no indexes, and no recycled buffers: O(#chunks) `Arc` bumps,
    /// zero tuple copies. Snapshot publication uses this — index contents
    /// depend on query history, so an index-free view gives every snapshot
    /// of equal facts an identical state digest, and iteration order is
    /// bit-identical to the source. The share rebuilds its membership
    /// table lazily on first mutation.
    pub(crate) fn share(&self) -> Relation {
        Relation {
            store: self.store.share(),
            table: RawTable::default(),
            // An empty store needs no rebuild; anything else syncs lazily.
            table_stale: self.store.len_rows() > 0,
            indexes: FxHashMap::default(),
            pool: Vec::new(),
        }
    }

    /// Deep-copy the live facts into a fresh relation with no indexes, no
    /// tombstones, and no shared pages. Rows are already deduplicated, so
    /// the bulk load claims membership slots without per-tuple equality
    /// probes. Recovery replay and differential oracles use this; snapshot
    /// publication shares pages via [`Self::share`] instead.
    pub fn without_indexes(&self) -> Relation {
        let mut out = Relation::new();
        out.reserve(self.len());
        for (_, t) in self.store.live_rows() {
            let h = hash_vals(t.iter());
            note_tuple_copies(1);
            let id = out.store.push(t.clone());
            out.table.insert_new(h, id);
        }
        out
    }

    /// All facts, sorted, for deterministic output.
    pub fn sorted(&self) -> Vec<Tuple> {
        // Decorate-sort-undecorate: tuples order lexicographically, so an
        // inline copy of the first two constants (`None` marks "past the
        // end", which sorts first, matching slice order for short tuples)
        // decides almost every comparison without dereferencing the heap
        // tuple; ties on the prefix fall back to the full comparison.
        let mut v: Vec<(Option<Const>, Option<Const>, &Tuple)> = self
            .iter()
            .map(|t| (t.iter().next(), t.iter().nth(1), t))
            .collect();
        v.sort_unstable_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)).then_with(|| a.2.cmp(b.2)));
        v.into_iter().map(|(_, _, t)| t.clone()).collect()
    }

    /// Deterministic dump of every maintained index: for each column set,
    /// the live tuples reachable through its posting buckets, sorted.
    /// Debug/test support for state-equality assertions (e.g. proving that
    /// a session rollback restores the indexes, not just the rows).
    #[doc(hidden)]
    pub fn index_dump(&self) -> Vec<(Vec<usize>, Vec<Tuple>)> {
        let mut out: Vec<(Vec<usize>, Vec<Tuple>)> = self
            .indexes
            .iter()
            .map(|(cols, map)| {
                let mut tuples: Vec<Tuple> = map
                    .values()
                    .flat_map(|ids| ids.as_slice().iter().copied())
                    .filter(|&id| self.store.is_live(id))
                    .map(|id| self.store.row(id).clone())
                    .collect();
                tuples.sort_unstable();
                (cols.to_vec(), tuples)
            })
            .collect();
        out.sort();
        out
    }

    /// Build the index on the given column positions if it does not exist
    /// yet (`cols` must be sorted and non-empty). The evaluator calls this
    /// for every bound-column mask occurring in the compiled plans before
    /// running them, so plan execution hits ready indexes.
    pub fn ensure_index(&mut self, cols: &[usize]) {
        if self.indexes.contains_key(cols) {
            return;
        }
        let mut map = Postings::default();
        for (id, t) in self.store.live_rows() {
            let kh = hash_vals(cols.iter().map(|&c| t.get(c)));
            push_posting(&mut map, kh, id);
        }
        self.indexes.insert(cols.into(), map);
    }

    /// Bucket lookup on an existing index: the tuples whose projection on
    /// `cols` (sorted positions) equals `key`. Returns `None` when no index
    /// on `cols` exists — callers fall back to a filtered scan. The
    /// iterator verifies the key columns per candidate, so hash collisions
    /// never surface.
    #[inline]
    pub fn bucket<'a>(&'a self, cols: &'a [usize], key: &'a [Const]) -> Option<BucketIter<'a>> {
        Some(self.index_ref(cols)?.bucket(cols, key))
    }

    /// Resolve the index on `cols` once; repeated bucket probes through the
    /// returned handle skip the per-call column-set lookup (the plan
    /// executor probes once per outer tuple of a join).
    #[inline]
    pub fn index_ref(&self, cols: &[usize]) -> Option<IndexRef<'_>> {
        Some(IndexRef {
            store: &self.store,
            map: self.indexes.get(cols)?,
        })
    }

    /// All facts matching the given bound columns, borrowed.
    ///
    /// With an empty binding this iterates the whole fact set; with a bound
    /// set matching an existing index it walks one postings list; otherwise
    /// it falls back to a filtered scan (still zero-copy).
    pub fn select(&self, bound: &[(usize, Const)]) -> Matches<'_> {
        if bound.is_empty() {
            return Matches(MatchesInner::All {
                it: self.store.live_rows(),
            });
        }
        let mut pairs: Vec<(usize, Const)> = bound.to_vec();
        pairs.sort_unstable_by_key(|&(c, _)| c);
        let cols: Vec<usize> = pairs.iter().map(|&(c, _)| c).collect();
        if let Some(map) = self.indexes.get(cols.as_slice()) {
            let kh = hash_vals(pairs.iter().map(|&(_, v)| v));
            let ids = map.get(&kh).map(Ids::as_slice).unwrap_or(&[]);
            return Matches(MatchesInner::Ids {
                store: &self.store,
                ids: ids.iter(),
                bound: pairs,
            });
        }
        // No exact index: walk the bucket of the largest index covering a
        // *subset* of the bound columns and post-filter the rest (the `Ids`
        // iterator re-checks every bound pair anyway). Meta-layer lookups
        // often bind more columns than the plan-driven index masks cover —
        // e.g. Attr by (type, name) with only a (type,) index present — and
        // a bucket walk is O(bucket) where the filter scan is O(rows).
        let mut best: Option<(&[usize], &Postings)> = None;
        for (k, m) in &self.indexes {
            let covered = k.iter().all(|c| cols.contains(c));
            let better = best.is_none_or(|(bk, _)| {
                k.len() > bk.len() || (k.len() == bk.len() && k.as_ref() < bk)
            });
            if covered && better {
                best = Some((k, m));
            }
        }
        if let Some((sub, map)) = best {
            let kh = hash_vals(sub.iter().map(|&c| {
                pairs
                    .iter()
                    .find(|&&(pc, _)| pc == c)
                    .map(|&(_, v)| v)
                    .expect("subset column is bound")
            }));
            let ids = map.get(&kh).map(Ids::as_slice).unwrap_or(&[]);
            return Matches(MatchesInner::Ids {
                store: &self.store,
                ids: ids.iter(),
                bound: pairs,
            });
        }
        Matches(MatchesInner::Filter {
            it: self.store.live_rows(),
            bound: pairs,
        })
    }

    /// Drop all facts (and index contents).
    pub fn clear(&mut self) {
        self.store.clear();
        self.table.clear();
        self.table_stale = false;
        for map in self.indexes.values_mut() {
            map.clear();
        }
    }
}

/// A resolved index on one relation (see [`Relation::index_ref`]).
#[derive(Clone, Copy)]
pub struct IndexRef<'a> {
    store: &'a ChunkStore,
    map: &'a Postings,
}

impl<'a> IndexRef<'a> {
    /// As [`Relation::bucket`], with the column-set lookup already done.
    #[inline]
    pub fn bucket(self, cols: &'a [usize], key: &'a [Const]) -> BucketIter<'a> {
        let ids = self
            .map
            .get(&hash_vals(key.iter().copied()))
            .map(Ids::as_slice)
            .unwrap_or(&[]);
        BucketIter {
            store: self.store,
            ids: ids.iter(),
            cols,
            key,
        }
    }
}

/// Borrowed iterator over one index bucket (see [`Relation::bucket`]).
pub struct BucketIter<'a> {
    store: &'a ChunkStore,
    ids: std::slice::Iter<'a, u32>,
    cols: &'a [usize],
    key: &'a [Const],
}

impl<'a> Iterator for BucketIter<'a> {
    type Item = &'a Tuple;

    fn next(&mut self) -> Option<&'a Tuple> {
        for &id in self.ids.by_ref() {
            let t = self.store.row(id);
            if self.cols.iter().zip(self.key).all(|(&c, &k)| t.get(c) == k) {
                return Some(t);
            }
        }
        None
    }
}

/// Borrowed iterator over the facts matching a [`Relation::select`] call.
pub struct Matches<'a>(MatchesInner<'a>);

enum MatchesInner<'a> {
    All {
        it: LiveRows<'a>,
    },
    Ids {
        store: &'a ChunkStore,
        ids: std::slice::Iter<'a, u32>,
        bound: Vec<(usize, Const)>,
    },
    Filter {
        it: LiveRows<'a>,
        bound: Vec<(usize, Const)>,
    },
}

impl<'a> Iterator for Matches<'a> {
    type Item = &'a Tuple;

    fn next(&mut self) -> Option<&'a Tuple> {
        match &mut self.0 {
            MatchesInner::All { it } => it.next().map(|(_, t)| t),
            MatchesInner::Ids { store, ids, bound } => {
                for &id in ids.by_ref() {
                    let t = store.row(id);
                    if bound.iter().all(|&(c, v)| t.get(c) == v) {
                        return Some(t);
                    }
                }
                None
            }
            MatchesInner::Filter { it, bound } => {
                for (_, t) in it.by_ref() {
                    if bound.iter().all(|&(c, v)| t.get(c) == v) {
                        return Some(t);
                    }
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::debug_tuple_copies;

    fn t(xs: &[i64]) -> Tuple {
        Tuple::from(xs.iter().map(|&x| Const::Int(x)).collect::<Vec<_>>())
    }

    fn hits(r: &Relation, bound: &[(usize, Const)]) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = r.select(bound).cloned().collect();
        v.sort();
        v
    }

    #[test]
    fn insert_remove_contains() {
        let mut r = Relation::new();
        assert!(r.insert(t(&[1, 2])));
        assert!(!r.insert(t(&[1, 2])));
        assert!(r.contains(&t(&[1, 2])));
        assert!(r.contains_vals([Const::Int(1), Const::Int(2)].into_iter()));
        assert!(!r.contains_vals([Const::Int(2), Const::Int(1)].into_iter()));
        assert!(r.remove(&t(&[1, 2])));
        assert!(!r.remove(&t(&[1, 2])));
        assert!(r.is_empty());
    }

    #[test]
    fn select_with_empty_binding_scans_all() {
        let mut r = Relation::new();
        r.insert(t(&[1, 2]));
        r.insert(t(&[3, 4]));
        assert_eq!(r.select(&[]).count(), 2);
    }

    #[test]
    fn select_uses_bound_columns_without_index() {
        let mut r = Relation::new();
        r.insert(t(&[1, 2]));
        r.insert(t(&[1, 3]));
        r.insert(t(&[2, 3]));
        assert_eq!(r.select(&[(0, Const::Int(1))]).count(), 2);
        assert_eq!(
            hits(&r, &[(0, Const::Int(1)), (1, Const::Int(3))]),
            vec![t(&[1, 3])]
        );
    }

    #[test]
    fn index_maintained_across_mutations() {
        let mut r = Relation::new();
        r.insert(t(&[1, 2]));
        r.ensure_index(&[0]);
        assert_eq!(r.select(&[(0, Const::Int(1))]).count(), 1);
        r.insert(t(&[1, 9]));
        assert_eq!(r.select(&[(0, Const::Int(1))]).count(), 2);
        r.remove(&t(&[1, 2]));
        assert_eq!(hits(&r, &[(0, Const::Int(1))]), vec![t(&[1, 9])]);
        // bucket access agrees
        assert_eq!(r.bucket(&[0], &[Const::Int(1)]).unwrap().count(), 1);
        assert_eq!(r.bucket(&[0], &[Const::Int(7)]).unwrap().count(), 0);
        assert!(r.bucket(&[1], &[Const::Int(9)]).is_none());
    }

    #[test]
    fn clone_preserves_indexes() {
        let mut r = Relation::new();
        r.insert(t(&[1, 2]));
        r.ensure_index(&[0]);
        let mut c = r.clone();
        c.insert(t(&[1, 5]));
        assert_eq!(c.bucket(&[0], &[Const::Int(1)]).unwrap().count(), 2);
        // original untouched
        assert_eq!(r.bucket(&[0], &[Const::Int(1)]).unwrap().count(), 1);
    }

    #[test]
    fn multi_column_index() {
        let mut r = Relation::new();
        r.insert(t(&[1, 2, 3]));
        r.insert(t(&[1, 2, 4]));
        r.insert(t(&[1, 5, 3]));
        r.ensure_index(&[0, 1]);
        assert_eq!(
            hits(&r, &[(1, Const::Int(2)), (0, Const::Int(1))]),
            vec![t(&[1, 2, 3]), t(&[1, 2, 4])]
        );
    }

    #[test]
    fn clear_empties_indexes() {
        let mut r = Relation::new();
        r.insert(t(&[1]));
        r.ensure_index(&[0]);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.bucket(&[0], &[Const::Int(1)]).unwrap().count(), 0);
    }

    #[test]
    fn sorted_is_deterministic() {
        let mut r = Relation::new();
        r.insert(t(&[3]));
        r.insert(t(&[1]));
        r.insert(t(&[2]));
        assert_eq!(r.sorted(), vec![t(&[1]), t(&[2]), t(&[3])]);
    }

    #[test]
    fn iteration_is_insertion_ordered() {
        let mut r = Relation::new();
        r.insert(t(&[3]));
        r.insert(t(&[1]));
        r.insert(t(&[2]));
        r.remove(&t(&[1]));
        let got: Vec<Tuple> = r.iter().cloned().collect();
        assert_eq!(got, vec![t(&[3]), t(&[2])]);
    }

    #[test]
    fn compaction_preserves_contents_and_indexes() {
        let mut r = Relation::new();
        r.ensure_index(&[0]);
        for i in 0..100 {
            r.insert(t(&[i, i + 1]));
        }
        for i in 0..80 {
            r.remove(&t(&[i, i + 1]));
        }
        assert_eq!(r.len(), 20);
        for i in 80..100 {
            assert!(r.contains(&t(&[i, i + 1])));
            assert_eq!(r.bucket(&[0], &[Const::Int(i)]).unwrap().count(), 1);
        }
        assert_eq!(r.bucket(&[0], &[Const::Int(5)]).unwrap().count(), 0);
    }

    #[test]
    fn share_is_copy_free_and_immutable() {
        let mut r = Relation::new();
        r.ensure_index(&[0]);
        for i in 0..50 {
            r.insert(t(&[i, i]));
        }
        let before = debug_tuple_copies();
        let snap = r.share();
        assert_eq!(debug_tuple_copies() - before, 0, "share copies no tuples");
        assert!(snap.index_dump().is_empty(), "shares carry no indexes");

        // Unsynced probes fall back to scans and stay correct.
        assert!(snap.contains(&t(&[7, 7])));
        assert!(!snap.contains(&t(&[7, 8])));
        assert!(snap.contains_vals([Const::Int(3), Const::Int(3)].into_iter()));

        // Writer mutations never leak into the share.
        r.remove(&t(&[7, 7]));
        r.insert(t(&[999, 999]));
        assert!(snap.contains(&t(&[7, 7])));
        assert!(!snap.contains(&t(&[999, 999])));
        assert_eq!(snap.len(), 50);

        // Iteration order of the share matches a deep clone's.
        let deep: Vec<Tuple> = snap.without_indexes().iter().cloned().collect();
        let shared: Vec<Tuple> = snap.iter().cloned().collect();
        assert_eq!(deep, shared);
    }

    #[test]
    fn share_survives_writer_compaction() {
        let mut r = Relation::new();
        for i in 0..200 {
            r.insert(t(&[i]));
        }
        let snap = r.share();
        let expect: Vec<Tuple> = snap.iter().cloned().collect();
        // Force compaction in the writer (dead > 32 and dead*2 > rows).
        for i in 0..150 {
            r.remove(&t(&[i]));
        }
        assert_eq!(r.len(), 50);
        assert_eq!(snap.len(), 200);
        let got: Vec<Tuple> = snap.iter().cloned().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn share_can_be_mutated_independently() {
        let mut r = Relation::new();
        for i in 0..10 {
            r.insert(t(&[i]));
        }
        let mut snap = r.share();
        // First mutation resyncs the membership table lazily.
        assert!(!snap.insert(t(&[3])), "duplicate still detected");
        assert!(snap.insert(t(&[77])));
        assert!(snap.remove(&t(&[0])));
        assert_eq!(snap.len(), 10);
        assert_eq!(r.len(), 10);
        assert!(r.contains(&t(&[0])));
        assert!(!r.contains(&t(&[77])));
    }

    #[test]
    fn without_indexes_matches_source() {
        let mut r = Relation::new();
        r.ensure_index(&[0]);
        for i in 0..40 {
            r.insert(t(&[i, i * 2]));
        }
        for i in 0..10 {
            r.remove(&t(&[i, i * 2]));
        }
        let c = r.without_indexes();
        assert_eq!(c.len(), 30);
        assert_eq!(c.sorted(), r.sorted());
        let a: Vec<Tuple> = r.iter().cloned().collect();
        let b: Vec<Tuple> = c.iter().cloned().collect();
        assert_eq!(a, b, "bulk load preserves iteration order");
        assert!(c.contains(&t(&[20, 40])), "bulk-loaded table probes work");
        assert!(!c.contains(&t(&[5, 10])));
    }
}
