//! Fact storage for one predicate, with on-demand hash indexes.

use crate::symbol::{FxHashMap, FxHashSet};
use crate::tuple::Tuple;
use crate::value::Const;
use std::cell::RefCell;

/// Lazily built index: bound column positions → (build generation, map from
/// key constants to matching tuples).
type IndexCache = FxHashMap<Box<[usize]>, (u64, FxHashMap<Box<[Const]>, Vec<Tuple>>)>;

/// The set of facts currently stored (or derived) for one predicate.
///
/// Lookup under a partial binding is served by hash indexes keyed on the
/// bound column positions; indexes are built lazily on first use and
/// invalidated by any mutation (a generation counter makes staleness cheap to
/// detect).
#[derive(Default, Debug)]
pub struct Relation {
    facts: FxHashSet<Tuple>,
    generation: u64,
    indexes: RefCell<IndexCache>,
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        Relation {
            facts: self.facts.clone(),
            generation: self.generation,
            indexes: RefCell::new(IndexCache::default()),
        }
    }
}

impl Relation {
    /// Empty relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True when no facts are stored.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.facts.contains(t)
    }

    /// Insert a fact. Returns `true` when the fact was new.
    pub fn insert(&mut self, t: Tuple) -> bool {
        let added = self.facts.insert(t);
        if added {
            self.generation += 1;
        }
        added
    }

    /// Remove a fact. Returns `true` when the fact was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        let removed = self.facts.remove(t);
        if removed {
            self.generation += 1;
        }
        removed
    }

    /// Iterate over all facts (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.facts.iter()
    }

    /// All facts, sorted, for deterministic output.
    pub fn sorted(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.facts.iter().cloned().collect();
        v.sort();
        v
    }

    /// All facts matching the given bound columns.
    ///
    /// `bound` pairs column positions with required constants. With an empty
    /// binding this is a full scan; otherwise an index on those positions is
    /// (re)used.
    pub fn select(&self, bound: &[(usize, Const)]) -> Vec<Tuple> {
        if bound.is_empty() {
            return self.facts.iter().cloned().collect();
        }
        let mut cols: Vec<usize> = bound.iter().map(|&(c, _)| c).collect();
        cols.sort_unstable();
        let key: Box<[Const]> = {
            let mut pairs = bound.to_vec();
            pairs.sort_unstable_by_key(|&(c, _)| c);
            pairs.iter().map(|&(_, v)| v).collect()
        };
        let cols_box: Box<[usize]> = cols.into();
        let mut indexes = self.indexes.borrow_mut();
        let entry = indexes.get(&cols_box);
        let stale = match entry {
            Some((gen, _)) => *gen != self.generation,
            None => true,
        };
        if stale {
            let mut map: FxHashMap<Box<[Const]>, Vec<Tuple>> = FxHashMap::default();
            for t in &self.facts {
                let k: Box<[Const]> = cols_box.iter().map(|&c| t.get(c)).collect();
                map.entry(k).or_default().push(t.clone());
            }
            indexes.insert(cols_box.clone(), (self.generation, map));
        }
        indexes
            .get(&cols_box)
            .and_then(|(_, m)| m.get(&key))
            .cloned()
            .unwrap_or_default()
    }

    /// Drop all facts.
    pub fn clear(&mut self) {
        if !self.facts.is_empty() {
            self.generation += 1;
        }
        self.facts.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(xs: &[i64]) -> Tuple {
        Tuple::from(xs.iter().map(|&x| Const::Int(x)).collect::<Vec<_>>())
    }

    #[test]
    fn insert_remove_contains() {
        let mut r = Relation::new();
        assert!(r.insert(t(&[1, 2])));
        assert!(!r.insert(t(&[1, 2])));
        assert!(r.contains(&t(&[1, 2])));
        assert!(r.remove(&t(&[1, 2])));
        assert!(!r.remove(&t(&[1, 2])));
        assert!(r.is_empty());
    }

    #[test]
    fn select_with_empty_binding_scans_all() {
        let mut r = Relation::new();
        r.insert(t(&[1, 2]));
        r.insert(t(&[3, 4]));
        assert_eq!(r.select(&[]).len(), 2);
    }

    #[test]
    fn select_uses_bound_columns() {
        let mut r = Relation::new();
        r.insert(t(&[1, 2]));
        r.insert(t(&[1, 3]));
        r.insert(t(&[2, 3]));
        let hits = r.select(&[(0, Const::Int(1))]);
        assert_eq!(hits.len(), 2);
        let hits = r.select(&[(0, Const::Int(1)), (1, Const::Int(3))]);
        assert_eq!(hits, vec![t(&[1, 3])]);
    }

    #[test]
    fn index_invalidated_after_mutation() {
        let mut r = Relation::new();
        r.insert(t(&[1, 2]));
        assert_eq!(r.select(&[(0, Const::Int(1))]).len(), 1);
        r.insert(t(&[1, 9]));
        assert_eq!(r.select(&[(0, Const::Int(1))]).len(), 2);
        r.remove(&t(&[1, 2]));
        assert_eq!(r.select(&[(0, Const::Int(1))]).len(), 1);
    }

    #[test]
    fn sorted_is_deterministic() {
        let mut r = Relation::new();
        r.insert(t(&[3]));
        r.insert(t(&[1]));
        r.insert(t(&[2]));
        assert_eq!(r.sorted(), vec![t(&[1]), t(&[2]), t(&[3])]);
    }
}
