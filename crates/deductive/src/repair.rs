//! Repair generation for detected inconsistencies.
//!
//! This reproduces the reactive-consistency-control mechanism the paper
//! relies on (ref [19]): a violated constraint `∀x̄ (B ⟹ H)` with witness θ
//! can be repaired by
//!
//! 1. **invalidating the premise** — deleting a base fact from the
//!    derivation tree supporting `B θ` (derived premise atoms are traced
//!    down to their extensional leaves, which is how `−Attr^i(…)` in the
//!    paper's §3.5 example becomes a deletable base `Attr` fact), or
//! 2. **validating the conclusion** — inserting the base facts missing to
//!    make `H θ` true, binding existential variables against the current
//!    database where possible (the paper's `+Slot(clid4, fuelType,
//!    clid_string)`), and inventing fresh constants only as a last resort.
//!
//! Candidates are deduplicated, pruned to minimal ones, and returned in a
//! deterministic order. Rolling back the evolution session is always
//! available as an additional repair at the session layer.

use crate::ast::{Atom, Literal, Term, Var};
use crate::changes::{ChangeSet, Op};
use crate::check::{Violation, ViolationSource};
use crate::constraint::Formula;
use crate::db::Database;
use crate::error::Result;
use crate::eval::solve_body;
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::Const;
use std::fmt;

/// How many alternative bindings to explore per search step.
const MAX_BINDINGS: usize = 8;
/// Hard cap on generated repair candidates per violation.
const MAX_CANDIDATES: usize = 64;
/// Recursion depth when tracing derived predicates.
const MAX_DEPTH: usize = 6;

/// Classification of a repair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RepairKind {
    /// Invalidate the constraint's premise by deleting supporting base
    /// facts.
    InvalidatePremise,
    /// Validate the constraint's conclusion by inserting missing base facts.
    CompleteConclusion,
    /// Resolve a key conflict by deleting one of the clashing facts.
    ResolveKey,
}

impl fmt::Display for RepairKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RepairKind::InvalidatePremise => "invalidate premise",
            RepairKind::CompleteConclusion => "complete conclusion",
            RepairKind::ResolveKey => "resolve key conflict",
        };
        f.write_str(s)
    }
}

/// One executable repair: a set of base-predicate changes whose application
/// removes the violation it was generated for.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Repair {
    /// The base-fact changes to apply.
    pub changes: ChangeSet,
    /// What the repair does, structurally.
    pub kind: RepairKind,
}

impl Repair {
    /// Render the repair, e.g. `+Slot(clid4, fuelType, clid_string)`.
    pub fn render(&self, db: &Database) -> String {
        let ops: Vec<String> = self
            .changes
            .ops
            .iter()
            .map(|op| op.display(db).to_string())
            .collect();
        format!("[{}] {}", self.kind, ops.join(", "))
    }
}

/// Internal search state shared across repair-generation steps.
struct Gen<'a> {
    db: &'a Database,
    idb: &'a [Relation],
    /// Pre-interned constants handed out for unbound existential variables.
    fresh_pool: &'a [Const],
    fresh_next: std::cell::Cell<usize>,
}

impl Gen<'_> {
    fn next_fresh(&self) -> Option<Const> {
        let i = self.fresh_next.get();
        let c = self.fresh_pool.get(i).copied();
        if c.is_some() {
            self.fresh_next.set(i + 1);
        }
        c
    }
}

impl Gen<'_> {
    fn atom_holds(&self, pred: crate::pred::PredId, tuple: &Tuple) -> bool {
        if self.db.pred_decl(pred).is_base() {
            self.db.relation(pred).contains(tuple)
        } else {
            self.idb[pred.index()].contains(tuple)
        }
    }

    /// Trace a fact of a (possibly derived) predicate to the base facts of
    /// one supporting derivation. Returns `None` when the fact does not hold
    /// or no derivation is found within the depth budget.
    fn edb_support(
        &self,
        pred: crate::pred::PredId,
        tuple: &Tuple,
        depth: usize,
    ) -> Option<Vec<(crate::pred::PredId, Tuple)>> {
        if self.db.pred_decl(pred).is_base() {
            return if self.db.relation(pred).contains(tuple) {
                Some(vec![(pred, tuple.clone())])
            } else {
                None
            };
        }
        if depth == 0 || !self.idb[pred.index()].contains(tuple) {
            return None;
        }
        let compiled = self.db.compiled.as_ref().expect("compiled");
        let rule_ixs = compiled.rules_by_head.get(&pred)?;
        for &ri in rule_ixs {
            let rule = &compiled.rules[ri];
            // Unify head with the fact.
            let mut preset: Vec<(Var, Const)> = Vec::new();
            let mut ok = true;
            for (j, &t) in rule.head.args.iter().enumerate() {
                match t {
                    Term::Const(c) => {
                        if tuple.get(j) != c {
                            ok = false;
                            break;
                        }
                    }
                    Term::Var(v) => {
                        if let Some(&(_, prev)) = preset.iter().find(|&&(pv, _)| pv == v) {
                            if prev != tuple.get(j) {
                                ok = false;
                                break;
                            }
                        } else {
                            preset.push((v, tuple.get(j)));
                        }
                    }
                }
            }
            if !ok {
                continue;
            }
            let bindings = solve_body(self.db, self.idb, &rule.body, rule.var_count(), &preset, 1);
            let Some(binding) = bindings.into_iter().next() else {
                continue;
            };
            // Collect support from the positive body atoms.
            let mut support = Vec::new();
            let mut all_traced = true;
            for lit in &rule.body {
                let Literal::Pos(a) = lit else {
                    continue;
                };
                let ground = ground_atom(a, &binding);
                match self.edb_support(a.pred, &ground, depth - 1) {
                    Some(mut s) => support.append(&mut s),
                    None => {
                        all_traced = false;
                        break;
                    }
                }
            }
            if all_traced {
                support.sort();
                support.dedup();
                return Some(support);
            }
        }
        None
    }
}

fn ground_atom(a: &Atom, binding: &[Option<Const>]) -> Tuple {
    Tuple::from(
        a.args
            .iter()
            .map(|&t| match t {
                Term::Const(c) => c,
                Term::Var(v) => binding[v.index()].expect("full binding"),
            })
            .collect::<Vec<_>>(),
    )
}

/// A partial assignment for conclusion completion: outer witness plus
/// existential bindings discovered along the way.
type Assign = Vec<(Var, Const)>;

fn assigned(assign: &Assign, v: Var) -> Option<Const> {
    assign.iter().find(|&&(av, _)| av == v).map(|&(_, c)| c)
}

impl Gen<'_> {
    /// All ways to make `f` true under `assign` by inserting base facts
    /// (deleting for negated base atoms). Returns change sets; an empty
    /// change set means `f` already holds.
    fn completions(&self, f: &Formula, assign: &Assign, depth: usize) -> Vec<ChangeSet> {
        if depth == 0 {
            return Vec::new();
        }
        match f {
            Formula::True => vec![ChangeSet::new()],
            Formula::False => Vec::new(),
            Formula::Cmp(op, l, r) => {
                let lv = resolve_term(*l, assign);
                let rv = resolve_term(*r, assign);
                match (lv, rv) {
                    (Some(a), Some(b)) if op.eval(a, b) => vec![ChangeSet::new()],
                    _ => Vec::new(),
                }
            }
            Formula::Atom(_) | Formula::And(_) | Formula::Exists(..) => {
                self.complete_conjunction(&flatten_conj(f), assign, depth)
            }
            Formula::Or(fs) => {
                let mut out = Vec::new();
                for branch in fs {
                    out.extend(self.completions(branch, assign, depth));
                    if out.len() > MAX_CANDIDATES {
                        break;
                    }
                }
                out
            }
            Formula::Implies(p, q) => {
                // Make `p -> q` true: either p already fails, or make q true.
                let not_p = Formula::Not(p.clone());
                let mut out = self.completions(&not_p, assign, depth.saturating_sub(1));
                out.extend(self.completions(q, assign, depth));
                out
            }
            Formula::Not(g) => match g.as_ref() {
                Formula::Atom(a) if self.db.pred_decl(a.pred).is_base() => {
                    match try_ground(a, assign) {
                        Some(t) => {
                            if self.db.relation(a.pred).contains(&t) {
                                let mut cs = ChangeSet::new();
                                cs.delete(a.pred, t);
                                vec![cs]
                            } else {
                                vec![ChangeSet::new()]
                            }
                        }
                        None => Vec::new(),
                    }
                }
                Formula::Cmp(op, l, r) => {
                    self.completions(&Formula::Cmp(op.negate(), *l, *r), assign, depth)
                }
                // Making a derived atom or complex sub-formula false requires
                // derivation-tree deletion, which we only do for premises.
                _ => Vec::new(),
            },
            // Making a universally quantified sub-formula true would require
            // repairing each of its instantiations; out of scope — the user
            // can re-run the check after applying other repairs.
            Formula::Forall(..) => Vec::new(),
        }
    }

    /// Complete a conjunction of atoms/comparisons: choose a subset of atoms
    /// to *look up* (binding remaining existential variables against the
    /// database) and insert the rest.
    fn complete_conjunction(
        &self,
        conj: &[Formula],
        assign: &Assign,
        depth: usize,
    ) -> Vec<ChangeSet> {
        // Separate atoms from other conjuncts; non-atoms must simply hold.
        let mut atoms: Vec<&Atom> = Vec::new();
        let mut rest: Vec<&Formula> = Vec::new();
        for c in conj {
            match c {
                Formula::Atom(a) => atoms.push(a),
                other => rest.push(other),
            }
        }
        if atoms.len() > 6 {
            return Vec::new(); // subset search would explode
        }
        let mut out: Vec<ChangeSet> = Vec::new();
        // Iterate lookup-subsets from largest to smallest so that candidates
        // needing fewer insertions are generated first.
        let n = atoms.len();
        let mut masks: Vec<u32> = (0..(1u32 << n)).collect();
        masks.sort_by_key(|m| std::cmp::Reverse(m.count_ones()));
        for mask in masks {
            if out.len() >= MAX_CANDIDATES {
                break;
            }
            let lookup: Vec<&Atom> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| atoms[i])
                .collect();
            let insert: Vec<&Atom> = (0..n)
                .filter(|i| mask & (1 << i) == 0)
                .map(|i| atoms[i])
                .collect();
            // Solve the lookup conjunction for existential bindings.
            let body: Vec<Literal> = lookup.iter().map(|a| Literal::Pos((*a).clone())).collect();
            let var_count = conj_var_count(conj).max(
                assign
                    .iter()
                    .map(|&(v, _)| v.index() + 1)
                    .max()
                    .unwrap_or(0),
            );
            let bindings: Vec<Assign> = if lookup.is_empty() {
                vec![assign.clone()]
            } else {
                solve_body(self.db, self.idb, &body, var_count, assign, MAX_BINDINGS)
                    .into_iter()
                    .map(|b| {
                        b.iter()
                            .enumerate()
                            .filter_map(|(i, c)| c.map(|c| (Var(i as u32), c)))
                            .collect()
                    })
                    .collect()
            };
            for binding in bindings {
                let mut cs = ChangeSet::new();
                let mut viable = true;
                // Fresh constants are shared across all atoms of one
                // candidate so a variable used twice grounds consistently.
                let mut local = binding.clone();
                for a in &insert {
                    if !self.db.pred_decl(a.pred).is_base() {
                        viable = false; // cannot insert into derived predicates
                        break;
                    }
                    let mut consts = Vec::with_capacity(a.args.len());
                    for &t in &a.args {
                        let c = match t {
                            Term::Const(c) => Some(c),
                            Term::Var(v) => assigned(&local, v).or_else(|| {
                                let c = self.next_fresh()?;
                                local.push((v, c));
                                Some(c)
                            }),
                        };
                        match c {
                            Some(c) => consts.push(c),
                            None => {
                                viable = false; // fresh pool exhausted
                                break;
                            }
                        }
                    }
                    if !viable {
                        break;
                    }
                    let t = Tuple::from(consts);
                    if !self.atom_holds(a.pred, &t) {
                        cs.insert(a.pred, t);
                    }
                }
                if !viable {
                    continue;
                }
                // Non-atom conjuncts must already hold under this binding.
                for r in &rest {
                    let subs = self.completions(r, &local, depth - 1);
                    if let Some(extra) = subs.into_iter().min_by_key(ChangeSet::len) {
                        cs.extend(extra);
                    } else {
                        viable = false;
                        break;
                    }
                }
                if viable && !cs.is_empty() {
                    out.push(cs);
                }
            }
        }
        out
    }
}

fn resolve_term(t: Term, assign: &Assign) -> Option<Const> {
    match t {
        Term::Const(c) => Some(c),
        Term::Var(v) => assigned(assign, v),
    }
}

fn try_ground(a: &Atom, assign: &Assign) -> Option<Tuple> {
    let mut consts = Vec::with_capacity(a.args.len());
    for &t in &a.args {
        consts.push(resolve_term(t, assign)?);
    }
    Some(Tuple::from(consts))
}

fn flatten_conj(f: &Formula) -> Vec<Formula> {
    match f {
        Formula::And(fs) => fs.iter().flat_map(flatten_conj).collect(),
        Formula::Exists(_, g) => flatten_conj(g),
        other => vec![other.clone()],
    }
}

fn conj_var_count(conj: &[Formula]) -> usize {
    conj.iter().map(Formula::var_count).max().unwrap_or(0)
}

/// Canonicalise, deduplicate, and minimise a set of candidate change sets.
fn minimise(mut candidates: Vec<(ChangeSet, RepairKind)>) -> Vec<Repair> {
    for (cs, _) in &mut candidates {
        cs.ops
            .sort_by_key(|op| (op.pred(), op.tuple().clone(), matches!(op, Op::Insert(..))));
        cs.ops.dedup();
    }
    candidates.sort_by(|a, b| {
        a.0.ops
            .len()
            .cmp(&b.0.ops.len())
            .then_with(|| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)))
    });
    candidates.dedup_by(|a, b| a.0 == b.0);
    // Drop strict supersets of earlier (smaller) candidates.
    let mut kept: Vec<(ChangeSet, RepairKind)> = Vec::new();
    'outer: for (cs, kind) in candidates {
        for (prev, _) in &kept {
            if prev.ops.iter().all(|op| cs.ops.contains(op)) && prev.ops.len() < cs.ops.len() {
                continue 'outer;
            }
        }
        kept.push((cs, kind));
        if kept.len() >= MAX_CANDIDATES {
            break;
        }
    }
    kept.into_iter()
        .map(|(changes, kind)| Repair { changes, kind })
        .collect()
}

impl Database {
    /// Generate repairs for a violation: premise invalidations (base-fact
    /// deletions traced through derivation trees) and conclusion completions
    /// (base-fact insertions with existentials bound against the database).
    ///
    /// The returned list is deterministic, deduplicated, and minimal (no
    /// repair is a superset of another). Rolling back the whole session is
    /// intentionally *not* in the list — the session layer always offers it.
    pub fn repairs(&mut self, violation: &Violation) -> Result<Vec<Repair>> {
        let _sp = gom_obs::span("repair.generate");
        match &violation.source {
            ViolationSource::Key { pred, a, b } => {
                let mut out = Vec::new();
                for t in [a, b] {
                    let mut cs = ChangeSet::new();
                    cs.delete(*pred, t.clone());
                    out.push(Repair {
                        changes: cs,
                        kind: RepairKind::ResolveKey,
                    });
                }
                if gom_obs::enabled() {
                    gom_obs::counter_add("repair.candidates", out.len() as u64);
                    gom_obs::counter_add("repair.kept", out.len() as u64);
                }
                Ok(out)
            }
            ViolationSource::Constraint { idx, tuple } => {
                self.evaluate()?;
                let (premise, conclusion, outer_vars, premise_var_count) = {
                    let compiled = self.compiled.as_ref().expect("compiled");
                    let cc = &compiled.constraints[*idx];
                    let vc = premise_var_count_of(&cc.premise, &cc.conclusion);
                    (
                        cc.premise.clone(),
                        cc.conclusion.clone(),
                        cc.outer_vars.clone(),
                        vc,
                    )
                };
                // Pre-intern a pool of fresh constants for unbound
                // existentials (interning later would invalidate borrows).
                let fresh_pool: Vec<Const> = (0..16)
                    .map(|i| self.constant(&format!("fresh_{i}")))
                    .collect();
                let idb = self.idb.take().expect("evaluated");
                let gen = Gen {
                    db: self,
                    idb: &idb.rels,
                    fresh_pool: &fresh_pool,
                    fresh_next: std::cell::Cell::new(0),
                };
                let witness: Assign = outer_vars.iter().copied().zip(tuple.iter()).collect();
                let mut candidates: Vec<(ChangeSet, RepairKind)> = Vec::new();

                // 1. Premise invalidation.
                let full_bindings = solve_body(
                    gen.db,
                    gen.idb,
                    &premise,
                    premise_var_count,
                    &witness,
                    MAX_BINDINGS,
                );
                for binding in &full_bindings {
                    for lit in &premise {
                        match lit {
                            Literal::Pos(a) => {
                                let ground = ground_atom(a, binding);
                                if let Some(support) = gen.edb_support(a.pred, &ground, MAX_DEPTH) {
                                    for (p, t) in support {
                                        let mut cs = ChangeSet::new();
                                        cs.delete(p, t);
                                        candidates.push((cs, RepairKind::InvalidatePremise));
                                    }
                                }
                            }
                            Literal::Neg(a) if gen.db.pred_decl(a.pred).is_base() => {
                                // Invalidate the premise by making the
                                // negated base atom true.
                                let ground = ground_atom(a, binding);
                                let mut cs = ChangeSet::new();
                                cs.insert(a.pred, ground);
                                candidates.push((cs, RepairKind::InvalidatePremise));
                            }
                            _ => {}
                        }
                    }
                }

                // 2. Conclusion completion. Fresh constants are a last
                // resort: completions inventing new values are dropped when
                // at least one completion grounds entirely in existing ones
                // (the paper's §3.5 example binds `C_A` to the existing
                // `clid_string` rather than inventing a representation).
                let completions = gen.completions(&conclusion, &witness, MAX_DEPTH);
                let uses_fresh = |cs: &ChangeSet| {
                    cs.ops
                        .iter()
                        .any(|op| op.tuple().iter().any(|c| fresh_pool.contains(&c)))
                };
                let any_grounded = completions.iter().any(|cs| !uses_fresh(cs));
                for cs in completions {
                    if any_grounded && uses_fresh(&cs) {
                        continue;
                    }
                    candidates.push((cs, RepairKind::CompleteConclusion));
                }

                let _ = gen;
                self.idb = Some(idb);
                let generated = candidates.len();
                let kept = minimise(candidates);
                if gom_obs::enabled() {
                    gom_obs::counter_add("repair.candidates", generated as u64);
                    gom_obs::counter_add("repair.kept", kept.len() as u64);
                    gom_obs::counter_add(
                        "repair.pruned",
                        (generated - kept.len().min(generated)) as u64,
                    );
                }
                Ok(kept)
            }
        }
    }
}

fn premise_var_count_of(premise: &[Literal], conclusion: &Formula) -> usize {
    let from_premise = premise
        .iter()
        .flat_map(|l| l.vars())
        .map(|v| v.index() + 1)
        .max()
        .unwrap_or(0);
    from_premise.max(conclusion.var_count())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's §3.5 scenario in miniature: AttrI is derived, and the
    /// (*) constraint demands a Slot for every inherited attribute.
    fn star_db() -> Database {
        let mut db = Database::new();
        db.load(
            "base Attr(t, a, d).\n\
             base Sub(t1, t2).\n\
             base PhRep(c, t).\n\
             base Slot(c, a, ca).\n\
             derived SubT(t1, t2).\n\
             derived AttrI(t, a, d).\n\
             SubT(X, Y) :- Sub(X, Y).\n\
             SubT(X, Z) :- Sub(X, Y), SubT(Y, Z).\n\
             AttrI(T, A, D) :- Attr(T, A, D).\n\
             AttrI(T1, A, D) :- SubT(T1, T2), Attr(T2, A, D).\n\
             constraint slot_for_every_attr:\n\
               forall T, A, TA, C: AttrI(T, A, TA) & PhRep(C, T)\n\
                 -> exists CA: Slot(C, A, CA) & PhRep(CA, TA).\n",
        )
        .unwrap();
        db
    }

    #[test]
    fn paper_fueltype_repairs() {
        let mut db = star_db();
        let attr = db.pred_id("Attr").unwrap();
        let phrep = db.pred_id("PhRep").unwrap();
        let slot = db.pred_id("Slot").unwrap();
        let (tid4, fuel, tstr) = (
            db.constant("tid4"),
            db.constant("fuelType"),
            db.constant("tid_string"),
        );
        let (clid4, clstr) = (db.constant("clid4"), db.constant("clid_string"));
        db.insert(phrep, vec![clid4, tid4]).unwrap();
        db.insert(phrep, vec![clstr, tstr]).unwrap();
        // The schema change: add fuelType to Car.
        db.insert(attr, vec![tid4, fuel, tstr]).unwrap();
        let violations = db.check().unwrap();
        assert_eq!(violations.len(), 1, "{violations:?}");
        let repairs = db.repairs(&violations[0]).unwrap();
        let rendered: Vec<String> = repairs.iter().map(|r| r.render(&db)).collect();
        // Exactly the paper's three repairs.
        assert_eq!(repairs.len(), 3, "{rendered:?}");
        assert!(
            rendered
                .iter()
                .any(|r| r.contains("-Attr(tid4, fuelType, tid_string)")),
            "{rendered:?}"
        );
        assert!(
            rendered.iter().any(|r| r.contains("-PhRep(clid4, tid4)")),
            "{rendered:?}"
        );
        assert!(
            rendered
                .iter()
                .any(|r| r.contains("+Slot(clid4, fuelType, clid_string)")),
            "{rendered:?}"
        );
        // Each repair actually removes the violation.
        for r in &repairs {
            let mut db2 = star_db();
            let attr = db2.pred_id("Attr").unwrap();
            let phrep = db2.pred_id("PhRep").unwrap();
            let _ = slot;
            let (tid4, fuel, tstr) = (
                db2.constant("tid4"),
                db2.constant("fuelType"),
                db2.constant("tid_string"),
            );
            let (clid4, clstr) = (db2.constant("clid4"), db2.constant("clid_string"));
            db2.insert(phrep, vec![clid4, tid4]).unwrap();
            db2.insert(phrep, vec![clstr, tstr]).unwrap();
            db2.insert(attr, vec![tid4, fuel, tstr]).unwrap();
            db2.apply(&r.changes).unwrap();
            assert!(
                db2.check().unwrap().is_empty(),
                "repair {} did not fix the violation",
                r.render(&db2)
            );
        }
    }

    #[test]
    fn inherited_attr_traces_to_supertype_fact() {
        let mut db = star_db();
        let attr = db.pred_id("Attr").unwrap();
        let sub = db.pred_id("Sub").unwrap();
        let phrep = db.pred_id("PhRep").unwrap();
        let (base_t, sub_t) = (db.constant("base"), db.constant("subtype"));
        let (a, dom) = (db.constant("a"), db.constant("dom"));
        let (c_sub, c_dom) = (db.constant("c_sub"), db.constant("c_dom"));
        db.insert(sub, vec![sub_t, base_t]).unwrap();
        db.insert(attr, vec![base_t, a, dom]).unwrap();
        db.insert(phrep, vec![c_sub, sub_t]).unwrap();
        db.insert(phrep, vec![c_dom, dom]).unwrap();
        let violations = db.check().unwrap();
        assert_eq!(violations.len(), 1);
        let repairs = db.repairs(&violations[0]).unwrap();
        let rendered: Vec<String> = repairs.iter().map(|r| r.render(&db)).collect();
        // Deleting the *supertype's* Attr fact must be among the repairs —
        // the derivation of AttrI(subtype, a, dom) bottoms out there.
        assert!(
            rendered.iter().any(|r| r.contains("-Attr(base, a, dom)")),
            "{rendered:?}"
        );
        // Deleting the Sub edge also invalidates the premise.
        assert!(
            rendered.iter().any(|r| r.contains("-Sub(subtype, base)")),
            "{rendered:?}"
        );
    }

    #[test]
    fn key_violation_repairs_delete_either_fact() {
        let mut db = Database::new();
        let p = db.declare_base_keyed("P", 2, &[0]).unwrap();
        db.insert(p, vec![Const::Int(1), Const::Int(10)]).unwrap();
        db.insert(p, vec![Const::Int(1), Const::Int(20)]).unwrap();
        let v = db.check().unwrap();
        assert_eq!(v.len(), 1);
        let repairs = db.repairs(&v[0]).unwrap();
        assert_eq!(repairs.len(), 2);
        assert!(repairs.iter().all(|r| r.kind == RepairKind::ResolveKey));
    }

    #[test]
    fn referential_integrity_completion_inserts_target() {
        let mut db = Database::new();
        db.load(
            "base Type(t, n, s).\n\
             base Schema(s, n).\n\
             constraint type_schema_ref:\n\
               forall T, N, S: Type(T, N, S) -> exists N2: Schema(S, N2).\n",
        )
        .unwrap();
        let ty = db.pred_id("Type").unwrap();
        let (t1, n1, s1) = (db.constant("t1"), db.constant("Person"), db.constant("s1"));
        db.insert(ty, vec![t1, n1, s1]).unwrap();
        let v = db.check().unwrap();
        let repairs = db.repairs(&v[0]).unwrap();
        let rendered: Vec<String> = repairs.iter().map(|r| r.render(&db)).collect();
        assert!(
            rendered.iter().any(|r| r.contains("-Type(t1, Person, s1)")),
            "{rendered:?}"
        );
        // Completion must insert a Schema fact for s1 with a fresh name.
        assert!(
            rendered
                .iter()
                .any(|r| r.contains("+Schema(s1,") && r.contains("fresh_")),
            "{rendered:?}"
        );
    }

    #[test]
    fn repairs_are_minimal_and_deduplicated() {
        let mut db = star_db();
        let attr = db.pred_id("Attr").unwrap();
        let phrep = db.pred_id("PhRep").unwrap();
        let (t, a, d) = (db.constant("t"), db.constant("a"), db.constant("d"));
        let (c, cd) = (db.constant("c"), db.constant("cd"));
        db.insert(phrep, vec![c, t]).unwrap();
        db.insert(phrep, vec![cd, d]).unwrap();
        db.insert(attr, vec![t, a, d]).unwrap();
        let v = db.check().unwrap();
        let repairs = db.repairs(&v[0]).unwrap();
        for (i, r1) in repairs.iter().enumerate() {
            for (j, r2) in repairs.iter().enumerate() {
                if i != j {
                    assert_ne!(r1.changes, r2.changes, "duplicate repairs");
                    let subset = r1.changes.ops.iter().all(|op| r2.changes.ops.contains(op));
                    assert!(
                        !(subset && r1.changes.len() < r2.changes.len()),
                        "non-minimal repair kept: {} ⊂ {}",
                        r1.render(&db),
                        r2.render(&db)
                    );
                }
            }
        }
    }
}
