//! Constants: the values that may appear in fact tuples.

use crate::symbol::{Interner, Symbol};
use std::fmt;

/// A constant of the deductive database.
///
/// Two kinds suffice for the schema meta level: interned symbols (names and
/// opaque identifiers) and integers (argument positions, counters). Constants
/// are totally ordered so relations can be dumped deterministically.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Const {
    /// An interned symbol (identifier or name).
    Sym(Symbol),
    /// A 64-bit integer.
    Int(i64),
}

impl Const {
    /// The symbol inside, if this is a symbol constant.
    pub fn as_sym(self) -> Option<Symbol> {
        match self {
            Const::Sym(s) => Some(s),
            Const::Int(_) => None,
        }
    }

    /// The integer inside, if this is an integer constant.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Const::Int(n) => Some(n),
            Const::Sym(_) => None,
        }
    }

    /// Render the constant against an interner.
    pub fn display(self, interner: &Interner) -> ConstDisplay<'_> {
        ConstDisplay { c: self, interner }
    }

    /// Compare for ordering that is stable across runs when rendered:
    /// symbols order by their string, integers numerically, ints before syms.
    pub fn stable_cmp(self, other: Const, interner: &Interner) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self, other) {
            (Const::Int(a), Const::Int(b)) => a.cmp(&b),
            (Const::Int(_), Const::Sym(_)) => Ordering::Less,
            (Const::Sym(_), Const::Int(_)) => Ordering::Greater,
            (Const::Sym(a), Const::Sym(b)) => interner.resolve(a).cmp(interner.resolve(b)),
        }
    }
}

impl From<i64> for Const {
    fn from(n: i64) -> Self {
        Const::Int(n)
    }
}

impl From<Symbol> for Const {
    fn from(s: Symbol) -> Self {
        Const::Sym(s)
    }
}

/// Helper for rendering a [`Const`] with access to the interner.
pub struct ConstDisplay<'a> {
    c: Const,
    interner: &'a Interner,
}

impl fmt::Display for ConstDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.c {
            Const::Sym(s) => write!(f, "{}", self.interner.resolve(s)),
            Const::Int(n) => write!(f, "{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let mut i = Interner::new();
        let s = i.intern("x");
        assert_eq!(Const::Sym(s).as_sym(), Some(s));
        assert_eq!(Const::Sym(s).as_int(), None);
        assert_eq!(Const::Int(7).as_int(), Some(7));
        assert_eq!(Const::Int(7).as_sym(), None);
    }

    #[test]
    fn display_renders_via_interner() {
        let mut i = Interner::new();
        let s = i.intern("Person");
        assert_eq!(Const::Sym(s).display(&i).to_string(), "Person");
        assert_eq!(Const::Int(42).display(&i).to_string(), "42");
    }

    #[test]
    fn stable_cmp_orders_by_string() {
        let mut i = Interner::new();
        let z = i.intern("zebra");
        let a = i.intern("aard");
        assert_eq!(
            Const::Sym(a).stable_cmp(Const::Sym(z), &i),
            std::cmp::Ordering::Less
        );
        assert_eq!(
            Const::Int(1).stable_cmp(Const::Sym(a), &i),
            std::cmp::Ordering::Less
        );
    }
}
