//! Fact tuples.

use crate::symbol::Interner;
use crate::value::Const;
use std::fmt;

/// A ground fact tuple: a fixed-arity sequence of constants.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Tuple(Box<[Const]>);

impl Tuple {
    /// Build a tuple from constants.
    pub fn new(consts: impl Into<Box<[Const]>>) -> Self {
        Tuple(consts.into())
    }

    /// The tuple's arity.
    #[inline]
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Constant at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Const {
        self.0[i]
    }

    /// Recover the backing buffer (no copy; the allocation is reusable).
    pub fn into_vec(self) -> Vec<Const> {
        self.0.into_vec()
    }

    /// All constants as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Const] {
        &self.0
    }

    /// Iterate over the constants.
    pub fn iter(&self) -> impl Iterator<Item = Const> + '_ {
        self.0.iter().copied()
    }

    /// Render against an interner, e.g. `(tid4, fuelType, tid_string)`.
    pub fn display<'a>(&'a self, interner: &'a Interner) -> TupleDisplay<'a> {
        TupleDisplay { t: self, interner }
    }

    /// Project the tuple onto the given column positions.
    pub fn project(&self, cols: &[usize]) -> Tuple {
        Tuple(cols.iter().map(|&c| self.0[c]).collect())
    }
}

impl From<Vec<Const>> for Tuple {
    fn from(v: Vec<Const>) -> Self {
        Tuple(v.into_boxed_slice())
    }
}

impl<const N: usize> From<[Const; N]> for Tuple {
    fn from(v: [Const; N]) -> Self {
        Tuple(Box::new(v))
    }
}

/// Helper for rendering a [`Tuple`] with access to the interner.
pub struct TupleDisplay<'a> {
    t: &'a Tuple,
    interner: &'a Interner,
}

impl fmt::Display for TupleDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.t.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", c.display(self.interner))?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_get_slice() {
        let t = Tuple::from(vec![Const::Int(1), Const::Int(2)]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.get(1), Const::Int(2));
        assert_eq!(t.as_slice(), &[Const::Int(1), Const::Int(2)]);
    }

    #[test]
    fn project_selects_columns() {
        let t = Tuple::from(vec![Const::Int(10), Const::Int(20), Const::Int(30)]);
        assert_eq!(
            t.project(&[2, 0]),
            Tuple::from(vec![Const::Int(30), Const::Int(10)])
        );
    }

    #[test]
    fn display_is_parenthesised() {
        let mut i = Interner::new();
        let s = i.intern("tid4");
        let t = Tuple::from(vec![Const::Sym(s), Const::Int(1)]);
        assert_eq!(t.display(&i).to_string(), "(tid4, 1)");
    }

    #[test]
    fn tuples_compare_by_content() {
        let a = Tuple::from(vec![Const::Int(1)]);
        let b = Tuple::from(vec![Const::Int(1)]);
        assert_eq!(a, b);
    }
}
