//! Compilation of declarative constraints into violation rules.
//!
//! This is the paper's "compilation of consistency constraints" step (ref
//! [20]): every constraint of the normal form
//!
//! ```text
//! forall X̄ :  premise(X̄)  ->  conclusion(X̄)
//! ```
//!
//! is translated into stratified Datalog rules defining a *violation
//! predicate* `__viol_<name>(X̄)` whose extension is exactly the set of
//! witnesses falsifying the constraint. Sub-formulas with quantifier
//! alternation (nested `forall`/`exists`, disjunction, negation) become
//! auxiliary predicates guarded by a *context predicate* carrying the
//! bindings reaching that point — a guarded Lloyd–Topor transformation that
//! keeps every generated rule range-restricted.

use crate::ast::{Atom, CmpOp, Literal, Rule, Term, Var};
use crate::constraint::{Constraint, Formula};
use crate::db::Database;
use crate::error::{Error, Result};
use crate::plan::RulePlans;
use crate::pred::{PredId, PredKind};
use crate::stratify::{stratify, Stratification};
use crate::symbol::{FxHashMap, FxHashSet};

/// A fully compiled program: user rules plus constraint-generated rules,
/// stratified, with per-constraint metadata and precomputed join plans.
pub(crate) struct Compiled {
    /// All rules (user rules first, then constraint auxiliaries).
    pub rules: Vec<Rule>,
    /// Execution plans, parallel to `rules`: literal order, bound-column
    /// masks, and head templates resolved once, per semi-naive delta
    /// position (see [`crate::plan`]).
    pub plans: Vec<RulePlans>,
    /// Stratification of `rules`.
    pub strat: Stratification,
    /// Rule indices by head predicate.
    pub rules_by_head: FxHashMap<PredId, Vec<usize>>,
    /// Compiled constraints, parallel to `Database::constraints`.
    pub constraints: Vec<CompiledConstraint>,
    /// Every `(predicate, sorted bound columns)` an execution plan scans
    /// with; the evaluator builds these indexes up front so plan execution
    /// always hits ready buckets.
    pub index_masks: Vec<(PredId, Box<[usize]>)>,
}

/// Compiled form of one constraint.
#[derive(Clone, Debug)]
pub(crate) struct CompiledConstraint {
    /// Index into `Database::constraints`.
    pub source_idx: usize,
    /// The violation predicate; one fact per witness.
    pub viol: PredId,
    /// The context predicate holding premise bindings.
    #[allow(dead_code)]
    pub ctx: PredId,
    /// Outer universally quantified variables, in declaration order.
    pub outer_vars: Vec<Var>,
    /// Lowered premise literals (over `outer_vars` plus locals).
    pub premise: Vec<Literal>,
    /// Normalised conclusion (existentials pushed through disjunction).
    pub conclusion: Formula,
    /// Base predicates the violation predicate transitively depends on.
    pub deps: FxHashSet<PredId>,
}

/// A read-only view of the fully compiled program, for static analysis.
///
/// Exposes the complete rule set after constraint compilation (user rules
/// first, then the generated violation/auxiliary rules) together with each
/// constraint's violation predicate, so analyzers can measure properties of
/// the rules a constraint actually executes as.
pub struct ProgramView<'a> {
    /// All rules: indices `0..user_rule_count` are the user rules, the rest
    /// are constraint-generated.
    pub rules: &'a [Rule],
    /// Number of user rules at the front of `rules`.
    pub user_rule_count: usize,
    /// `(source constraint index, violation predicate)` per compiled
    /// constraint.
    pub constraint_viols: Vec<(usize, PredId)>,
}

/// The literal used for `false` in rule bodies: a comparison that never
/// holds.
pub(crate) fn false_lit() -> Literal {
    Literal::Cmp(
        CmpOp::Eq,
        Term::Const(crate::value::Const::Int(0)),
        Term::Const(crate::value::Const::Int(1)),
    )
}

/// Context: a guard predicate whose extension is the set of variable
/// bindings flowing into the sub-formula being compiled.
#[derive(Clone)]
struct Ctx {
    atom: Atom,
    vars: Vec<Var>,
}

struct Compiler<'a> {
    db: &'a mut Database,
    rules: &'a mut Vec<Rule>,
    cname: String,
    auxn: usize,
}

impl<'a> Compiler<'a> {
    fn bad(&self, msg: impl Into<String>) -> Error {
        Error::BadConstraint {
            name: self.cname.clone(),
            msg: msg.into(),
        }
    }

    fn declare_aux(&mut self, kind: &str, arity: usize) -> PredId {
        let name = format!("__{kind}{}_{}", self.auxn, self.cname);
        self.auxn += 1;
        self.db
            .declare_raw(&name, arity, PredKind::Derived)
            .expect("aux predicate names are unique")
    }

    /// Lower a premise formula to a flat literal list. Premises must be
    /// conjunctions of (possibly negated) atoms and comparisons;
    /// existentials flatten away.
    fn lower_premise(&self, f: &Formula) -> Result<Vec<Literal>> {
        let mut out = Vec::new();
        self.lower_premise_into(f, &mut out)?;
        Ok(out)
    }

    fn lower_premise_into(&self, f: &Formula, out: &mut Vec<Literal>) -> Result<()> {
        match f {
            Formula::True => Ok(()),
            Formula::Atom(a) => {
                out.push(Literal::Pos(a.clone()));
                Ok(())
            }
            Formula::Cmp(op, l, r) => {
                out.push(Literal::Cmp(*op, *l, *r));
                Ok(())
            }
            Formula::And(fs) => {
                for g in fs {
                    self.lower_premise_into(g, out)?;
                }
                Ok(())
            }
            Formula::Exists(_, g) => self.lower_premise_into(g, out),
            Formula::Not(g) => match g.as_ref() {
                Formula::Atom(a) => {
                    out.push(Literal::Neg(a.clone()));
                    Ok(())
                }
                Formula::Cmp(op, l, r) => {
                    out.push(Literal::Cmp(op.negate(), *l, *r));
                    Ok(())
                }
                _ => Err(self.bad("premise may negate only atoms and comparisons")),
            },
            _ => Err(self.bad(
                "premise must be a conjunction of literals (no disjunction or quantifier alternation)",
            )),
        }
    }

    /// Variables bound by the positive literals of a body.
    fn positives(lits: &[Literal]) -> FxHashSet<Var> {
        let mut s = FxHashSet::default();
        for lit in lits {
            if let Literal::Pos(a) = lit {
                s.extend(a.vars());
            }
        }
        s
    }

    fn sorted_vars(set: &FxHashSet<Var>) -> Vec<Var> {
        let mut v: Vec<Var> = set.iter().copied().collect();
        v.sort();
        v
    }

    fn terms(vars: &[Var]) -> Vec<Term> {
        vars.iter().copied().map(Term::Var).collect()
    }

    /// Can `f` be flattened directly into a rule body?
    fn is_inline(f: &Formula) -> bool {
        match f {
            Formula::True | Formula::False | Formula::Atom(_) | Formula::Cmp(..) => true,
            Formula::And(fs) => fs.iter().all(Self::is_inline),
            Formula::Exists(_, g) => Self::is_inline(g),
            _ => false,
        }
    }

    fn flatten_inline(f: &Formula, out: &mut Vec<Literal>) {
        match f {
            Formula::True => {}
            Formula::False => out.push(false_lit()),
            Formula::Atom(a) => out.push(Literal::Pos(a.clone())),
            Formula::Cmp(op, l, r) => out.push(Literal::Cmp(*op, *l, *r)),
            Formula::And(fs) => {
                for g in fs {
                    Self::flatten_inline(g, out);
                }
            }
            Formula::Exists(_, g) => Self::flatten_inline(g, out),
            _ => unreachable!("flatten_inline called on non-inline formula"),
        }
    }

    /// Compile `f` into literals that hold exactly when `f` is true under
    /// bindings supplied by `ctx`. May emit auxiliary predicates and rules.
    fn compile_holds(&mut self, f: &Formula, ctx: &Ctx) -> Result<Vec<Literal>> {
        if Self::is_inline(f) {
            let mut out = Vec::new();
            Self::flatten_inline(f, &mut out);
            return Ok(out);
        }
        match f {
            Formula::And(fs) => self.compile_and(fs, ctx),
            Formula::Or(fs) => self.compile_or(f, fs, ctx),
            Formula::Not(g) => self.compile_not(g, ctx),
            Formula::Implies(p, q) => {
                let rewritten = Formula::or(vec![Formula::Not(p.clone()), q.as_ref().clone()]);
                self.compile_holds(&rewritten, ctx)
            }
            Formula::Exists(_, g) => self.compile_holds(g, ctx),
            Formula::Forall(vs, inner) => self.compile_forall(f, vs, inner, ctx),
            _ => unreachable!("inline formulas handled above"),
        }
    }

    fn compile_and(&mut self, fs: &[Formula], ctx: &Ctx) -> Result<Vec<Literal>> {
        let mut inline = Vec::new();
        let mut complex: Vec<&Formula> = Vec::new();
        for g in fs {
            if Self::is_inline(g) {
                Self::flatten_inline(g, &mut inline);
            } else {
                complex.push(g);
            }
        }
        debug_assert!(!complex.is_empty(), "pure-inline And handled earlier");
        // Vars available to the complex conjuncts: the context plus everything
        // positively bound by the inline part.
        let mut bound: FxHashSet<Var> = ctx.vars.iter().copied().collect();
        bound.extend(Self::positives(&inline));
        let mut needed: FxHashSet<Var> = FxHashSet::default();
        for g in &complex {
            for v in g.free_vars() {
                if !bound.contains(&v) {
                    return Err(self.bad(format!(
                        "conclusion sub-formula references variable #{} not bound by any \
                         enclosing positive literal",
                        v.0
                    )));
                }
                needed.insert(v);
            }
        }
        let needs_ext = needed.iter().any(|v| !ctx.vars.contains(v));
        let ctx2 = if needs_ext {
            let mut ext = ctx.vars.clone();
            for v in Self::sorted_vars(&needed) {
                if !ext.contains(&v) {
                    ext.push(v);
                }
            }
            let p = self.declare_aux("ctx", ext.len());
            let atom = Atom::new(p, Self::terms(&ext));
            let mut body = vec![Literal::Pos(ctx.atom.clone())];
            body.extend(inline.iter().cloned());
            self.rules.push(Rule::new(atom.clone(), body));
            Ctx { atom, vars: ext }
        } else {
            ctx.clone()
        };
        let mut out = inline;
        for g in complex {
            out.extend(self.compile_holds(g, &ctx2)?);
        }
        Ok(out)
    }

    fn compile_or(&mut self, whole: &Formula, fs: &[Formula], ctx: &Ctx) -> Result<Vec<Literal>> {
        let free = whole.free_vars();
        for v in &free {
            if !ctx.vars.contains(v) {
                return Err(self.bad(format!(
                    "disjunction references variable #{} not carried by its context",
                    v.0
                )));
            }
        }
        let shared = Self::sorted_vars(&free);
        let p = self.declare_aux("or", shared.len());
        let head = Atom::new(p, Self::terms(&shared));
        for branch in fs {
            let lits = self.compile_holds(branch, ctx)?;
            let mut body = vec![Literal::Pos(ctx.atom.clone())];
            body.extend(lits);
            self.rules.push(Rule::new(head.clone(), body));
        }
        Ok(vec![Literal::Pos(head)])
    }

    fn compile_not(&mut self, g: &Formula, ctx: &Ctx) -> Result<Vec<Literal>> {
        // Simple case: negation of a single atom over context vars.
        if let Formula::Atom(a) = g {
            if a.vars().all(|v| ctx.vars.contains(&v)) {
                return Ok(vec![Literal::Neg(a.clone())]);
            }
        }
        if let Formula::Cmp(op, l, r) = g {
            return Ok(vec![Literal::Cmp(op.negate(), *l, *r)]);
        }
        let free = g.free_vars();
        for v in &free {
            if !ctx.vars.contains(v) {
                return Err(self.bad(format!(
                    "negated sub-formula references variable #{} not carried by its context",
                    v.0
                )));
            }
        }
        let shared = Self::sorted_vars(&free);
        let p = self.declare_aux("not", shared.len());
        let head = Atom::new(p, Self::terms(&shared));
        let lits = self.compile_holds(g, ctx)?;
        let mut body = vec![Literal::Pos(ctx.atom.clone())];
        body.extend(lits);
        self.rules.push(Rule::new(head.clone(), body));
        Ok(vec![Literal::Neg(head)])
    }

    fn compile_forall(
        &mut self,
        whole: &Formula,
        vs: &[Var],
        inner: &Formula,
        ctx: &Ctx,
    ) -> Result<Vec<Literal>> {
        let (p2, c2): (&Formula, Formula) = match inner {
            Formula::Implies(p, c) => (p.as_ref(), c.as_ref().clone()),
            Formula::Not(g) => (g.as_ref(), Formula::False),
            _ => {
                return Err(self
                    .bad("nested `forall` must have the form `forall vs: premise -> conclusion`"))
            }
        };
        let p2lits = self.lower_premise(p2)?;
        let bound = Self::positives(&p2lits);
        for v in vs {
            if !bound.contains(v) && !ctx.vars.contains(v) {
                return Err(self.bad(format!(
                    "nested `forall` variable #{} is not bound by its premise",
                    v.0
                )));
            }
        }
        let free = whole.free_vars();
        for v in &free {
            if !ctx.vars.contains(v) {
                return Err(self.bad(format!(
                    "nested `forall` references variable #{} not carried by its context",
                    v.0
                )));
            }
        }
        let shared = Self::sorted_vars(&free);
        // Extended context: outer vars plus the newly quantified ones.
        let mut ext = ctx.vars.clone();
        for &v in vs {
            if !ext.contains(&v) {
                ext.push(v);
            }
        }
        let ctx2_pred = self.declare_aux("ctx", ext.len());
        let ctx2_atom = Atom::new(ctx2_pred, Self::terms(&ext));
        let mut body = vec![Literal::Pos(ctx.atom.clone())];
        body.extend(p2lits);
        self.rules.push(Rule::new(ctx2_atom.clone(), body));
        let ctx2 = Ctx {
            atom: ctx2_atom.clone(),
            vars: ext.clone(),
        };

        let vio_pred = self.declare_aux("vio", shared.len());
        let vio_atom = Atom::new(vio_pred, Self::terms(&shared));
        if c2 == Formula::False {
            self.rules
                .push(Rule::new(vio_atom.clone(), vec![Literal::Pos(ctx2_atom)]));
        } else {
            let c2n = c2.push_exists();
            let inner_lits = self.compile_holds(&c2n, &ctx2)?;
            let h_pred = self.declare_aux("hold", ext.len());
            let h_atom = Atom::new(h_pred, Self::terms(&ext));
            let mut hbody = vec![Literal::Pos(ctx2_atom.clone())];
            hbody.extend(inner_lits);
            self.rules.push(Rule::new(h_atom.clone(), hbody));
            self.rules.push(Rule::new(
                vio_atom.clone(),
                vec![Literal::Pos(ctx2_atom), Literal::Neg(h_atom)],
            ));
        }
        Ok(vec![Literal::Neg(vio_atom)])
    }
}

/// Compile one constraint, appending rules and returning its metadata.
fn compile_constraint(
    db: &mut Database,
    rules: &mut Vec<Rule>,
    source_idx: usize,
    c: &Constraint,
) -> Result<CompiledConstraint> {
    let mut compiler = Compiler {
        db,
        rules,
        cname: c.name.clone(),
        auxn: 0,
    };
    // Strip leading universal quantifiers.
    let mut outer_vars: Vec<Var> = Vec::new();
    let mut f = c.formula.clone();
    while let Formula::Forall(vs, inner) = f {
        outer_vars.extend(vs);
        f = *inner;
    }
    let (premise_f, conclusion) = match f {
        Formula::Implies(p, q) => (*p, *q),
        Formula::Not(g) => (*g, Formula::False),
        other => {
            return Err(compiler.bad(format!(
                "constraint must be `forall vars: premise -> conclusion` or `forall vars: !phi`, \
                 got {other:?}"
            )))
        }
    };
    let premise = compiler.lower_premise(&premise_f)?;
    // Witness vars: outer vars actually used; all must be bound by the
    // premise's positive literals.
    let bound = Compiler::positives(&premise);
    let used: FxHashSet<Var> = {
        let mut s = premise_f.free_vars();
        s.extend(conclusion.free_vars());
        s
    };
    let outer_vars: Vec<Var> = outer_vars
        .into_iter()
        .filter(|v| used.contains(v))
        .collect();
    for v in &outer_vars {
        if !bound.contains(v) {
            return Err(compiler.bad(format!(
                "universally quantified variable `{}` is not bound by a positive premise literal \
                 (constraint is not range-restricted)",
                c.var_name(*v)
            )));
        }
    }

    let ctx_pred = compiler.declare_aux("ctx", outer_vars.len());
    let ctx_atom = Atom::new(ctx_pred, Compiler::terms(&outer_vars));
    compiler
        .rules
        .push(Rule::new(ctx_atom.clone(), premise.clone()));
    let ctx = Ctx {
        atom: ctx_atom.clone(),
        vars: outer_vars.clone(),
    };

    let conclusion = conclusion.push_exists();
    let viol_pred = compiler.declare_aux("viol", outer_vars.len());
    let viol_atom = Atom::new(viol_pred, Compiler::terms(&outer_vars));
    if conclusion == Formula::False {
        compiler
            .rules
            .push(Rule::new(viol_atom, vec![Literal::Pos(ctx_atom)]));
    } else {
        let c_lits = compiler.compile_holds(&conclusion, &ctx)?;
        let h_pred = compiler.declare_aux("hold", outer_vars.len());
        let h_atom = Atom::new(h_pred, Compiler::terms(&outer_vars));
        let mut hbody = vec![Literal::Pos(ctx_atom.clone())];
        hbody.extend(c_lits);
        compiler.rules.push(Rule::new(h_atom.clone(), hbody));
        compiler.rules.push(Rule::new(
            viol_atom,
            vec![Literal::Pos(ctx_atom), Literal::Neg(h_atom)],
        ));
    }

    Ok(CompiledConstraint {
        source_idx,
        viol: viol_pred,
        ctx: ctx_pred,
        outer_vars,
        premise,
        conclusion,
        deps: FxHashSet::default(), // filled in by `ensure_compiled`
    })
}

/// Base predicates reachable from `start` through the rule graph.
fn base_dependencies(
    db: &Database,
    start: PredId,
    rules: &[Rule],
    rules_by_head: &FxHashMap<PredId, Vec<usize>>,
) -> FxHashSet<PredId> {
    let mut out = FxHashSet::default();
    let mut seen = FxHashSet::default();
    let mut stack = vec![start];
    while let Some(p) = stack.pop() {
        if !seen.insert(p) {
            continue;
        }
        if db.pred_decl(p).is_base() {
            out.insert(p);
            continue;
        }
        if let Some(ixs) = rules_by_head.get(&p) {
            for &i in ixs {
                for lit in &rules[i].body {
                    match lit {
                        Literal::Pos(a) | Literal::Neg(a) => stack.push(a.pred),
                        Literal::Cmp(..) => {}
                    }
                }
            }
        }
    }
    out
}

impl Database {
    /// Declare without invalidating compiled state (compiler internal).
    pub(crate) fn declare_raw(
        &mut self,
        name: &str,
        arity: usize,
        kind: PredKind,
    ) -> Result<PredId> {
        let sym = self.interner.intern(name);
        if self.by_name.contains_key(&sym) {
            return Err(Error::PredicateRedeclared(name.to_string()));
        }
        let id = PredId(self.preds.len() as u32);
        self.preds.push(crate::pred::PredDecl {
            name: sym,
            arity,
            kind,
            key: None,
            cols: None,
        });
        self.rels.push(crate::relation::Relation::new());
        self.by_name.insert(sym, id);
        Ok(id)
    }

    /// Compile rules and constraints into a stratified program (idempotent).
    pub(crate) fn ensure_compiled(&mut self) -> Result<()> {
        if self.compiled.is_some() {
            return Ok(());
        }
        self.decompile();
        self.aux_start = Some(self.preds.len());
        let mut rules = self.rules.clone();
        let constraints = std::mem::take(&mut self.constraints);
        let mut ccs = Vec::new();
        let mut err = None;
        for (i, c) in constraints.iter().enumerate() {
            match compile_constraint(self, &mut rules, i, c) {
                Ok(cc) => ccs.push(cc),
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        self.constraints = constraints;
        if let Some(e) = err {
            self.decompile();
            return Err(e);
        }
        // Safety-validate generated rules (user rules were checked on entry).
        for r in &rules[self.rules.len()..] {
            if let Err(e) = self.validate_rule(r) {
                self.decompile();
                return Err(e);
            }
        }
        let strat = match stratify(self.preds.len(), &rules, |p| self.pred_name(p).to_string()) {
            Ok(s) => s,
            Err(e) => {
                self.decompile();
                return Err(e);
            }
        };
        let mut rules_by_head: FxHashMap<PredId, Vec<usize>> = FxHashMap::default();
        for (i, r) in rules.iter().enumerate() {
            rules_by_head.entry(r.head.pred).or_default().push(i);
        }
        for cc in &mut ccs {
            cc.deps = base_dependencies(self, cc.viol, &rules, &rules_by_head);
        }
        let plans: Vec<RulePlans> = rules.iter().map(RulePlans::compile).collect();
        let mut mask_set: FxHashSet<(PredId, Box<[usize]>)> = FxHashSet::default();
        // Masks probed only by round-0 full plans against a predicate of
        // the rule's own stratum: that relation is empty when the probe
        // runs (semi-naive round 0 starts the stratum from nothing), so an
        // eager index would be pure per-insert maintenance cost during the
        // fixpoint. Left unbuilt, the executor falls back to a filtered
        // scan — over the same empty relation. A mask also demanded by any
        // delta or derivability plan stays eager.
        let mut full_only: FxHashSet<(PredId, Box<[usize]>)> = FxHashSet::default();
        for (ri, rp) in plans.iter().enumerate() {
            let head_stratum = strat.pred_stratum[rules[ri].head.pred.index()];
            for (p, cols) in rp.full.masks() {
                if strat.pred_stratum[p.index()] == head_stratum {
                    full_only.insert((p, cols.into()));
                } else {
                    mask_set.insert((p, cols.into()));
                }
            }
            for plan in rp
                .deltas
                .iter()
                .map(|(_, p)| p)
                .chain(rp.neg_deltas.iter().map(|(_, p)| p))
                .chain(std::iter::once(&rp.derivable))
            {
                for (p, cols) in plan.masks() {
                    mask_set.insert((p, cols.into()));
                }
            }
        }
        let mut index_masks: Vec<(PredId, Box<[usize]>)> = mask_set.into_iter().collect();
        index_masks.sort();
        self.compiled = Some(Compiled {
            rules,
            plans,
            strat,
            rules_by_head,
            constraints: ccs,
            index_masks,
        });
        Ok(())
    }

    /// Compile (if needed) and expose the full rule program for static
    /// analysis. Fails when the program does not compile (bad constraint,
    /// unsafe generated rule, or unstratifiable negation).
    pub fn program_view(&mut self) -> Result<ProgramView<'_>> {
        self.ensure_compiled()?;
        let user_rule_count = self.rules.len();
        let c = self.compiled.as_ref().expect("just compiled");
        Ok(ProgramView {
            rules: &c.rules,
            user_rule_count,
            constraint_viols: c
                .constraints
                .iter()
                .map(|cc| (cc.source_idx, cc.viol))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {

    use crate::db::Database;
    use crate::error::Error;
    use crate::value::Const;

    fn db_with(text: &str) -> Database {
        let mut db = Database::new();
        db.load(text).expect("program parses");
        db
    }

    #[test]
    fn or_in_conclusion_compiles_to_branch_rules() {
        let mut db = db_with(
            "base P(x). base A(x). base B(x).
             constraint c: forall X: P(X) -> A(X) | B(X).",
        );
        let p = db.pred_id("P").unwrap();
        let a = db.pred_id("A").unwrap();
        let one = db.constant("one");
        db.insert(p, vec![one]).unwrap();
        assert_eq!(db.check().unwrap().len(), 1);
        db.insert(a, vec![one]).unwrap();
        assert!(db.check().unwrap().is_empty());
    }

    #[test]
    fn nested_forall_with_existential_conclusion() {
        // the contravariance pattern: forall outer, nested forall whose
        // conclusion has its own existential
        let mut db = db_with(
            "base Rel(d1, d2).
             base Arg(d, n, t).
             constraint arity_both_ways:
               forall D1, D2: Rel(D2, D1) ->
                 (forall N, T1: Arg(D1, N, T1) -> exists T2: Arg(D2, N, T2))
                 & (forall N2, T2b: Arg(D2, N2, T2b) -> exists T1b: Arg(D1, N2, T1b)).",
        );
        let rel = db.pred_id("Rel").unwrap();
        let arg = db.pred_id("Arg").unwrap();
        let (d1, d2, t) = (db.constant("d1"), db.constant("d2"), db.constant("t"));
        db.insert(rel, vec![d2, d1]).unwrap();
        assert!(db.check().unwrap().is_empty()); // zero args on both sides
        db.insert(arg, vec![d1, Const::Int(1), t]).unwrap();
        assert_eq!(db.check().unwrap().len(), 1); // d2 lacks arg 1
        db.insert(arg, vec![d2, Const::Int(1), t]).unwrap();
        assert!(db.check().unwrap().is_empty());
        db.insert(arg, vec![d2, Const::Int(2), t]).unwrap();
        assert_eq!(db.check().unwrap().len(), 1); // d1 lacks arg 2
    }

    #[test]
    fn conjunction_with_shared_existential_in_conclusion() {
        // the (*) pattern: exists CA: Slot(C, A, CA) & PhRep(CA, TA)
        let mut db = db_with(
            "base AttrB(t, a, ta). base Rep(c, t). base Sl(c, a, ca).
             constraint star:
               forall T, A, TA, C: AttrB(T, A, TA) & Rep(C, T)
                 -> exists CA: Sl(C, A, CA) & Rep(CA, TA).",
        );
        let attr = db.pred_id("AttrB").unwrap();
        let rep = db.pred_id("Rep").unwrap();
        let sl = db.pred_id("Sl").unwrap();
        let (t, a, ta, c, ca) = (
            db.constant("t"),
            db.constant("a"),
            db.constant("ta"),
            db.constant("c"),
            db.constant("ca"),
        );
        db.insert(attr, vec![t, a, ta]).unwrap();
        db.insert(rep, vec![c, t]).unwrap();
        assert_eq!(db.check().unwrap().len(), 1);
        // a slot whose value has no representation does NOT satisfy it
        db.insert(sl, vec![c, a, ca]).unwrap();
        assert_eq!(db.check().unwrap().len(), 1);
        db.insert(rep, vec![ca, ta]).unwrap();
        assert!(db.check().unwrap().is_empty());
    }

    #[test]
    fn unused_quantified_vars_are_dropped() {
        let mut db = db_with(
            "base P(x).
             constraint c: forall X, Unused: P(X) -> X = X.",
        );
        let p = db.pred_id("P").unwrap();
        db.insert(p, vec![Const::Int(1)]).unwrap();
        assert!(db.check().unwrap().is_empty());
    }

    #[test]
    fn conclusion_only_universal_var_is_rejected() {
        // forall X, Y: P(X) -> Q(X, Y)  — Y unbound by the premise
        let mut db = db_with(
            "base P(x). base Q(x, y).
             constraint bad: forall X, Y: P(X) -> Q(X, Y).",
        );
        let err = db.check().unwrap_err();
        assert!(matches!(err, Error::BadConstraint { .. }), "{err:?}");
    }

    #[test]
    fn premise_with_disjunction_is_rejected() {
        let mut db = db_with(
            "base P(x). base Q(x).
             constraint bad: forall X: P(X) | Q(X) -> P(X).",
        );
        // `|` binds tighter than `->`, so the premise is a disjunction.
        let err = db.check().unwrap_err();
        assert!(matches!(err, Error::BadConstraint { .. }), "{err:?}");
    }

    #[test]
    fn bare_atom_constraint_is_rejected() {
        let mut db = db_with(
            "base P(x).
             constraint bad: forall X: P(X).",
        );
        let err = db.check().unwrap_err();
        assert!(matches!(err, Error::BadConstraint { .. }), "{err:?}");
    }

    #[test]
    fn negated_premise_literal_supported() {
        let mut db = db_with(
            "base P(x). base Q(x). base R(x).
             constraint c: forall X: P(X) & !Q(X) -> R(X).",
        );
        let p = db.pred_id("P").unwrap();
        let q = db.pred_id("Q").unwrap();
        let r = db.pred_id("R").unwrap();
        let one = Const::Int(1);
        db.insert(p, vec![one]).unwrap();
        assert_eq!(db.check().unwrap().len(), 1);
        // satisfy by making the premise false…
        db.insert(q, vec![one]).unwrap();
        assert!(db.check().unwrap().is_empty());
        db.remove(q, &crate::tuple::Tuple::from(vec![one])).unwrap();
        // …or the conclusion true
        db.insert(r, vec![one]).unwrap();
        assert!(db.check().unwrap().is_empty());
    }

    #[test]
    fn implication_inside_conclusion_rewrites_to_or() {
        let mut db = db_with(
            "base P(x). base A(x). base B(x).
             constraint c: forall X: P(X) -> (A(X) -> B(X)).",
        );
        let p = db.pred_id("P").unwrap();
        let a = db.pred_id("A").unwrap();
        let b = db.pred_id("B").unwrap();
        let one = Const::Int(1);
        db.insert(p, vec![one]).unwrap();
        assert!(db.check().unwrap().is_empty()); // A(1) false → implication true
        db.insert(a, vec![one]).unwrap();
        assert_eq!(db.check().unwrap().len(), 1);
        db.insert(b, vec![one]).unwrap();
        assert!(db.check().unwrap().is_empty());
    }

    #[test]
    fn aux_predicates_are_cleaned_up_on_decompile() {
        let mut db = db_with(
            "base P(x).
             constraint c: forall X: P(X) -> exists Y: P(Y).",
        );
        let before = db.pred_count();
        db.check().unwrap();
        let during = db.pred_count();
        assert!(during > before, "compilation added aux predicates");
        // a definition change drops the auxiliaries
        db.load("base Q(x).").unwrap();
        assert_eq!(db.pred_count(), before + 1);
        // and re-checking re-creates them without leaking
        db.check().unwrap();
        let after_first = db.pred_count();
        db.load("base R(x).").unwrap();
        db.check().unwrap();
        assert_eq!(db.pred_count(), after_first + 1);
    }
}
