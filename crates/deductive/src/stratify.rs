//! Stratification of rule sets with negation.
//!
//! Assigns each predicate a stratum such that positive dependencies stay
//! within or below a stratum and negative dependencies come strictly from
//! below. Programs with negation inside a recursive cycle are rejected.

use crate::ast::{Literal, Rule};
use crate::error::{Error, Result};
use crate::pred::PredId;

/// Result of stratification.
#[derive(Debug)]
pub struct Stratification {
    /// Stratum per predicate (indexed by `PredId`); base predicates are
    /// stratum 0.
    pub pred_stratum: Vec<usize>,
    /// Rule indices grouped by stratum, ascending.
    pub rule_strata: Vec<Vec<usize>>,
}

/// Compute a stratification for `rules` over `pred_count` predicates.
///
/// Uses the classic fixpoint formulation: `s(h) ≥ s(b)` for positive body
/// atoms, `s(h) ≥ s(b) + 1` for negative ones; failure to converge within
/// `pred_count` rounds means a predicate depends negatively on itself.
pub fn stratify(
    pred_count: usize,
    rules: &[Rule],
    pred_name: impl Fn(PredId) -> String,
) -> Result<Stratification> {
    let mut stratum = vec![0usize; pred_count];
    let max_rounds = pred_count + 1;
    for round in 0..=max_rounds {
        let mut changed = false;
        for rule in rules {
            let h = rule.head.pred.index();
            for lit in &rule.body {
                match lit {
                    Literal::Pos(a) => {
                        let need = stratum[a.pred.index()];
                        if stratum[h] < need {
                            stratum[h] = need;
                            changed = true;
                        }
                    }
                    Literal::Neg(a) => {
                        let need = stratum[a.pred.index()] + 1;
                        if stratum[h] < need {
                            stratum[h] = need;
                            changed = true;
                        }
                    }
                    Literal::Cmp(..) => {}
                }
            }
        }
        if !changed {
            break;
        }
        if round == max_rounds {
            // Find a witness: some predicate pushed beyond any possible level.
            let worst = (0..pred_count)
                .max_by_key(|&p| stratum[p])
                .expect("pred_count > 0 when rules exist");
            return Err(Error::NotStratifiable(pred_name(PredId(worst as u32))));
        }
    }
    let max_stratum = stratum.iter().copied().max().unwrap_or(0);
    let mut rule_strata: Vec<Vec<usize>> = vec![Vec::new(); max_stratum + 1];
    for (i, rule) in rules.iter().enumerate() {
        rule_strata[stratum[rule.head.pred.index()]].push(i);
    }
    Ok(Stratification {
        pred_stratum: stratum,
        rule_strata,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Term, Var};

    fn atom(p: u32, vars: &[u32]) -> Atom {
        Atom::new(PredId(p), vars.iter().map(|&v| Term::Var(Var(v))).collect())
    }

    #[test]
    fn positive_recursion_stays_in_one_stratum() {
        // 1 = edge (base), 2 = path: path :- edge; path :- edge, path.
        let rules = vec![
            Rule::new(atom(2, &[0, 1]), vec![Literal::Pos(atom(1, &[0, 1]))]),
            Rule::new(
                atom(2, &[0, 2]),
                vec![
                    Literal::Pos(atom(1, &[0, 1])),
                    Literal::Pos(atom(2, &[1, 2])),
                ],
            ),
        ];
        let s = stratify(3, &rules, |p| format!("p{}", p.index())).unwrap();
        assert_eq!(s.pred_stratum[2], 0);
        assert_eq!(s.rule_strata.len(), 1);
    }

    #[test]
    fn negation_pushes_to_higher_stratum() {
        // 2 = unreachable(X) :- node(X), not path(X).
        let rules = vec![
            Rule::new(atom(1, &[0]), vec![Literal::Pos(atom(0, &[0]))]),
            Rule::new(
                atom(2, &[0]),
                vec![Literal::Pos(atom(0, &[0])), Literal::Neg(atom(1, &[0]))],
            ),
        ];
        let s = stratify(3, &rules, |p| format!("p{}", p.index())).unwrap();
        assert!(s.pred_stratum[2] > s.pred_stratum[1]);
        assert_eq!(s.rule_strata.len(), 2);
    }

    #[test]
    fn negative_cycle_is_rejected() {
        // p :- not q. q :- not p.
        let rules = vec![
            Rule::new(
                atom(1, &[0]),
                vec![Literal::Pos(atom(0, &[0])), Literal::Neg(atom(2, &[0]))],
            ),
            Rule::new(
                atom(2, &[0]),
                vec![Literal::Pos(atom(0, &[0])), Literal::Neg(atom(1, &[0]))],
            ),
        ];
        assert!(stratify(3, &rules, |p| format!("p{}", p.index())).is_err());
    }

    #[test]
    fn empty_program_is_fine() {
        let s = stratify(0, &[], |_| String::new()).unwrap();
        assert!(s.rule_strata.len() <= 1);
    }
}
