//! The deductive database: predicate registry, extensional store, rules,
//! constraints, and the evolution-session journal.

use crate::ast::Rule;
use crate::changes::{ChangeSet, Op};
use crate::constraint::Constraint;
use crate::error::{Error, Result};
use crate::pred::{PredDecl, PredId, PredKind};
use crate::relation::Relation;
use crate::symbol::{FxHashMap, Interner, Symbol};
use crate::tuple::Tuple;
use crate::value::Const;

/// Source metadata for a rule or constraint: where (and in which `load`
/// call) it was defined. API-built items have no position and source 0.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SourceInfo {
    /// 1-based line/column of the defining statement, when parsed from text.
    pub pos: Option<(usize, usize)>,
    /// Which `load()` call produced the item (0 = built via the API).
    pub src: u32,
    /// Surface variable names indexed by [`crate::ast::Var`] number
    /// (rules only; empty when unknown).
    pub var_names: Vec<String>,
}

/// A deductive database.
///
/// Holds the predicate registry, the extensions of all base predicates, the
/// rule set (IDB definitions), and the declarative constraints (CDB). The
/// The crate-internal modules `compile`, `eval`, `check` and `repair`
/// extend this type with consistency checking and repair
/// generation.
#[derive(Default)]
pub struct Database {
    pub(crate) interner: Interner,
    pub(crate) preds: Vec<PredDecl>,
    pub(crate) by_name: FxHashMap<Symbol, PredId>,
    pub(crate) rels: Vec<Relation>,
    pub(crate) rules: Vec<Rule>,
    pub(crate) constraints: Vec<Constraint>,
    /// Parallel to `rules`.
    pub(crate) rule_info: Vec<SourceInfo>,
    /// Parallel to `constraints`.
    pub(crate) constraint_info: Vec<SourceInfo>,
    /// Monotonic counter of `load()` calls, for attributing items to
    /// source documents.
    pub(crate) load_seq: u32,
    /// Index into `preds` where compiler-generated auxiliary predicates
    /// start; `None` when not compiled.
    pub(crate) aux_start: Option<usize>,
    pub(crate) compiled: Option<crate::compile::Compiled>,
    pub(crate) idb: Option<crate::eval::Idb>,
    /// The last invalidated IDB, kept as spare capacity: the next
    /// evaluation recycles its relations (slot arrays, index maps, tuple
    /// buffers) instead of allocating from scratch.
    pub(crate) spare_idb: Option<crate::eval::Idb>,
    /// Final relation sizes of the last materialised IDB, used to pre-size
    /// row storage and membership tables on re-evaluation: after an
    /// invalidation the fixpoint usually converges to a similar extension,
    /// so sizing up front removes all incremental growth and rehashing
    /// from the hot insert path.
    pub(crate) idb_size_hints: Vec<usize>,
    journal: Option<Vec<Op>>,
    /// Armed maintained materialisation: when `Some`, every base-fact
    /// insert/remove feeds its delta through DRed so derived predicates —
    /// including constraint violation relations — stay correct at all
    /// times (see `incr.rs`). Discarded on definition change, session
    /// rollback, or any maintenance irregularity; never cloned into
    /// snapshots.
    pub(crate) maintained: Option<crate::incr::Materialized>,
    /// Worker threads for fixpoint evaluation and constraint checking.
    /// `0` = unset: consult `GOM_EVAL_THREADS`, defaulting to 1 (the
    /// reproducible single-threaded configuration).
    eval_threads: usize,
    /// Test hook: when set, evaluation workers panic, exercising the
    /// panic-containment path ([`Error::EvalPanic`]).
    eval_failpoint: bool,
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    // ----- interning ------------------------------------------------------

    /// Intern a string.
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.interner.intern(s)
    }

    /// Look up an interned string.
    pub fn sym(&self, s: &str) -> Option<Symbol> {
        self.interner.get(s)
    }

    /// Resolve a symbol.
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// Intern a string and wrap it as a constant.
    pub fn constant(&mut self, s: &str) -> Const {
        Const::Sym(self.interner.intern(s))
    }

    /// Access the interner (for rendering).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Mutable access to the interner (for fresh-symbol generation).
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    // ----- predicate registry ---------------------------------------------

    fn declare(
        &mut self,
        name: &str,
        arity: usize,
        kind: PredKind,
        key: Option<Box<[usize]>>,
    ) -> Result<PredId> {
        self.decompile();
        let sym = self.interner.intern(name);
        if let Some(&existing) = self.by_name.get(&sym) {
            let d = &self.preds[existing.index()];
            if d.arity == arity && d.kind == kind {
                return Ok(existing);
            }
            return Err(Error::PredicateRedeclared(name.to_string()));
        }
        let id = PredId(self.preds.len() as u32);
        self.preds.push(PredDecl {
            name: sym,
            arity,
            kind,
            key,
            cols: None,
        });
        self.rels.push(Relation::new());
        self.by_name.insert(sym, id);
        Ok(id)
    }

    /// Declare a base (extensional) predicate. Idempotent for identical
    /// shape.
    pub fn declare_base(&mut self, name: &str, arity: usize) -> Result<PredId> {
        self.declare(name, arity, PredKind::Base, None)
    }

    /// Declare a base predicate with a key over the given column positions.
    pub fn declare_base_keyed(
        &mut self,
        name: &str,
        arity: usize,
        key: &[usize],
    ) -> Result<PredId> {
        let id = self.declare(name, arity, PredKind::Base, Some(key.into()))?;
        self.preds[id.index()].key = Some(key.into());
        Ok(id)
    }

    /// Declare a derived (intentional) predicate.
    pub fn declare_derived(&mut self, name: &str, arity: usize) -> Result<PredId> {
        self.declare(name, arity, PredKind::Derived, None)
    }

    /// Set human-readable column names for a predicate.
    pub fn set_cols(&mut self, pred: PredId, cols: &[&str]) {
        self.preds[pred.index()].cols = Some(cols.iter().map(|s| s.to_string()).collect());
    }

    /// Look up a predicate by name.
    pub fn pred_id(&self, name: &str) -> Option<PredId> {
        self.interner
            .get(name)
            .and_then(|s| self.by_name.get(&s).copied())
    }

    /// Look up a predicate by name, erroring when missing.
    pub fn pred_id_req(&self, name: &str) -> Result<PredId> {
        self.pred_id(name)
            .ok_or_else(|| Error::UnknownPredicate(name.to_string()))
    }

    /// Predicate name.
    pub fn pred_name(&self, pred: PredId) -> &str {
        self.interner.resolve(self.preds[pred.index()].name)
    }

    /// Predicate declaration.
    pub fn pred_decl(&self, pred: PredId) -> &PredDecl {
        &self.preds[pred.index()]
    }

    /// Number of declared predicates (including compiler auxiliaries when
    /// compiled).
    pub fn pred_count(&self) -> usize {
        self.preds.len()
    }

    /// Iterate over all declared predicates (including compiler auxiliaries
    /// when compiled; those have names starting with `__`).
    pub fn pred_ids(&self) -> impl Iterator<Item = PredId> + '_ {
        (0..self.preds.len()).map(|i| PredId(i as u32))
    }

    /// Iterate over all base predicates.
    pub fn base_preds(&self) -> impl Iterator<Item = PredId> + '_ {
        self.preds
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_base())
            .map(|(i, _)| PredId(i as u32))
    }

    // ----- facts -----------------------------------------------------------

    fn check_base_use(&self, pred: PredId, tuple: &Tuple) -> Result<()> {
        let d = &self.preds[pred.index()];
        if d.kind != PredKind::Base {
            return Err(Error::MutatingDerived(self.pred_name(pred).to_string()));
        }
        if d.arity != tuple.arity() {
            return Err(Error::ArityMismatch {
                pred: self.pred_name(pred).to_string(),
                declared: d.arity,
                used: tuple.arity(),
            });
        }
        Ok(())
    }

    /// Insert a fact into a base predicate. Returns `true` when new.
    pub fn insert(&mut self, pred: PredId, tuple: impl Into<Tuple>) -> Result<bool> {
        let tuple = tuple.into();
        self.check_base_use(pred, &tuple)?;
        let added = self.rels[pred.index()].insert(tuple.clone());
        if added {
            self.retire_idb();
            if self.maintained.is_some() {
                if let Some(j) = &mut self.journal {
                    j.push(Op::Insert(pred, tuple.clone()));
                }
                self.maintain_change(pred, tuple, true);
            } else if let Some(j) = &mut self.journal {
                j.push(Op::Insert(pred, tuple));
            }
        }
        Ok(added)
    }

    /// Remove a fact from a base predicate. Returns `true` when present.
    pub fn remove(&mut self, pred: PredId, tuple: &Tuple) -> Result<bool> {
        self.check_base_use(pred, tuple)?;
        let removed = self.rels[pred.index()].remove(tuple);
        if removed {
            self.retire_idb();
            if let Some(j) = &mut self.journal {
                j.push(Op::Delete(pred, tuple.clone()));
            }
            if self.maintained.is_some() {
                self.maintain_change(pred, tuple.clone(), false);
            }
        }
        Ok(removed)
    }

    /// Remove every fact of `pred` whose columns match all `(column, value)`
    /// pairs in `bound`. Returns the number of facts removed. Each removal is
    /// journalled exactly like [`Database::remove`].
    pub fn remove_matching(&mut self, pred: PredId, bound: &[(usize, Const)]) -> Result<usize> {
        let hits: Vec<Tuple> = self.relation(pred).select(bound).cloned().collect();
        let mut n = 0;
        for t in hits {
            if self.remove(pred, &t)? {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Membership test on a base predicate's stored extension.
    pub fn contains(&self, pred: PredId, tuple: &Tuple) -> bool {
        self.rels[pred.index()].contains(tuple)
    }

    /// The stored extension of a base predicate.
    pub fn relation(&self, pred: PredId) -> &Relation {
        &self.rels[pred.index()]
    }

    /// Sorted facts of a base predicate (deterministic dumps).
    pub fn facts_sorted(&self, pred: PredId) -> Vec<Tuple> {
        self.rels[pred.index()].sorted()
    }

    /// Apply a change set; returns the *effective* changes (ops that actually
    /// altered the store).
    pub fn apply(&mut self, changes: &ChangeSet) -> Result<ChangeSet> {
        let mut effective = ChangeSet::new();
        for op in &changes.ops {
            match op {
                Op::Insert(p, t) => {
                    if self.insert(*p, t.clone())? {
                        effective.insert(*p, t.clone());
                    }
                }
                Op::Delete(p, t) => {
                    if self.remove(*p, t)? {
                        effective.delete(*p, t.clone());
                    }
                }
            }
        }
        Ok(effective)
    }

    // ----- rules & constraints ---------------------------------------------

    /// Add a rule after validating arities, head kind, and range
    /// restriction.
    pub fn add_rule(&mut self, rule: Rule) -> Result<()> {
        self.decompile();
        self.validate_rule(&rule)?;
        self.rules.push(rule);
        self.rule_info.push(SourceInfo {
            src: self.load_seq,
            ..SourceInfo::default()
        });
        Ok(())
    }

    pub(crate) fn validate_rule(&self, rule: &Rule) -> Result<()> {
        let head_decl = &self.preds[rule.head.pred.index()];
        if head_decl.kind != PredKind::Derived {
            return Err(Error::HeadIsBase(
                self.pred_name(rule.head.pred).to_string(),
            ));
        }
        let check_atom = |a: &crate::ast::Atom| -> Result<()> {
            let d = &self.preds[a.pred.index()];
            if d.arity != a.args.len() {
                return Err(Error::ArityMismatch {
                    pred: self.pred_name(a.pred).to_string(),
                    declared: d.arity,
                    used: a.args.len(),
                });
            }
            Ok(())
        };
        check_atom(&rule.head)?;
        for lit in &rule.body {
            match lit {
                crate::ast::Literal::Pos(a) | crate::ast::Literal::Neg(a) => check_atom(a)?,
                crate::ast::Literal::Cmp(..) => {}
            }
        }
        if let Err(v) = rule.check_safety() {
            return Err(Error::UnsafeRule {
                rule: format!("{}(..) :- ...", self.pred_name(rule.head.pred)),
                var: format!("#{}", v.0),
            });
        }
        Ok(())
    }

    /// Add a declarative constraint. Compilation (and thus full validation)
    /// happens lazily at the next check.
    pub fn add_constraint(&mut self, c: Constraint) {
        self.decompile();
        self.constraints.push(c);
        self.constraint_info.push(SourceInfo {
            src: self.load_seq,
            ..SourceInfo::default()
        });
    }

    /// Remove a constraint by name. Returns `true` if one was removed.
    ///
    /// This is the "changing the definition of consistency" operation of
    /// paper §2.1: project-specific policies (e.g. forbidding multiple
    /// inheritance) are added or dropped without touching any module code.
    pub fn remove_constraint(&mut self, name: &str) -> bool {
        let before = self.constraints.len();
        let keep: Vec<bool> = self.constraints.iter().map(|c| c.name != name).collect();
        let mut it = keep.iter();
        self.constraints.retain(|_| *it.next().unwrap());
        let mut it = keep.iter();
        self.constraint_info.retain(|_| *it.next().unwrap());
        if self.constraints.len() != before {
            self.decompile();
            true
        } else {
            false
        }
    }

    /// The rules currently defined (user rules only, not compiler
    /// auxiliaries).
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The constraints currently defined.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Look up a constraint by name.
    pub fn constraint(&self, name: &str) -> Option<&Constraint> {
        self.constraints.iter().find(|c| c.name == name)
    }

    // ----- source metadata ---------------------------------------------------

    /// Source metadata for rule `i` (parallel to [`Self::rules`]).
    pub fn rule_info(&self, i: usize) -> &SourceInfo {
        &self.rule_info[i]
    }

    /// Source metadata for constraint `i` (parallel to
    /// [`Self::constraints`]).
    pub fn constraint_info(&self, i: usize) -> &SourceInfo {
        &self.constraint_info[i]
    }

    /// The sequence number of the most recent `load()` call (0 before any
    /// load). Items whose [`SourceInfo::src`] equals this value came from
    /// that document.
    pub fn load_seq(&self) -> u32 {
        self.load_seq
    }

    pub(crate) fn bump_load_seq(&mut self) {
        self.load_seq += 1;
    }

    pub(crate) fn set_last_rule_info(&mut self, pos: (usize, usize), var_names: Vec<String>) {
        if let Some(info) = self.rule_info.last_mut() {
            info.pos = Some(pos);
            info.var_names = var_names;
        }
    }

    pub(crate) fn set_last_constraint_info(&mut self, pos: (usize, usize)) {
        if let Some(info) = self.constraint_info.last_mut() {
            info.pos = Some(pos);
        }
    }

    // ----- compilation state -----------------------------------------------

    /// Drop compiler-generated auxiliary predicates and cached state. Called
    /// automatically by every definition-level mutation.
    pub(crate) fn decompile(&mut self) {
        self.retire_idb();
        self.compiled = None;
        // A maintained materialisation is only meaningful for the program
        // it was built against.
        self.maintained = None;
        if let Some(n) = self.aux_start.take() {
            for d in self.preds.drain(n..) {
                self.by_name.remove(&d.name);
            }
            self.rels.truncate(n);
        }
    }

    // ----- evolution sessions ----------------------------------------------

    /// Begin an evolution session (the paper's BES). All subsequent fact
    /// changes are journalled and can be rolled back.
    pub fn begin_session(&mut self) -> Result<()> {
        if self.journal.is_some() {
            return Err(Error::SessionProtocol("session already active".into()));
        }
        self.journal = Some(Vec::new());
        Ok(())
    }

    /// True while a session is active.
    pub fn in_session(&self) -> bool {
        self.journal.is_some()
    }

    /// The net changes journalled so far in the active session.
    pub fn session_delta(&self) -> Result<ChangeSet> {
        match &self.journal {
            Some(j) => Ok(ChangeSet { ops: j.clone() }),
            None => Err(Error::SessionProtocol("no active session".into())),
        }
    }

    /// Commit the session (the paper's successful EES), returning the
    /// session's effective change set.
    pub fn commit_session(&mut self) -> Result<ChangeSet> {
        match self.journal.take() {
            Some(j) => Ok(ChangeSet { ops: j }),
            None => Err(Error::SessionProtocol("no active session".into())),
        }
    }

    /// Roll back the session: undo all journalled changes in reverse order.
    pub fn rollback_session(&mut self) -> Result<()> {
        let journal = self
            .journal
            .take()
            .ok_or_else(|| Error::SessionProtocol("no active session".into()))?;
        // The inverse ops below go straight to the relations (no
        // journalling, no re-maintenance); the maintained state cannot
        // follow and is discarded — the next session begin re-arms it.
        self.maintained = None;
        for op in journal.iter().rev() {
            match op.inverse() {
                Op::Insert(p, t) => {
                    self.rels[p.index()].insert(t);
                }
                Op::Delete(p, t) => {
                    self.rels[p.index()].remove(&t);
                }
            }
        }
        self.retire_idb();
        Ok(())
    }

    /// Number of worker threads used within an evaluation stratum and for
    /// constraint checks. Resolution order: [`Database::set_eval_threads`],
    /// then the `GOM_EVAL_THREADS` environment variable, then 1. Results
    /// are identical for every thread count (sorted round merges).
    pub fn eval_threads(&self) -> usize {
        if self.eval_threads > 0 {
            return self.eval_threads;
        }
        match std::env::var("GOM_EVAL_THREADS") {
            Ok(v) => match v.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => {
                    // Reject 0 and garbage loudly (once), then fall back to
                    // the reproducible single-threaded configuration.
                    static WARNED: std::sync::Once = std::sync::Once::new();
                    WARNED.call_once(|| {
                        eprintln!(
                            "warning: ignoring invalid GOM_EVAL_THREADS value `{v}` \
                             (expected an integer >= 1); using 1 thread"
                        );
                    });
                    1
                }
            },
            Err(_) => 1,
        }
    }

    /// Test hook: make the next evaluation's workers panic (contained as
    /// [`Error::EvalPanic`]). Not part of the public API surface.
    #[doc(hidden)]
    pub fn set_eval_failpoint(&mut self, on: bool) {
        self.eval_failpoint = on;
    }

    /// Is the evaluation failpoint armed? (Checked by the fixpoint workers.)
    pub(crate) fn eval_failpoint(&self) -> bool {
        self.eval_failpoint
    }

    /// Set the worker-thread count (clamped to at least 1), overriding
    /// `GOM_EVAL_THREADS`.
    pub fn set_eval_threads(&mut self, n: usize) {
        self.eval_threads = n.max(1);
    }

    /// Build every base-predicate index the compiled plans scan with; the
    /// indexes are maintained in place by subsequent `insert`/`remove`.
    /// No-op when not compiled.
    pub(crate) fn ensure_base_indexes(&mut self) {
        // Databases rehydrated from a CoW snapshot share start with stale
        // membership tables; evaluation probes them on every negation
        // check, so sync eagerly rather than scan-fallback per probe.
        for r in &mut self.rels {
            r.ensure_table();
        }
        let Some(compiled) = self.compiled.take() else {
            return;
        };
        for (p, cols) in &compiled.index_masks {
            if self.preds[p.index()].is_base() {
                self.rels[p.index()].ensure_index(cols);
            }
        }
        self.compiled = Some(compiled);
    }

    /// Make a database rehydrated from a [`Database::snapshot_clone`]
    /// share fully probe-ready: membership tables and the interner lookup
    /// map are rebuilt now (one pass, no tuple or string copies) instead
    /// of lazily on first use. Reader connections call this once per
    /// epoch refresh so interactive queries never hit a scan fallback.
    pub fn prepare_reader(&mut self) {
        for r in &mut self.rels {
            r.ensure_table();
        }
        self.interner.ensure_lookup();
    }

    /// Drop the cached IDB materialisation so the next check/evaluation
    /// starts cold. Benchmarks use this to measure steady-state cost;
    /// normal code never needs it (fact mutations invalidate
    /// automatically).
    pub fn invalidate_caches(&mut self) {
        self.retire_idb();
    }

    /// Drop the IDB materialisation, parking it as spare capacity for the
    /// next evaluation to recycle.
    fn retire_idb(&mut self) {
        if let Some(idb) = self.idb.take() {
            self.spare_idb = Some(idb);
        }
    }

    /// Share the definitional and extensional state into a fresh database
    /// suitable for publication as a read snapshot: tuple pages and the
    /// string table are `Arc`-shared copy-on-write (zero tuple copies,
    /// O(#relations + #chunks) work), while compiler-generated auxiliary
    /// predicates, compiled plans, IDB caches, maintained indexes, the
    /// evolution-session journal, and test failpoints are all dropped. The
    /// clone re-derives everything it needs lazily on first use, and —
    /// because index contents depend on query history — two snapshots of
    /// the same facts always produce bit-identical
    /// [`Database::debug_state_digest`] output.
    pub fn snapshot_clone(&self) -> Database {
        let n = self.aux_start.unwrap_or(self.preds.len());
        let preds: Vec<PredDecl> = self.preds[..n].to_vec();
        let by_name: FxHashMap<Symbol, PredId> = preds
            .iter()
            .enumerate()
            .map(|(i, d)| (d.name, PredId(i as u32)))
            .collect();
        let rels: Vec<Relation> = self.rels[..n].iter().map(Relation::share).collect();
        Database {
            interner: self.interner.share(),
            preds,
            by_name,
            rels,
            rules: self.rules.clone(),
            constraints: self.constraints.clone(),
            rule_info: self.rule_info.clone(),
            constraint_info: self.constraint_info.clone(),
            load_seq: self.load_seq,
            aux_start: None,
            compiled: None,
            idb: None,
            spare_idb: None,
            idb_size_hints: Vec::new(),
            journal: None,
            // Maintained state stays with the writer session; snapshots
            // re-derive lazily like every other cache.
            maintained: None,
            eval_threads: self.eval_threads,
            eval_failpoint: false,
        }
    }

    /// The pre-CoW reference implementation of
    /// [`Database::snapshot_clone`]: deep-copies every live tuple via
    /// [`Relation::without_indexes`] instead of sharing pages. Kept as the
    /// differential oracle for the CoW snapshot property tests (a share
    /// must stay byte-identical to a deep clone taken at the same
    /// instant); production publication always uses the shared path.
    #[doc(hidden)]
    pub fn deep_snapshot_clone(&self) -> Database {
        let mut snap = self.snapshot_clone();
        snap.rels = snap.rels.iter().map(Relation::without_indexes).collect();
        snap
    }

    /// Interner-independent textual digest of the stored state: every base
    /// fact plus the contents of every maintained base-relation index, with
    /// symbols resolved to their strings (the interner only grows, so raw
    /// symbol numbers would differ between a state and its re-creation).
    /// Two databases with equal digests hold the same EDB *and* the same
    /// index structures. Debug/test support; not a stable format.
    #[doc(hidden)]
    pub fn debug_state_digest(&self) -> String {
        use std::fmt::Write as _;
        let mut out = self.dump_facts();
        let mut preds: Vec<PredId> = self.base_preds().collect();
        preds.sort_by_key(|&p| self.pred_name(p).to_string());
        for p in preds {
            for (cols, tuples) in self.rels[p.index()].index_dump() {
                let _ = writeln!(out, "index {}{:?}:", self.pred_name(p), cols);
                // Sort the *rendered* rows: ordering by raw symbol number
                // would depend on interning history.
                let mut rows: Vec<String> = tuples
                    .iter()
                    .map(|t| {
                        let rendered: Vec<String> = t
                            .iter()
                            .map(|c| match c {
                                Const::Int(n) => n.to_string(),
                                Const::Sym(s) => self.resolve(s).to_string(),
                            })
                            .collect();
                        format!("  ({})", rendered.join(", "))
                    })
                    .collect();
                rows.sort();
                for r in rows {
                    let _ = writeln!(out, "{r}");
                }
            }
        }
        out
    }

    /// Total number of stored base facts.
    pub fn fact_count(&self) -> usize {
        self.preds
            .iter()
            .zip(&self.rels)
            .filter(|(d, _)| d.is_base())
            .map(|(_, r)| r.len())
            .sum()
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("preds", &self.preds.len())
            .field("rules", &self.rules.len())
            .field("constraints", &self.constraints.len())
            .field("facts", &self.fact_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tup(xs: &[i64]) -> Tuple {
        Tuple::from(xs.iter().map(|&x| Const::Int(x)).collect::<Vec<_>>())
    }

    #[test]
    fn declare_is_idempotent_for_same_shape() {
        let mut db = Database::new();
        let a = db.declare_base("P", 2).unwrap();
        let b = db.declare_base("P", 2).unwrap();
        assert_eq!(a, b);
        assert!(db.declare_base("P", 3).is_err());
        assert!(db.declare_derived("P", 2).is_err());
    }

    #[test]
    fn insert_checks_arity_and_kind() {
        let mut db = Database::new();
        let p = db.declare_base("P", 2).unwrap();
        let q = db.declare_derived("Q", 1).unwrap();
        assert!(db.insert(p, tup(&[1])).is_err());
        assert!(db.insert(q, tup(&[1])).is_err());
        assert!(db.insert(p, tup(&[1, 2])).unwrap());
        assert!(!db.insert(p, tup(&[1, 2])).unwrap());
    }

    #[test]
    fn apply_reports_effective_ops_only() {
        let mut db = Database::new();
        let p = db.declare_base("P", 1).unwrap();
        db.insert(p, tup(&[1])).unwrap();
        let mut cs = ChangeSet::new();
        cs.insert(p, tup(&[1])); // no-op
        cs.insert(p, tup(&[2])); // effective
        cs.delete(p, tup(&[9])); // no-op
        let eff = db.apply(&cs).unwrap();
        assert_eq!(eff.len(), 1);
    }

    #[test]
    fn session_rollback_restores_state() {
        let mut db = Database::new();
        let p = db.declare_base("P", 1).unwrap();
        db.insert(p, tup(&[1])).unwrap();
        db.begin_session().unwrap();
        db.insert(p, tup(&[2])).unwrap();
        db.remove(p, &tup(&[1])).unwrap();
        db.rollback_session().unwrap();
        assert!(db.contains(p, &tup(&[1])));
        assert!(!db.contains(p, &tup(&[2])));
    }

    #[test]
    fn session_commit_returns_delta() {
        let mut db = Database::new();
        let p = db.declare_base("P", 1).unwrap();
        db.begin_session().unwrap();
        db.insert(p, tup(&[2])).unwrap();
        db.insert(p, tup(&[2])).unwrap(); // duplicate: not journalled
        let delta = db.commit_session().unwrap();
        assert_eq!(delta.len(), 1);
        assert!(!db.in_session());
    }

    #[test]
    fn nested_sessions_rejected() {
        let mut db = Database::new();
        db.begin_session().unwrap();
        assert!(db.begin_session().is_err());
        db.commit_session().unwrap();
        assert!(db.commit_session().is_err());
        assert!(db.rollback_session().is_err());
    }

    #[test]
    fn remove_constraint_by_name() {
        let mut db = Database::new();
        db.add_constraint(Constraint::new(
            "c1",
            vec![],
            crate::constraint::Formula::True,
        ));
        assert!(db.remove_constraint("c1"));
        assert!(!db.remove_constraint("c1"));
    }
}
