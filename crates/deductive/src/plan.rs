//! Compiled join plans.
//!
//! Rule bodies used to be ordered on every evaluation (`order_body` ran
//! inside the per-round fixpoint loop, once per rule per delta position),
//! and every scanned tuple re-verified all bound columns. Plans move that
//! work to compile time: per rule, one plan for full evaluation plus one
//! per semi-naive delta position, each with the literal order resolved, the
//! bound-column mask of every scan precomputed, and the head instantiation
//! template ready. The evaluator then only resolves key constants from the
//! current binding and walks index buckets (see [`crate::relation`]).

use crate::ast::{CmpOp, Literal, Rule, Term, Var};
use crate::pred::PredId;
use crate::value::Const;

/// Where a runtime value comes from: a literal constant or the current
/// variable binding (which the plan guarantees is set at that point).
#[derive(Clone, Copy, Debug)]
pub(crate) enum Src {
    Const(Const),
    Var(Var),
}

impl Src {
    fn of(t: Term) -> Src {
        match t {
            Term::Const(c) => Src::Const(c),
            Term::Var(v) => Src::Var(v),
        }
    }
}

/// A scan over one positive atom.
#[derive(Clone, Debug)]
pub(crate) struct ScanStep {
    /// Index of the literal in the original body (for delta substitution).
    pub lit: usize,
    pub pred: PredId,
    /// Sorted column positions bound before this scan starts (constants and
    /// already-bound variables) — the index mask.
    pub index_cols: Box<[usize]>,
    /// Key sources, parallel to `index_cols`.
    pub key: Box<[Src]>,
    /// `(column, var)`: first occurrence of a variable unbound at scan
    /// start; the scan binds it from the tuple.
    pub bind_cols: Box<[(usize, Var)]>,
    /// `(column, var)`: repeated occurrence within this atom of a variable
    /// in `bind_cols`; checked for equality after binding.
    pub check_cols: Box<[(usize, Var)]>,
}

/// One step of a compiled plan.
#[derive(Clone, Debug)]
pub(crate) enum Step {
    Scan(ScanStep),
    /// Stratified negation; fully ground at this point.
    Neg {
        pred: PredId,
        args: Box<[Src]>,
    },
    /// Comparison; both sides ground at this point.
    Cmp {
        op: CmpOp,
        l: Src,
        r: Src,
    },
}

/// A fully resolved execution plan for one rule body (or ad-hoc query).
#[derive(Clone, Debug)]
pub(crate) struct Plan {
    pub steps: Vec<Step>,
    pub var_count: usize,
}

/// All plans compiled for one rule.
#[derive(Clone, Debug)]
pub(crate) struct RulePlans {
    pub head_pred: PredId,
    /// Head instantiation template.
    pub head: Box<[Src]>,
    /// Full evaluation (round 0 / naive rounds).
    pub full: Plan,
    /// Semi-naive delta plans: one per positive body literal, pinned first.
    pub deltas: Vec<(usize, Plan)>,
    /// DRed generator plans: one per negative body literal, with that
    /// literal flipped positive and pinned first.
    pub neg_deltas: Vec<(usize, Plan)>,
    /// Derivability-check plan: body evaluated with all head variables
    /// pre-bound (DRed re-derive phase).
    pub derivable: Plan,
}

/// Order body literals for left-to-right evaluation: cheap fully-bound
/// filters (comparisons, negations) as early as possible, positive atoms by
/// descending boundness. `first`, when given, pins a literal to the front
/// (the semi-naive delta literal); `seed` marks variables bound before the
/// body starts (pre-set bindings in repair / derivability search).
pub(crate) fn order_body(
    body: &[Literal],
    var_count: usize,
    first: Option<usize>,
    seed: &[Var],
) -> Vec<usize> {
    let mut order = Vec::with_capacity(body.len());
    let mut bound = vec![false; var_count];
    for v in seed {
        bound[v.index()] = true;
    }
    let mut remaining: Vec<usize> = (0..body.len()).collect();
    let bind_lit = |lit: &Literal, bound: &mut Vec<bool>| {
        for v in lit.vars() {
            bound[v.index()] = true;
        }
    };
    if let Some(f) = first {
        order.push(f);
        bind_lit(&body[f], &mut bound);
        remaining.retain(|&i| i != f);
    }
    while !remaining.is_empty() {
        // 1. any comparison or negation whose vars are all bound
        if let Some(pos) = remaining.iter().position(|&i| match &body[i] {
            Literal::Pos(_) => false,
            lit => lit.vars().iter().all(|v| bound[v.index()]),
        }) {
            let i = remaining.remove(pos);
            order.push(i);
            continue;
        }
        // 2. the positive atom binding the most already-bound variables
        // (ties broken by body position, so plans are stable)
        let mut best: Option<(usize, usize)> = None;
        for (pos, &i) in remaining.iter().enumerate() {
            if !body[i].is_positive() {
                continue;
            }
            let score = body[i].vars().iter().filter(|v| bound[v.index()]).count();
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((pos, score));
            }
        }
        match best.map(|(pos, _)| pos) {
            Some(pos) => {
                let i = remaining.remove(pos);
                bind_lit(&body[i], &mut bound);
                order.push(i);
            }
            None => {
                // Only unbound negations/comparisons left; safe rules never
                // reach here, but take them in order to terminate.
                order.append(&mut remaining);
            }
        }
    }
    order
}

impl Plan {
    /// Compile a body into a plan. `first` pins a literal to the front;
    /// `seed` lists variables bound before execution starts.
    pub(crate) fn compile(
        body: &[Literal],
        var_count: usize,
        first: Option<usize>,
        seed: &[Var],
    ) -> Plan {
        let order = order_body(body, var_count, first, seed);
        let mut bound = vec![false; var_count];
        for v in seed {
            bound[v.index()] = true;
        }
        let mut steps = Vec::with_capacity(order.len());
        for &li in &order {
            match &body[li] {
                Literal::Pos(atom) => {
                    steps.push(Step::Scan(scan_step(li, atom, &mut bound)));
                }
                Literal::Neg(atom) => {
                    steps.push(Step::Neg {
                        pred: atom.pred,
                        args: atom.args.iter().map(|&t| Src::of(t)).collect(),
                    });
                }
                Literal::Cmp(op, l, r) => {
                    steps.push(Step::Cmp {
                        op: *op,
                        l: Src::of(*l),
                        r: Src::of(*r),
                    });
                }
            }
        }
        Plan { steps, var_count }
    }

    /// Every `(pred, index columns)` mask this plan scans with. The
    /// evaluator ensures these indexes exist before execution.
    pub(crate) fn masks(&self) -> impl Iterator<Item = (PredId, &[usize])> + '_ {
        self.steps.iter().filter_map(|s| match s {
            Step::Scan(sc) if !sc.index_cols.is_empty() => Some((sc.pred, sc.index_cols.as_ref())),
            _ => None,
        })
    }
}

fn scan_step(li: usize, atom: &crate::ast::Atom, bound: &mut [bool]) -> ScanStep {
    let mut keyed: Vec<(usize, Src)> = Vec::new();
    let mut bind_cols: Vec<(usize, Var)> = Vec::new();
    let mut check_cols: Vec<(usize, Var)> = Vec::new();
    for (col, &t) in atom.args.iter().enumerate() {
        match t {
            Term::Const(c) => keyed.push((col, Src::Const(c))),
            Term::Var(v) => {
                if bound[v.index()] {
                    keyed.push((col, Src::Var(v)));
                } else if bind_cols.iter().any(|&(_, bv)| bv == v) {
                    // repeated occurrence within this atom
                    check_cols.push((col, v));
                } else {
                    bind_cols.push((col, v));
                }
            }
        }
    }
    keyed.sort_unstable_by_key(|&(c, _)| c);
    for &(_, v) in &bind_cols {
        bound[v.index()] = true;
    }
    ScanStep {
        lit: li,
        pred: atom.pred,
        index_cols: keyed.iter().map(|&(c, _)| c).collect(),
        key: keyed.iter().map(|&(_, s)| s).collect(),
        bind_cols: bind_cols.into(),
        check_cols: check_cols.into(),
    }
}

impl RulePlans {
    /// Compile every plan variant for one rule.
    pub(crate) fn compile(rule: &Rule) -> RulePlans {
        let var_count = rule.var_count();
        let full = Plan::compile(&rule.body, var_count, None, &[]);
        let mut deltas = Vec::new();
        let mut neg_deltas = Vec::new();
        for (li, lit) in rule.body.iter().enumerate() {
            match lit {
                Literal::Pos(_) => {
                    deltas.push((li, Plan::compile(&rule.body, var_count, Some(li), &[])));
                }
                Literal::Neg(a) => {
                    // DRed generator: treat the negation as a positive scan
                    // over the delta facts, pinned first.
                    let mut body = rule.body.to_vec();
                    body[li] = Literal::Pos(a.clone());
                    neg_deltas.push((li, Plan::compile(&body, var_count, Some(li), &[])));
                }
                Literal::Cmp(..) => {}
            }
        }
        // Derivability check: all head variables pre-bound.
        let mut head_vars: Vec<Var> = Vec::new();
        for &t in rule.head.args.iter() {
            if let Term::Var(v) = t {
                if !head_vars.contains(&v) {
                    head_vars.push(v);
                }
            }
        }
        let derivable = Plan::compile(&rule.body, var_count, None, &head_vars);
        RulePlans {
            head_pred: rule.head.pred,
            head: rule.head.args.iter().map(|&t| Src::of(t)).collect(),
            full,
            deltas,
            neg_deltas,
            derivable,
        }
    }

    /// Every plan variant of this rule (for index-mask collection).
    /// The delta plan for positive body literal `li`.
    pub(crate) fn delta_plan(&self, li: usize) -> &Plan {
        &self
            .deltas
            .iter()
            .find(|(i, _)| *i == li)
            .expect("delta plan exists for every positive literal")
            .1
    }

    /// The generator plan for negative body literal `li`.
    pub(crate) fn neg_delta_plan(&self, li: usize) -> &Plan {
        &self
            .neg_deltas
            .iter()
            .find(|(i, _)| *i == li)
            .expect("generator plan exists for every negative literal")
            .1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Atom;

    fn v(n: u32) -> Term {
        Term::Var(Var(n))
    }

    #[test]
    fn order_pins_first_and_prefers_bound() {
        // body: Edge(X,Y), Path(Y,Z) — pinning Path first must order Edge after.
        let body = vec![
            Literal::Pos(Atom::new(PredId(0), vec![v(0), v(1)])),
            Literal::Pos(Atom::new(PredId(1), vec![v(1), v(2)])),
        ];
        assert_eq!(order_body(&body, 3, Some(1), &[]), vec![1, 0]);
        assert_eq!(order_body(&body, 3, None, &[]), vec![0, 1]);
    }

    #[test]
    fn seed_counts_as_bound() {
        // With Y seeded, the second atom is as bound as the first; filters
        // with seeded vars come first.
        let body = vec![
            Literal::Pos(Atom::new(PredId(0), vec![v(0), v(1)])),
            Literal::Cmp(CmpOp::Ge, v(1), Term::Const(Const::Int(0))),
        ];
        assert_eq!(order_body(&body, 2, None, &[Var(1)]), vec![1, 0]);
    }

    #[test]
    fn scan_masks_reflect_boundness() {
        // Edge(X,Y), Path(Y,Z): second scan has col 0 bound (var Y).
        let body = vec![
            Literal::Pos(Atom::new(PredId(0), vec![v(0), v(1)])),
            Literal::Pos(Atom::new(PredId(1), vec![v(1), v(2)])),
        ];
        let plan = Plan::compile(&body, 3, None, &[]);
        let Step::Scan(s0) = &plan.steps[0] else {
            panic!()
        };
        let Step::Scan(s1) = &plan.steps[1] else {
            panic!()
        };
        assert!(s0.index_cols.is_empty());
        assert_eq!(s0.bind_cols.as_ref(), &[(0, Var(0)), (1, Var(1))]);
        assert_eq!(s1.index_cols.as_ref(), &[0]);
        assert_eq!(s1.bind_cols.as_ref(), &[(1, Var(2))]);
    }

    #[test]
    fn repeated_var_in_atom_becomes_check() {
        let body = vec![Literal::Pos(Atom::new(PredId(0), vec![v(0), v(0)]))];
        let plan = Plan::compile(&body, 1, None, &[]);
        let Step::Scan(s) = &plan.steps[0] else {
            panic!()
        };
        assert_eq!(s.bind_cols.as_ref(), &[(0, Var(0))]);
        assert_eq!(s.check_cols.as_ref(), &[(1, Var(0))]);
    }

    #[test]
    fn rule_plans_cover_delta_positions() {
        use crate::ast::Rule;
        let rule = Rule::new(
            Atom::new(PredId(2), vec![v(0), v(2)]),
            vec![
                Literal::Pos(Atom::new(PredId(0), vec![v(0), v(1)])),
                Literal::Pos(Atom::new(PredId(1), vec![v(1), v(2)])),
                Literal::Neg(Atom::new(PredId(3), vec![v(0)])),
            ],
        );
        let plans = RulePlans::compile(&rule);
        assert_eq!(plans.deltas.len(), 2);
        assert_eq!(plans.neg_deltas.len(), 1);
        assert_eq!(plans.delta_plan(1).steps.len(), 3);
        // derivable plan: head vars X, Z seeded → the negation (over X) runs
        // first as a fully-bound filter, then Edge scans keyed on col 0.
        assert!(matches!(plans.derivable.steps[0], Step::Neg { .. }));
        let Step::Scan(s) = &plans.derivable.steps[1] else {
            panic!()
        };
        assert_eq!(s.index_cols.as_ref(), &[0]);
    }
}
